"""Trademark screening: the paper's motivating retrieval scenario.

A registry holds logo outlines; a new filing must be checked for
confusable existing marks regardless of how it is rotated, scaled or
redrawn.  This exercises the full public API: threshold retrieval, the
measure ladder on the flagged pairs, and the hashing fallback for
"nothing close" verdicts.

Run:  python examples/trademark_screening.py
"""

import numpy as np

from repro import (GeometricSimilarityMatcher, Shape, ShapeBase,
                   average_distance, hausdorff)
from repro.hashing import ApproximateRetriever
from repro.imaging.synthesis import (distort, notched_box, random_blob,
                                     star_polygon)


def build_registry(rng: np.random.Generator):
    """A registry of distinctive marks (one image per registrant)."""
    marks = {
        "alpha-star": star_polygon(points=5, inner=0.45),
        "hex-seal": Shape.regular_polygon(6),
        "notch-badge": notched_box(0.4),
        "wave-crest": random_blob(rng, 18, irregularity=0.25),
        "spike-burst": star_polygon(points=9, inner=0.6),
        "pebble": random_blob(rng, 14, irregularity=0.12),
        "shard": Shape([(0, 0), (4, 1), (5, 4), (2, 3)]),
    }
    base = ShapeBase(alpha=0.1)
    names = {}
    for name, outline in marks.items():
        shape_id = base.add_shape(outline, image_id=len(names))
        names[shape_id] = name
    return base, names, marks


def screen(matcher, names, filing: Shape, label: str,
           threshold: float = 0.05) -> None:
    conflicts, stats = matcher.query_threshold(filing, threshold)
    print(f"\nfiling {label!r}:")
    if not conflicts:
        print(f"  no conflicts within distance {threshold} "
              f"({stats.iterations} envelope iterations)")
        return
    for match in conflicts:
        print(f"  CONFLICT with {names[match.shape_id]!r} "
              f"(avg distance {match.distance:.4f})")


def main() -> None:
    rng = np.random.default_rng(1999)
    base, names, marks = build_registry(rng)
    matcher = GeometricSimilarityMatcher(base)
    print(f"registry: {base.num_shapes} marks, "
          f"{base.num_entries} normalized copies")

    # Filing 1: a redrawn (noisy, rotated, rescaled) alpha-star.
    redrawn = distort(marks["alpha-star"], 0.012, rng)
    redrawn = redrawn.rotated(2.2).scaled(0.4)
    screen(matcher, names, redrawn, "redrawn star")

    # Filing 2: genuinely novel outline.
    novel = Shape([(0, 0), (6, 0), (6, 1), (3.2, 1.1), (3.0, 2.8),
                   (2.8, 1.1), (0, 1)])
    screen(matcher, names, novel, "novel outline")

    # For a clean filing, show the nearest registered marks anyway
    # (the examiner's "closest art") via the hashing fallback.
    retriever = ApproximateRetriever(base, k_curves=50)
    nearest = retriever.query(novel, k=3)
    print("\nclosest registered art (approximate, via geometric hashing):")
    for match in nearest:
        print(f"  {names[match.shape_id]:12s} distance {match.distance:.4f}")

    # Deep comparison of the flagged pair.  Raw-coordinate measures are
    # large because the filing is rescaled/rotated; the system's number
    # is the minimum over the registered mark's stored alpha-diameter
    # copies against the normalized filing.
    flagged = marks["alpha-star"]
    print("\nmeasure ladder for (redrawn star, registered alpha-star):")
    print(f"  raw Hausdorff      {hausdorff(redrawn, flagged):8.4f}")
    print(f"  raw avg distance   {average_distance(redrawn, flagged):8.4f}")
    best, _ = matcher.query(redrawn, k=1)
    print(f"  normalized (min over stored copies) "
          f"{best[0].distance:8.4f}  <- what screening uses")


if __name__ == "__main__":
    main()
