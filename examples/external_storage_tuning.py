"""External storage tuning: layouts, buffers and I/O accounting.

A miniature of the paper's Section 4 experiments: build the shape base,
externalize it under each layout policy, replay a real query's access
trace and compare device reads; then sweep the buffer size.

Run:  python examples/external_storage_tuning.py
"""

import numpy as np

from repro import GeometricSimilarityMatcher, ShapeBase
from repro.hashing import HashCurveFamily
from repro.imaging import generate_workload, make_query_set
from repro.storage import (ExternalShapeStore, compute_signatures,
                           rehash_cost_localopt, rehash_cost_sorted)


def main() -> None:
    rng = np.random.default_rng(404)
    workload = generate_workload(40, rng, shapes_per_image=5.5,
                                 noise=0.01)
    base = ShapeBase(alpha=0.1)
    for image in workload.images:
        for shape in image.shapes:
            base.add_shape(shape, image_id=image.image_id)
    signatures = compute_signatures(base, HashCurveFamily(50))
    print(f"base: {base.num_entries} normalized copies")

    # Record the candidate-access trace of a few real queries.
    matcher = GeometricSimilarityMatcher(base)
    queries = make_query_set(workload, 5, np.random.default_rng(1),
                             noise=0.012)
    traces = []
    for query, _ in queries:
        trace = []
        matcher.query(query, k=2,
                      on_candidate=lambda e: trace.append(e.entry_id))
        traces.append(trace)
    print(f"recorded {len(traces)} query traces "
          f"(avg {np.mean([len(t) for t in traces]):.0f} accesses each)")

    # Compare the four layout policies at a 100-block buffer.
    print("\navg I/O per query by layout (100-block buffer):")
    for layout in ("mean", "lexicographic", "median", "localopt"):
        store = ExternalShapeStore(base, layout=layout,
                                   buffer_blocks=100,
                                   signatures=signatures)
        ios = [store.replay_trace(t, reset_buffer=True) for t in traces]
        stats = store.stats()
        print(f"  {layout:14s} {np.mean(ios):7.1f} reads   "
              f"({stats.num_blocks} blocks, "
              f"{stats.entries_per_block:.1f} records/block)")

    # Buffer sweep for the mean-curve layout.
    print("\nbuffer sweep (mean-curve layout):")
    for buffer_blocks in (1, 5, 10, 25, 50, 100):
        store = ExternalShapeStore(base, layout="mean",
                                   buffer_blocks=buffer_blocks,
                                   signatures=signatures)
        ios = [store.replay_trace(t, reset_buffer=True) for t in traces]
        print(f"  {buffer_blocks:4d} blocks -> {np.mean(ios):7.1f} reads "
              f"(hit ratio {store.buffer.stats.hit_ratio:.0%})")

    # The rehash trade-off the paper quotes.
    n = base.num_entries
    print(f"\nrehash cost model at N={n}: "
          f"sorted={rehash_cost_sorted(n):,.0f} units, "
          f"localopt={rehash_cost_localopt(n):,.0f} units")


if __name__ == "__main__":
    main()
