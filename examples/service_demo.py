"""Service layer: batch retrieval through the sharded concurrent tier.

Builds a synthetic base, serves it with `repro.service.RetrievalService`
(sharded corpus, worker pool, query-result cache, per-query deadlines),
then walks through batch retrieval, cache behaviour under repeated
sketches, ingest-triggered invalidation, graceful degradation, and the
metrics snapshot the service keeps about all of it.

Run:  python examples/service_demo.py
"""

import numpy as np

from repro import Shape, ShapeBase
from repro.service import RetrievalService, ServiceConfig


def make_random_shape(rng: np.random.Generator, num_vertices: int) -> Shape:
    """A random simple (star-shaped) polygon."""
    angles = np.sort(rng.uniform(0.0, 2.0 * np.pi, num_vertices))
    radii = rng.uniform(0.5, 1.5, num_vertices)
    return Shape(np.column_stack([radii * np.cos(angles),
                                  radii * np.sin(angles)]))


def noisy_view(rng: np.random.Generator, shape: Shape) -> Shape:
    """A transformed, slightly distorted copy — a plausible sketch."""
    jittered = Shape(shape.vertices +
                     rng.normal(0, 0.008, shape.vertices.shape))
    return jittered.rotated(rng.uniform(0, 2 * np.pi)) \
                   .scaled(rng.uniform(0.5, 3.0)) \
                   .translated(rng.uniform(-5, 5), rng.uniform(-5, 5))


def main() -> None:
    rng = np.random.default_rng(17)

    # 1. A base of 30 shapes, served through 4 shards and 2 workers.
    base = ShapeBase(alpha=0.1)
    shapes = []
    for image_id in range(30):
        shape = make_random_shape(rng, int(rng.integers(10, 20)))
        shapes.append(shape)
        base.add_shape(shape, image_id=image_id)

    config = ServiceConfig(num_shards=4, workers=2, cache_capacity=128)
    with RetrievalService.from_base(base, config) as service:
        print(f"service: {service!r}")
        print(f"per-shard shapes: {service.shards.shape_counts()}")

        # 2. Batch retrieval: sketches fan out over the worker pool and
        #    come back in input order.
        targets = [3, 11, 19, 26]
        sketches = [noisy_view(rng, shapes[t]) for t in targets]
        results = service.retrieve_batch(sketches, k=2)
        print("\nbatch of", len(sketches), "sketches:")
        for target, result in zip(targets, results):
            best = result.best
            hit = "hit" if best.shape_id == target else "MISS"
            print(f"  sketch of shape {target:>2d} -> shape "
                  f"{best.shape_id:>2d} (distance {best.distance:.5f}, "
                  f"method {result.method}) {hit}")

        # 3. The cache keys on a similarity-invariant signature, so a
        #    rotated/scaled copy of a served sketch is a cache hit.
        again = service.retrieve(sketches[0].rotated(0.9).scaled(2.0), k=2)
        print(f"\nre-query (transformed sketch): cached={again.cached}, "
              f"latency {again.latency * 1e3:.2f} ms")

        # 4. Ingest invalidates: the next query recomputes against the
        #    corpus that now contains the new shape.
        novel = make_random_shape(rng, 14)
        [novel_id] = service.ingest([novel], image_id=99)
        fresh = service.retrieve(noisy_view(rng, novel), k=1)
        print(f"after ingest: sketch of the new shape -> "
              f"shape {fresh.best.shape_id} (expected {novel_id}), "
              f"cached={fresh.cached}")

        # 5. Graceful degradation: an expired deadline abandons the
        #    envelope search and answers from the hashing tier.
        rushed = service.retrieve(sketches[1], k=1, deadline=0.0)
        print(f"deadline 0s: method={rushed.method}, "
              f"degraded={rushed.degraded}")

        # 6. The metrics registry saw all of it.
        snapshot = service.snapshot()
        print("\nmetrics snapshot:")
        for name, value in snapshot["counters"].items():
            print(f"  {name:<22s} {value}")
        rates = snapshot["rates"]
        print(f"  cache hit ratio        {rates['cache_hit_ratio']:.3f}")
        print(f"  fallback ratio         {rates['fallback_ratio']:.3f}")
        latency = snapshot["histograms"]["latency.total"]
        print(f"  latency p50 / p99      {latency['p50'] * 1e3:.2f} / "
              f"{latency['p99'] * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
