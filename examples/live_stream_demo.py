"""Live-stream ingest: clips arrive while queries keep running.

The PR 10 write path, end to end, in two acts:

1. **Live clip arrival** — the ``examples/video_retrieval.py`` corpus
   streams in one clip at a time; after each arrival the full sketch
   panel re-runs through ``VideoIndex.query_batch`` (one matcher
   scratch per panel), showing answers sharpen as footage lands.
2. **Streaming service tier** — the same frames pushed through a
   ``RetrievalService`` in streaming mode: ingest batches hit the
   copy-on-write delta path while a closed-loop reader keeps
   querying; folds run on the background scheduler and the final
   metrics snapshot shows the write side (batch sizes, fold times,
   backpressure waits) next to the read side.

Run:  python examples/live_stream_demo.py
"""

import threading
import time

import numpy as np

from repro.geosir import VideoIndex
from repro.service import RetrievalService, ServiceConfig

from video_retrieval import make_clips, make_prototypes, report_panel


def act_one(rng, panel, clips) -> None:
    print("=" * 60)
    print("act 1: clips arriving live into a VideoIndex")
    index = VideoIndex(alpha=0.08)
    for clip_id, frames in clips:
        index.add_clip(clip_id, frames)
        print(f"\n--- clip {clip_id} arrived "
              f"({len(frames)} frames) -> {index!r}")
        report_panel(index, panel)


def act_two(rng, panel, clips) -> None:
    print()
    print("=" * 60)
    print("act 2: the same frames through the streaming service tier")
    flat = [(shape, 100 * clip_id + frame_index)
            for clip_id, frames in clips
            for frame_index, shapes in enumerate(frames)
            for shape in shapes]

    # Seed the service with the first clip, stream in the rest.
    from repro import ShapeBase
    seed_count = sum(1 for _, image_id in flat if image_id < 100)
    base = ShapeBase(alpha=0.08)
    for shape, image_id in flat[:seed_count]:
        base.add_shape(shape, image_id=image_id)

    config = ServiceConfig(num_shards=2, workers=2, cache_capacity=0,
                           streaming=True)
    with RetrievalService.from_base(base, config) as service:
        stop = threading.Event()
        answered = {"n": 0}
        sketch = panel[0][1]

        def reader() -> None:
            while not stop.is_set():
                result = service.retrieve(sketch, k=3)
                if result.ok:
                    answered["n"] += 1

        thread = threading.Thread(target=reader)
        thread.start()
        batch = []
        for shape, image_id in flat[seed_count:]:
            batch.append((shape, image_id))
            if len(batch) >= 8:
                service.ingest([s for s, _ in batch],
                               image_id=batch[0][1])
                batch = []
                time.sleep(0.01)     # frames arrive at stream rate
        if batch:
            service.ingest([s for s, _ in batch], image_id=batch[0][1])
        folds = service.quiesce_ingest()
        stop.set()
        thread.join()

        snap = service.snapshot()
        ingest = snap["ingest"]
        print(f"\nstreamed {ingest['shapes']} shapes while the reader "
              f"answered {answered['n']} queries")
        print(f"write side: {ingest['folds']} background folds "
              f"(+{folds} at quiesce), "
              f"{ingest['backpressure_waits']} backpressure waits, "
              f"{ingest['pending_delta']} delta entries still unfolded")
        if ingest.get("batch_size"):
            print(f"batch size p50: {ingest['batch_size']['p50']:.0f} "
                  f"shapes")
        if ingest.get("fold_ms"):
            print(f"fold time p50: {ingest['fold_ms']['p50']:.1f} ms")
        result = service.retrieve(sketch, k=3)
        print(f"final answer over the full corpus: "
              f"{[(m.shape_id, round(m.distance, 4)) for m in result.matches]}")


def main() -> None:
    rng = np.random.default_rng(1234)
    star, badge, blob = make_prototypes(rng)
    panel = [("star", star), ("badge", badge)]
    clips = make_clips(rng, star, badge, blob)
    act_one(rng, panel, clips)
    act_two(rng, panel, clips)


if __name__ == "__main__":
    main()
