"""GeoSIR end to end: raster ingestion, sketch retrieval, hash fallback.

Mirrors the interactive flow of the paper's Section 6 prototype:
images go in as pixel rasters, boundaries are extracted and
segment-approximated, a user "sketch" is matched with the envelope
algorithm, and an alien sketch falls through to geometric hashing.

Run:  python examples/sketch_retrieval.py
"""

import numpy as np

from repro import Shape
from repro.geosir import GeoSIR
from repro.imaging import (generate_workload, rasterize_shapes)
from repro.imaging.synthesis import distort


def main() -> None:
    rng = np.random.default_rng(2002)
    workload = generate_workload(15, rng, shapes_per_image=3.0,
                                 noise=0.008, num_prototypes=6)

    system = GeoSIR(alpha=0.08, match_threshold=0.06)

    # Ingest every image as a *raster*: the shapes are rendered to a
    # binary pixel grid, then re-extracted by contour tracing and
    # Douglas-Peucker — the full Section 6 pipeline.
    for image in workload.images:
        raster = rasterize_shapes(image.shapes, height=140, width=140)
        system.add_image(raster=raster, image_id=image.image_id)
    stats = system.statistics()
    print(f"ingested {stats['images']} raster images -> "
          f"{stats['shapes']} extracted shapes, "
          f"{stats['entries']} normalized copies")

    # A sketch: a freshly distorted instance of a known prototype,
    # drawn at an arbitrary position/scale/rotation.
    prototype_index = 2
    sketch = distort(workload.prototypes[prototype_index], 0.01, rng)
    sketch = sketch.rotated(0.8).scaled(30.0).translated(70, 70)
    result = system.retrieve(sketch, k=3)
    print(f"\nsketch of prototype {prototype_index}: matched via "
          f"{result.method}")
    for match in result.matches:
        print(f"  image {match.image_id}, shape {match.shape_id}, "
              f"distance {match.distance:.4f}")

    # An alien sketch nothing resembles: the envelope search exhausts
    # its epsilon budget and geometric hashing supplies approximations.
    alien = Shape([(0, 0), (40, 0), (40, 1.5), (20, 6), (0, 1.5)])
    result = system.retrieve(alien, k=3)
    print(f"\nalien sketch: matched via {result.method} "
          f"(approximate={result.matches[0].approximate if result.matches else '-'})")
    for match in result.matches:
        print(f"  image {match.image_id}, shape {match.shape_id}, "
              f"distance {match.distance:.4f}")


if __name__ == "__main__":
    main()
