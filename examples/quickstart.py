"""Quickstart: build a shape base, retrieve by geometric similarity.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GeometricSimilarityMatcher, Shape, ShapeBase


def make_random_shape(rng: np.random.Generator, num_vertices: int) -> Shape:
    """A random simple (star-shaped) polygon."""
    angles = np.sort(rng.uniform(0.0, 2.0 * np.pi, num_vertices))
    radii = rng.uniform(0.5, 1.5, num_vertices)
    return Shape(np.column_stack([radii * np.cos(angles),
                                  radii * np.sin(angles)]))


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. Populate the base.  Every shape is normalized about its
    #    alpha-diameters and stored in several canonical copies
    #    (Section 2.4 of the paper).
    base = ShapeBase(alpha=0.1)
    shapes = []
    for image_id in range(25):
        shape = make_random_shape(rng, int(rng.integers(10, 22)))
        shapes.append(shape)
        base.add_shape(shape, image_id=image_id)
    print(f"base: {base.num_shapes} shapes -> {base.num_entries} "
          f"normalized copies, {base.total_vertices} indexed vertices")

    # 2. Query with a rotated / scaled / translated / noisy version of
    #    a stored shape.  Retrieval is similarity-transform invariant.
    target = shapes[13]
    query = Shape(target.vertices +
                  rng.normal(0, 0.01, target.vertices.shape))
    query = query.rotated(1.1).scaled(3.0).translated(40.0, -7.0)

    matcher = GeometricSimilarityMatcher(base)
    matches, stats = matcher.query(query, k=3)

    print(f"\nquery resolved in {stats.iterations} envelope iterations "
          f"({stats.vertices_processed} vertices touched, "
          f"{stats.candidates_evaluated} candidates measured)")
    for rank, match in enumerate(matches, start=1):
        marker = "  <-- the planted answer" if match.shape_id == 13 else ""
        print(f"  #{rank}: shape {match.shape_id} (image {match.image_id}) "
              f"at average distance {match.distance:.5f}{marker}")

    # 3. Threshold retrieval: everything within a distance budget.
    similar, _ = matcher.query_threshold(query, distance_threshold=0.05)
    print(f"\nshapes within distance 0.05 of the query: "
          f"{sorted(m.shape_id for m in similar)}")


if __name__ == "__main__":
    main()
