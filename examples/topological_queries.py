"""Topological queries: contain / overlap / disjoint with set algebra.

Builds an image base with controlled pairwise topology and runs the
query algebra of the paper's Section 5, including the planner's two
operator strategies and a sketch-derived query.

Run:  python examples/topological_queries.py
"""

import numpy as np

from repro import Shape, ShapeBase
from repro.geosir import GeoSIR
from repro.query import Similar, contain, disjoint, overlap


def jitter(shape: Shape, rng: np.random.Generator) -> Shape:
    return Shape(shape.vertices +
                 rng.normal(0, 0.004, shape.vertices.shape),
                 closed=shape.closed)


def main() -> None:
    rng = np.random.default_rng(55)
    angles = np.sort(rng.uniform(0, 2 * np.pi, 12))
    frame = Shape(np.column_stack([np.cos(angles), np.sin(angles)]))
    angles_b = np.sort(rng.uniform(0, 2 * np.pi, 9))
    radii_b = rng.uniform(0.7, 1.3, 9)
    emblem = Shape(np.column_stack([radii_b * np.cos(angles_b),
                                    radii_b * np.sin(angles_b)]))

    system = GeoSIR(alpha=0.05, similarity_threshold=0.04)
    layout_of = {}
    for image_id in range(18):
        big = jitter(frame, rng).scaled(10).translated(50, 50)
        if image_id < 6:          # emblem inside the frame
            small = jitter(emblem, rng).scaled(2).translated(50, 50)
            layout_of[image_id] = "contain"
        elif image_id < 12:       # emblem straddling the frame
            small = jitter(emblem, rng).scaled(4).translated(61, 50)
            layout_of[image_id] = "overlap"
        else:                     # emblem far away
            small = jitter(emblem, rng).scaled(2).translated(90, 90)
            layout_of[image_id] = "disjoint"
        system.add_image(shapes=[big, small], image_id=image_id)

    print("ground truth:", layout_of)

    for name, node in [
            ("contain(frame, emblem)", contain(frame, emblem)),
            ("overlap(frame, emblem)", overlap(frame, emblem)),
            ("disjoint(frame, emblem)", disjoint(frame, emblem))]:
        result = system.query(node)
        print(f"{name:28s} -> images {sorted(result)}")

    # The paper's composite example: images with a frame but *without*
    # an overlapping frame/emblem pair.
    node = Similar(frame) & ~overlap(frame, emblem)
    result = system.query(node)
    print(f"similar(frame) & ~overlap      -> images {sorted(result)}")

    # Both operator strategies agree; their work profiles differ.
    engine = system.engine
    for strategy in (1, 2):
        engine.counters.reset()
        images = engine.topological("contain", frame, emblem,
                                    strategy=strategy)
        c = engine.counters
        print(f"strategy {strategy}: result={sorted(images)}  "
              f"threshold_queries={c.threshold_queries}  "
              f"per-shape checks={c.similarity_checks}")

    # A two-shape sketch implies its own relations (Section 6): draw a
    # small emblem inside a large frame and the system asks for images
    # where a frame-like shape *contains* an emblem-like one.
    sketch_outer = jitter(frame, rng).scaled(10).translated(50, 50)
    sketch_inner = jitter(emblem, rng).scaled(2).translated(50, 50)
    node = system.sketch_query([sketch_outer, sketch_inner])
    print(f"\nsketch-derived query: {node!r}")
    print(f"matches: {sorted(system.query(node))} "
          f"(expected: the 'contain' images)")


if __name__ == "__main__":
    main()
