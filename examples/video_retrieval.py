"""Video retrieval: the paper's Section 7 future work, implemented.

Index synthetic clips (an object drifting through frames among
distractors), then query by a *panel* of sketches in one batched pass
(``VideoIndex.query_batch`` — one matcher scratch for the whole
panel) and track each object's appearance intervals.

``examples/live_stream_demo.py`` reuses the builders below to drive
the same panel against clips arriving live.

Run:  python examples/video_retrieval.py
"""

import numpy as np

from repro.geosir import VideoIndex, synthesize_clip
from repro.imaging.synthesis import notched_box, random_blob, star_polygon


def make_prototypes(rng):
    """The demo's sketch panel: (star, badge, unrelated blob)."""
    star = star_polygon(points=7, inner=0.5)
    badge = notched_box(0.35)
    blob = random_blob(rng, 16, irregularity=0.3)
    return star, badge, blob


def make_clips(rng, star, badge, blob):
    """``[(clip_id, frames)]`` for the demo corpus."""
    return [
        # Clip 0: the star for the first half only.
        (0, synthesize_clip(star, 12, rng,
                            present=[True] * 6 + [False] * 6,
                            noise=0.006)),
        # Clip 1: the badge throughout.
        (1, synthesize_clip(badge, 10, rng, noise=0.006)),
        # Clip 2: the star in two stints (a cutaway in the middle).
        (2, synthesize_clip(star, 14, rng,
                            present=[True] * 4 + [False] * 5 + [True] * 5,
                            noise=0.006)),
        # Clip 3: unrelated content.
        (3, synthesize_clip(blob, 8, rng, noise=0.006)),
    ]


def report_panel(index, panel, threshold=0.02):
    """One batched query over every sketch in the panel."""
    answers = index.query_batch([sketch for _, sketch in panel],
                                k=4, threshold=threshold)
    for (name, _), results in zip(panel, answers):
        print(f"\nquery: the {name} sketch (batched)")
        if not results:
            print("  no clip matches yet")
        for result in results:
            frames = [hit.frame_index for hit in result.hits]
            print(f"  clip {result.clip_id}: best distance "
                  f"{result.best.distance:.4f} at frame "
                  f"{result.best.frame_index}; hit frames {frames}")


def main() -> None:
    rng = np.random.default_rng(1234)
    star, badge, blob = make_prototypes(rng)

    index = VideoIndex(alpha=0.08)
    for clip_id, frames in make_clips(rng, star, badge, blob):
        index.add_clip(clip_id, frames)
    print(index)

    report_panel(index, [("star", star), ("badge", badge)])

    print("\ntracking the star (gap tolerance 1 frame):")
    for interval in index.track(star, threshold=0.02, max_gap=1):
        print(f"  clip {interval.clip_id}: frames "
              f"{interval.start_frame}-{interval.end_frame} "
              f"({interval.length} frames, mean distance "
              f"{interval.mean_distance:.4f})")


if __name__ == "__main__":
    main()
