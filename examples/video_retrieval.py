"""Video retrieval: the paper's Section 7 future work, implemented.

Index synthetic clips (an object drifting through frames among
distractors), then query by sketch and track the object's appearance
intervals.

Run:  python examples/video_retrieval.py
"""

import numpy as np

from repro.geosir import VideoIndex, synthesize_clip
from repro.imaging.synthesis import notched_box, random_blob, star_polygon


def main() -> None:
    rng = np.random.default_rng(1234)
    star = star_polygon(points=7, inner=0.5)
    badge = notched_box(0.35)
    blob = random_blob(rng, 16, irregularity=0.3)

    index = VideoIndex(alpha=0.08)
    # Clip 0: the star for the first half only.
    index.add_clip(0, synthesize_clip(
        star, 12, rng, present=[True] * 6 + [False] * 6, noise=0.006))
    # Clip 1: the badge throughout.
    index.add_clip(1, synthesize_clip(badge, 10, rng, noise=0.006))
    # Clip 2: the star in two stints (a cutaway in the middle).
    index.add_clip(2, synthesize_clip(
        star, 14, rng, present=[True] * 4 + [False] * 5 + [True] * 5,
        noise=0.006))
    # Clip 3: unrelated content.
    index.add_clip(3, synthesize_clip(blob, 8, rng, noise=0.006))
    print(index)

    print("\nquery: the star sketch")
    for result in index.query(star, k=4, threshold=0.02):
        frames = [hit.frame_index for hit in result.hits]
        print(f"  clip {result.clip_id}: best distance "
              f"{result.best.distance:.4f} at frame "
              f"{result.best.frame_index}; hit frames {frames}")

    print("\ntracking the star (gap tolerance 1 frame):")
    for interval in index.track(star, threshold=0.02, max_gap=1):
        print(f"  clip {interval.clip_id}: frames "
              f"{interval.start_frame}-{interval.end_frame} "
              f"({interval.length} frames, mean distance "
              f"{interval.mean_distance:.4f})")

    print("\nquery: the badge sketch")
    for result in index.query(badge, k=2, threshold=0.02):
        print(f"  clip {result.clip_id}: best distance "
              f"{result.best.distance:.4f}")


if __name__ == "__main__":
    main()
