"""Terminal reporting: aligned tables and ASCII charts.

The paper's figures are line/scatter plots; this module regenerates
them as text so the experiment harnesses stay dependency-free.  Used by
:mod:`repro.experiments` and the ``repro experiment`` CLI subcommand.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

Number = Union[int, float]


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 precision: int = 2) -> str:
    """Render an aligned text table.

    Floats are fixed to ``precision`` decimals; column widths adapt to
    the longest cell.  Returns the table as one string (no trailing
    newline).
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_chart(series: Sequence[Tuple[str, Sequence[Tuple[Number, Number]]]],
                width: int = 60, height: int = 16,
                x_label: str = "", y_label: str = "") -> str:
    """Plot one or more (x, y) series as an ASCII scatter chart.

    ``series`` is a list of ``(name, points)`` pairs; each series gets
    its own marker character.  Axes are linear, auto-scaled to the data.
    """
    markers = "*o+x#@%&"
    all_points = [p for _, pts in series for p in pts]
    if not all_points:
        return "(no data)"
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (_, points) in enumerate(series):
        marker = markers[index % len(markers)]
        for x, y in points:
            col = int(round((x - xmin) / xspan * (width - 1)))
            row = height - 1 - int(round((y - ymin) / yspan * (height - 1)))
            grid[row][col] = marker
    lines: List[str] = []
    top_label = f"{ymax:.3g}".rjust(10)
    bottom_label = f"{ymin:.3g}".rjust(10)
    for row_index, row in enumerate(grid):
        prefix = top_label if row_index == 0 else \
            bottom_label if row_index == height - 1 else " " * 10
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(" " * 11 + f"{xmin:.3g}".ljust(width - 8) + f"{xmax:.3g}")
    if x_label or y_label:
        lines.append(" " * 11 + f"x: {x_label}   y: {y_label}".strip())
    legend = "   ".join(f"{markers[i % len(markers)]} {name}"
                        for i, (name, _) in enumerate(series))
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def ascii_bars(items: Sequence[Tuple[str, Number]], width: int = 50,
               unit: str = "") -> str:
    """Horizontal bar chart for categorical comparisons."""
    if not items:
        return "(no data)"
    peak = max(value for _, value in items) or 1.0
    name_width = max(len(name) for name, _ in items)
    lines = []
    for name, value in items:
        bar = "#" * max(1, int(round(value / peak * width)))
        lines.append(f"{name.rjust(name_width)}  {bar} {value:.4g}{unit}")
    return "\n".join(lines)
