"""Binary serialization of shape-base records.

The paper budgets "around 200 bytes per shape" for ~20-vertex shapes
(Section 4.1) and stores, per normalized copy, the vertex data plus the
inverse normalization transform the query processor needs (Section 5.3).
Our record layout lands on the same figure:

=============  =====  ==========================================
field          bytes  content
=============  =====  ==========================================
entry_id           4  uint32
shape_id           4  uint32
image_id           4  int32 (-1 when the shape has no image)
pair               4  2 x uint16 alpha-diameter vertex indices
transform         16  4 x float32 (a, b, tx, ty)
flags              1  bit 0: closed
num_vertices       2  uint16
vertices       8 * v  v x 2 x float32
=============  =====  ==========================================

Total ``35 + 8v`` bytes — 195 bytes at v = 20, about five records per
1-KB block, exactly the paper's packing arithmetic.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.shapebase import ShapeEntry
from ..geometry.polyline import Shape
from ..geometry.transform import NormalizedCopy, SimilarityTransform

_HEADER = struct.Struct("<IIiHH4fBH")
RECORD_HEADER_SIZE = _HEADER.size


@dataclass(frozen=True)
class ShapeRecord:
    """A decoded shape-base record."""

    entry_id: int
    shape_id: int
    image_id: Optional[int]
    pair: Tuple[int, int]
    transform: SimilarityTransform
    shape: Shape

    def to_entry(self) -> ShapeEntry:
        """Rehydrate the in-memory entry object."""
        copy = NormalizedCopy(self.shape, self.transform, self.pair)
        return ShapeEntry(self.entry_id, self.shape_id, self.image_id, copy)


def record_size(num_vertices: int) -> int:
    """Encoded size in bytes of a record with ``num_vertices`` vertices."""
    return RECORD_HEADER_SIZE + 8 * num_vertices


def encode_entry(entry: ShapeEntry) -> bytes:
    """Serialize one shape-base entry."""
    shape = entry.shape
    image_id = -1 if entry.image_id is None else int(entry.image_id)
    a, b, tx, ty = entry.copy.transform.as_tuple()
    flags = 1 if shape.closed else 0
    header = _HEADER.pack(entry.entry_id, entry.shape_id, image_id,
                          entry.copy.pair[0], entry.copy.pair[1],
                          a, b, tx, ty, flags, shape.num_vertices)
    body = shape.vertices.astype("<f4").tobytes()
    return header + body


def decode_record(payload: bytes, offset: int = 0) -> Tuple[ShapeRecord, int]:
    """Decode one record starting at ``offset``; returns (record, end).

    Raises ``ValueError`` on truncated input.
    """
    if offset + RECORD_HEADER_SIZE > len(payload):
        raise ValueError("truncated record header")
    (entry_id, shape_id, image_id, pair_i, pair_j,
     a, b, tx, ty, flags, num_vertices) = _HEADER.unpack_from(payload, offset)
    body_start = offset + RECORD_HEADER_SIZE
    body_end = body_start + 8 * num_vertices
    if body_end > len(payload):
        raise ValueError("truncated record body")
    vertices = np.frombuffer(payload, dtype="<f4",
                             count=2 * num_vertices,
                             offset=body_start).reshape(-1, 2)
    shape = Shape(vertices.astype(np.float64), closed=bool(flags & 1))
    record = ShapeRecord(
        entry_id=entry_id,
        shape_id=shape_id,
        image_id=None if image_id < 0 else image_id,
        pair=(pair_i, pair_j),
        transform=SimilarityTransform(a, b, tx, ty),
        shape=shape)
    return record, body_end
