"""External storage substrate (paper Section 4): simulated block device,
LRU buffer pool, ~200-byte shape records, layout policies and the
externally-stored shape base.
"""

from .buffer import BufferPool, BufferStats
from .disk import DEFAULT_BLOCK_SIZE, BlockDevice, IOStats
from .layout import (LAYOUTS, compute_signatures, local_optimization,
                     make_layout, rehash_cost_localopt, rehash_cost_sorted,
                     sort_by_mean_curve, sort_by_median_curve,
                     sort_lexicographic)
from .persist import (CorruptSnapshotError, load_base, save_base,
                      snapshot_info)
from .serialization import (RECORD_HEADER_SIZE, ShapeRecord, decode_record,
                            encode_entry, record_size)
from .shapestore import ExternalShapeStore, StoreStats

__all__ = [
    "BlockDevice", "BufferPool", "BufferStats", "CorruptSnapshotError",
    "DEFAULT_BLOCK_SIZE",
    "ExternalShapeStore", "IOStats", "LAYOUTS", "RECORD_HEADER_SIZE",
    "ShapeRecord", "StoreStats", "compute_signatures", "decode_record",
    "encode_entry", "load_base", "local_optimization", "make_layout",
    "record_size", "save_base", "snapshot_info",
    "rehash_cost_localopt", "rehash_cost_sorted", "sort_by_mean_curve",
    "sort_by_median_curve", "sort_lexicographic",
]
