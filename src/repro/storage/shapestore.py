"""The externally-stored shape base (paper Section 4).

``ExternalShapeStore`` serializes every entry of a :class:`ShapeBase`
into 1-KB blocks following a layout policy, and serves reads through an
LRU buffer pool.  The storage experiments run a similarity query, take
the matcher's candidate-evaluation trace, replay it against stores built
with the different layouts, and compare device read counts — the exact
methodology behind Figures 7 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.shapebase import ShapeBase
from ..hashing.characteristic import Quadruple
from ..hashing.curves import HashCurveFamily
from .buffer import BufferPool
from .disk import DEFAULT_BLOCK_SIZE, BlockDevice
from .layout import compute_signatures, make_layout
from .serialization import ShapeRecord, decode_record, encode_entry


@dataclass
class StoreStats:
    """Build-time facts about one store."""

    num_entries: int
    num_blocks: int
    bytes_used: int
    layout: str

    @property
    def entries_per_block(self) -> float:
        if self.num_blocks == 0:
            return 0.0
        return self.num_entries / self.num_blocks


class ExternalShapeStore:
    """Block-packed, buffered view of a shape base.

    Parameters
    ----------
    base:
        The in-memory shape base to externalize.
    layout:
        Layout policy name (see :mod:`repro.storage.layout`).
    buffer_blocks:
        LRU buffer capacity in blocks (the paper's experiments use
        1..100).
    family / signatures:
        The hash-curve family (and optionally precomputed signatures)
        driving the sort-based layouts; sharing signatures across
        stores built from the same base avoids recomputation.
    """

    def __init__(self, base: ShapeBase, layout: str = "mean",
                 buffer_blocks: int = 100,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 family: Optional[HashCurveFamily] = None,
                 signatures: Optional[Sequence[Quadruple]] = None,
                 **layout_kwargs):
        self.base = base
        self.layout_name = layout
        self.device = BlockDevice(block_size)
        self.buffer = BufferPool(self.device, buffer_blocks)
        if signatures is None:
            family = family or HashCurveFamily(50)
            signatures = compute_signatures(base, family)
        self.signatures = list(signatures)
        self.order = make_layout(layout, base, self.signatures,
                                 **layout_kwargs)
        self._directory: Dict[int, Tuple[int, int]] = {}
        self._pack()

    # ------------------------------------------------------------------
    def _pack(self) -> None:
        """Serialize entries in layout order, packing blocks greedily."""
        bytes_used = 0
        current = bytearray()
        current_slots: List[int] = []

        def flush() -> None:
            nonlocal current, current_slots
            if not current_slots:
                return
            block_id = self.device.allocate(bytes(current))
            for slot, entry_id in enumerate(current_slots):
                self._directory[entry_id] = (block_id, slot)
            current = bytearray()
            current_slots = []

        for entry_id in self.order:
            blob = encode_entry(self.base.entry(entry_id))
            if len(blob) > self.device.block_size:
                raise ValueError(
                    f"entry {entry_id} ({len(blob)} bytes) does not fit a "
                    f"{self.device.block_size}-byte block")
            if len(current) + len(blob) > self.device.block_size:
                flush()
            current.extend(blob)
            current_slots.append(entry_id)
            bytes_used += len(blob)
        flush()
        self._bytes_used = bytes_used

    # ------------------------------------------------------------------
    def block_of(self, entry_id: int) -> int:
        """Block id holding an entry (directory lookup, no I/O)."""
        return self._directory[entry_id][0]

    def read_entry(self, entry_id: int) -> ShapeRecord:
        """Read one entry through the buffer pool."""
        block_id, slot = self._directory[entry_id]
        payload = self.buffer.read_block(block_id)
        offset = 0
        record = None
        for _ in range(slot + 1):
            record, offset = decode_record(payload, offset)
        assert record is not None and record.entry_id == entry_id
        return record

    def read_block_records(self, block_id: int) -> List[ShapeRecord]:
        """All records of one block (sequential scan helper)."""
        payload = self.buffer.read_block(block_id)
        records: List[ShapeRecord] = []
        offset = 0
        while True:
            try:
                record, offset = decode_record(payload, offset)
            except ValueError:
                break
            if record.shape.num_vertices == 0:
                break
            records.append(record)
            if offset >= len(payload):
                break
        return records

    # ------------------------------------------------------------------
    def replay_trace(self, entry_ids: Iterable[int],
                     reset_buffer: bool = False) -> int:
        """Read the given entries in order; return device reads incurred.

        This is the experiment primitive: the matcher's candidate trace
        goes in, the number of I/O operations comes out.  With
        ``reset_buffer`` the pool starts cold (per-query accounting in
        Figure 7 keeps the buffer warm across a query's accesses but
        cold across queries).
        """
        if reset_buffer:
            self.buffer.clear()
        before = self.device.stats.reads
        for entry_id in entry_ids:
            self.read_entry(entry_id)
        return self.device.stats.reads - before

    def rehash(self, layout: str, **layout_kwargs) -> "IOStats":
        """Re-layout the store in place; returns the I/O it cost.

        Models the paper's rehashing discussion (Sections 4.1-4.2):
        every existing block is read once, the new order is computed,
        and every new block is written once.  The store's device,
        buffer and directory are replaced; the buffer starts cold.
        """
        from .disk import IOStats
        old_blocks = self.device.num_blocks
        # Read every block through the device (counted), as an external
        # rehash would.
        for block_id in range(old_blocks):
            self.device.read_block(block_id)
        self.layout_name = layout
        self.order = make_layout(layout, self.base, self.signatures,
                                 **layout_kwargs)
        buffer_capacity = self.buffer.capacity
        self.device = BlockDevice(self.device.block_size)
        self.buffer = BufferPool(self.device, buffer_capacity)
        self._directory = {}
        self._pack()
        return IOStats(reads=old_blocks, writes=self.device.num_blocks)

    def stats(self) -> StoreStats:
        return StoreStats(num_entries=len(self._directory),
                          num_blocks=self.device.num_blocks,
                          bytes_used=self._bytes_used,
                          layout=self.layout_name)

    def __repr__(self) -> str:
        s = self.stats()
        return (f"ExternalShapeStore(layout={s.layout!r}, "
                f"entries={s.num_entries}, blocks={s.num_blocks}, "
                f"buffer={self.buffer.capacity})")
