"""Simulated block device (paper Section 4).

The paper's storage experiments report *counts of I/O operations*
against 1-Kbyte disk blocks; this module provides exactly that
instrument: a block-addressed byte store with read/write counters.
Wall-clock is irrelevant — the device is in memory — but every
``read_block``/``write_block`` is tallied, and the buffer pool in
:mod:`.buffer` sits on top to model the paper's "internal memory
buffer" of 1..100 blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: The paper's block size (Section 4.1: "1Kbyte disk block").
DEFAULT_BLOCK_SIZE = 1024


@dataclass
class IOStats:
    """Cumulative device-level I/O counters."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def snapshot(self) -> "IOStats":
        return IOStats(self.reads, self.writes)

    def delta(self, earlier: "IOStats") -> "IOStats":
        """I/O performed since ``earlier`` (an earlier snapshot)."""
        return IOStats(self.reads - earlier.reads,
                       self.writes - earlier.writes)


class BlockDevice:
    """A fixed-block-size byte store with I/O accounting."""

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE):
        if block_size < 64:
            raise ValueError("block size must be at least 64 bytes")
        self.block_size = int(block_size)
        self._blocks: List[bytes] = []
        self.stats = IOStats()

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def size_bytes(self) -> int:
        return self.num_blocks * self.block_size

    def allocate(self, payload: bytes = b"") -> int:
        """Append a new block initialized with ``payload``; returns its id.

        Allocation writes are *not* counted as query I/O — the paper's
        numbers are per-query reads against an already-built base; use
        :attr:`stats` snapshots around the region of interest instead of
        assuming zero.
        """
        if len(payload) > self.block_size:
            raise ValueError(f"payload of {len(payload)} bytes exceeds the "
                             f"{self.block_size}-byte block size")
        self._blocks.append(bytes(payload).ljust(self.block_size, b"\0"))
        return len(self._blocks) - 1

    def read_block(self, block_id: int) -> bytes:
        """Read one block (counted)."""
        self._check(block_id)
        self.stats.reads += 1
        return self._blocks[block_id]

    def write_block(self, block_id: int, payload: bytes) -> None:
        """Overwrite one block (counted)."""
        self._check(block_id)
        if len(payload) > self.block_size:
            raise ValueError(f"payload of {len(payload)} bytes exceeds the "
                             f"{self.block_size}-byte block size")
        self.stats.writes += 1
        self._blocks[block_id] = bytes(payload).ljust(self.block_size, b"\0")

    def _check(self, block_id: int) -> None:
        if not 0 <= block_id < len(self._blocks):
            raise IndexError(f"block {block_id} out of range "
                             f"(device has {len(self._blocks)} blocks)")

    def reset_stats(self) -> None:
        self.stats = IOStats()

    def __repr__(self) -> str:
        return (f"BlockDevice(blocks={self.num_blocks}, "
                f"block_size={self.block_size}, reads={self.stats.reads}, "
                f"writes={self.stats.writes})")
