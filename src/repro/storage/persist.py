"""File persistence for the shape base.

The external store of Section 4 is an in-memory *simulated* disk so
I/O can be counted; this module is the boring real thing: a single
binary file holding every entry in the record format of
:mod:`.serialization`, with a small header.  Originals are recovered by
applying each copy's inverse normalization transform, so a loaded base
answers queries identically (up to float32 rounding of the stored
vertices).
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

from ..core.shapebase import ShapeBase
from .serialization import decode_record, encode_entry

MAGIC = b"GSIR"
VERSION = 1
_HEADER = struct.Struct("<4sHfI")     # magic, version, alpha, num entries


def save_base(base: ShapeBase, path: Union[str, Path]) -> int:
    """Write the whole base to ``path``; returns bytes written."""
    path = Path(path)
    blobs = [encode_entry(entry) for entry in base.entries]
    header = _HEADER.pack(MAGIC, VERSION, base.alpha, len(blobs))
    payload = header + b"".join(blobs)
    path.write_bytes(payload)
    return len(payload)


def load_base(path: Union[str, Path], backend: str = "kdtree") -> ShapeBase:
    """Rebuild a :class:`ShapeBase` from a file written by
    :func:`save_base`.

    Every original shape is reconstructed from the first of its stored
    copies via the inverse transform, then re-normalized on insertion —
    so the loaded base has exactly the same structure as one built
    fresh from the recovered originals.
    """
    payload = Path(path).read_bytes()
    if len(payload) < _HEADER.size:
        raise ValueError("truncated shape-base file")
    magic, version, alpha, count = _HEADER.unpack_from(payload, 0)
    if magic != MAGIC:
        raise ValueError("not a GeoSIR shape-base file")
    if version != VERSION:
        raise ValueError(f"unsupported shape-base file version {version}")
    base = ShapeBase(alpha=float(alpha), backend=backend)
    offset = _HEADER.size
    seen = set()
    for _ in range(count):
        record, offset = decode_record(payload, offset)
        if record.shape_id in seen:
            continue
        seen.add(record.shape_id)
        original = record.transform.inverse().apply_shape(record.shape)
        base.add_shape(original, image_id=record.image_id,
                       shape_id=record.shape_id)
    return base
