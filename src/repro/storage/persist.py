"""File persistence for the shape base.

The external store of Section 4 is an in-memory *simulated* disk so
I/O can be counted; this module is the boring real thing: a single
binary file holding every entry in the record format of
:mod:`.serialization`, with a small header.  Originals are recovered by
applying each copy's inverse normalization transform, so a loaded base
answers queries identically (up to float32 rounding of the stored
vertices).

Writes are crash-safe: :func:`save_base` writes to a temp file in the
destination directory, fsyncs it, and publishes with ``os.replace`` —
the destination is always either the old snapshot or the complete new
one, never a torn mix.  The v2 header carries the body length and a
CRC32 of the body; :func:`load_base` verifies both and raises
:class:`CorruptSnapshotError` (a :class:`ValueError`) on truncation or
bit rot instead of loading garbage.  Version-1 files (no checksum)
still load.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Union

from ..core.shapebase import ShapeBase
from .serialization import decode_record, encode_entry

MAGIC = b"GSIR"
VERSION = 2
_PREFIX = struct.Struct("<4sH")       # magic, version
_HEADER_V1 = struct.Struct("<fI")     # alpha, num entries
_HEADER_V2 = struct.Struct("<fIQI")   # alpha, num entries, body len, CRC32


class CorruptSnapshotError(ValueError):
    """A snapshot file is truncated, checksum-broken, or not ours.

    Subclasses :class:`ValueError` so callers guarding persistence
    with ``except (OSError, ValueError)`` keep working.
    """


def save_base(base: ShapeBase, path: Union[str, Path]) -> int:
    """Write the whole base to ``path`` atomically; returns bytes written.

    The payload lands in a same-directory temp file first (fsynced),
    then ``os.replace`` publishes it — a crash mid-write leaves the
    previous snapshot intact, never a torn file.
    """
    path = Path(path)
    body = b"".join(encode_entry(entry) for entry in base.entries)
    header = _PREFIX.pack(MAGIC, VERSION) + _HEADER_V2.pack(
        base.alpha, len(base.entries), len(body), zlib.crc32(body))
    payload = header + body
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return len(payload)


def load_base(path: Union[str, Path], backend: str = "kdtree") -> ShapeBase:
    """Rebuild a :class:`ShapeBase` from a file written by
    :func:`save_base`.

    Every original shape is reconstructed from the first of its stored
    copies via the inverse transform, then re-normalized on insertion —
    so the loaded base has exactly the same structure as one built
    fresh from the recovered originals.  The v2 body length and CRC32
    are verified before any record is decoded.
    """
    payload = Path(path).read_bytes()
    if len(payload) < _PREFIX.size:
        raise CorruptSnapshotError("truncated shape-base file")
    magic, version = _PREFIX.unpack_from(payload, 0)
    if magic != MAGIC:
        raise CorruptSnapshotError("not a GeoSIR shape-base file")
    if version == 1:
        header = _HEADER_V1
    elif version == VERSION:
        header = _HEADER_V2
    else:
        raise CorruptSnapshotError(
            f"unsupported shape-base file version {version}")
    if len(payload) < _PREFIX.size + header.size:
        raise CorruptSnapshotError("truncated shape-base file")
    if version == 1:
        alpha, count = header.unpack_from(payload, _PREFIX.size)
    else:
        alpha, count, body_len, checksum = header.unpack_from(
            payload, _PREFIX.size)
        body = payload[_PREFIX.size + header.size:]
        if len(body) != body_len:
            raise CorruptSnapshotError(
                f"truncated shape-base file: body holds {len(body)} "
                f"bytes, header promises {body_len}")
        if zlib.crc32(body) != checksum:
            raise CorruptSnapshotError(
                "shape-base file checksum mismatch (corrupted snapshot)")
    base = ShapeBase(alpha=float(alpha), backend=backend)
    offset = _PREFIX.size + header.size
    seen = set()
    for _ in range(count):
        record, offset = decode_record(payload, offset)
        if record.shape_id in seen:
            continue
        seen.add(record.shape_id)
        original = record.transform.inverse().apply_shape(record.shape)
        base.add_shape(original, image_id=record.image_id,
                       shape_id=record.shape_id)
    return base
