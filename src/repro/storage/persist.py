"""File persistence for the shape base.

The external store of Section 4 is an in-memory *simulated* disk so
I/O can be counted; this module is the boring real thing: one binary
file per base, crash-safe and checksummed.

Three on-disk versions coexist:

* **v1** — header + per-entry records (no checksum); legacy, load only.
* **v2** — v1 plus body length + CRC32 in the header.  Records store
  only the *normalized* copies with float32 vertices, so loading
  reconstructs each original via the inverse transform and re-runs the
  whole normalization pipeline — an O(normalize) cold start with
  float32 rounding.
* **v3** (default) — array-native: the originals, every normalized
  copy's float64 vertices, all transforms, pairs and entry metadata as
  flat columnar arrays, plus (optionally) the precomputed hashing
  signatures.  :func:`load_base` materializes the base with **zero
  re-normalization** — vertex data is wrapped straight out of the
  file buffer, the flat index arrays are derived by pure slicing, and
  the range index builds lazily (or eagerly with ``warm=True``).  A
  v3-loaded base answers queries bit-for-bit identically to the base
  that was saved.
* **v4** — v3 plus one trailing section of per-entry ANN MinHash
  sketches (``repro.ann``) and their family parameters in the header.
  Loading fills the base's sketch cache, so a service configured with
  the same :class:`~repro.ann.SketchConfig` warms its LSH tier with
  zero sketch recompute.  Written only when :func:`save_base` is
  given ``ann_sketch``; bases without the ANN tier keep writing v3.

Writes are crash-safe: :func:`save_base` writes to a temp file in the
destination directory, fsyncs it, and publishes with ``os.replace`` —
the destination is always either the old snapshot or the complete new
one, never a torn mix.  v2/v3 headers carry the body length and a
CRC32 of the body; :func:`load_base` verifies both and raises
:class:`CorruptSnapshotError` (a :class:`ValueError`) on truncation or
bit rot instead of loading garbage.

**Backing modes.**  v3/v4 bases can load three ways, all bit-for-bit
identical at query time and all recorded in ``base.snapshot_backing``:

* ``"eager"`` — the file is read into process memory (the default);
* ``"mmap"`` — ``load_base(path, mmap=True)`` memory-maps the file
  read-only and wraps every column as a zero-copy ``np.frombuffer``
  view over the mapping.  N processes mapping the same snapshot share
  one set of physical pages (the kernel page cache), which is what the
  :mod:`repro.service.procpool` worker processes rely on: attaching a
  shard costs page-table entries, not a per-process copy of the
  corpus.  The views are read-only — writing through them raises.
* ``"shm"`` — :func:`load_base_buffer` over a
  ``multiprocessing.shared_memory`` segment (the snapshotless service
  path); same zero-copy property, the segment is the shared backing.
"""

from __future__ import annotations

import mmap as _mmap
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..core.shapebase import ShapeBase, ShapeEntry
from ..geometry.polyline import Shape
from ..geometry.transform import NormalizedCopy, SimilarityTransform
from .serialization import decode_record, encode_entry

MAGIC = b"GSIR"
VERSION = 3
_PREFIX = struct.Struct("<4sH")       # magic, version
_HEADER_V1 = struct.Struct("<fI")     # alpha, num entries
_HEADER_V2 = struct.Struct("<fIQI")   # alpha, num entries, body len, CRC32
# alpha (f8), num shapes, num entries, total original vertices, total
# copy vertices, signature curve count (0 = none), body len, CRC32
_HEADER_V3 = struct.Struct("<dIIQQiQI")
# v3's fields plus the embedded sketch family: num hashes, grid, seed
# (inserted before body len / CRC32).
_HEADER_V4 = struct.Struct("<dIIQQiiiqQI")


class CorruptSnapshotError(ValueError):
    """A snapshot file is truncated, checksum-broken, or not ours.

    Subclasses :class:`ValueError` so callers guarding persistence
    with ``except (OSError, ValueError)`` keep working.
    """


def _write_atomic(path: Path, payload: bytes) -> int:
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return len(payload)


def _encode_v2(base: ShapeBase) -> bytes:
    body = b"".join(encode_entry(entry) for entry in base.entries)
    header = _PREFIX.pack(MAGIC, 2) + _HEADER_V2.pack(
        base.alpha, len(base.entries), len(body), zlib.crc32(body))
    return header + body


def _encode_v3(base: ShapeBase, hash_curves: Optional[int],
               ann_sketch=None) -> bytes:
    shape_items = list(base.shapes.items())      # insertion order
    sid_to_idx = {sid: i for i, (sid, _) in enumerate(shape_items)}
    shape_ids = np.array([sid for sid, _ in shape_items], dtype="<i8")
    shape_image = np.array(
        [-1 if base.shape_image[sid] is None else int(base.shape_image[sid])
         for sid, _ in shape_items], dtype="<i8")
    orig_counts = np.array([s.num_vertices for _, s in shape_items],
                           dtype="<i4")
    orig_closed = np.array([1 if s.closed else 0 for _, s in shape_items],
                           dtype="<u1")
    orig_vertices = (np.concatenate([s.vertices for _, s in shape_items],
                                    axis=0)
                     if shape_items else np.zeros((0, 2))).astype("<f8")

    entries = base.entries
    entry_shape_idx = np.array([sid_to_idx[e.shape_id] for e in entries],
                               dtype="<i4")
    pairs = np.array([e.copy.pair for e in entries],
                     dtype="<u2").reshape(len(entries), 2)
    transforms = np.array([e.copy.transform.as_tuple() for e in entries],
                          dtype="<f8").reshape(len(entries), 4)
    copy_counts = np.array([e.shape.num_vertices for e in entries],
                           dtype="<i4")
    copy_vertices = (np.concatenate([e.shape.vertices for e in entries],
                                    axis=0)
                     if entries else np.zeros((0, 2))).astype("<f8")

    if hash_curves is not None:
        from ..hashing.curves import HashCurveFamily
        from .layout import compute_signatures
        compute_signatures(base, HashCurveFamily(int(hash_curves)))
    sig = base._signature_cache
    if sig is not None and len(sig[1]) == len(entries) and len(entries):
        sig_curves, sig_rows = int(sig[0]), sig[1].astype("<i2")
    else:
        sig_curves, sig_rows = 0, np.zeros((0, 4), dtype="<i2")

    parts = [
        shape_ids.tobytes(), shape_image.tobytes(), orig_counts.tobytes(),
        orig_closed.tobytes(), entry_shape_idx.tobytes(), pairs.tobytes(),
        transforms.tobytes(), copy_counts.tobytes(), orig_vertices.tobytes(),
        copy_vertices.tobytes(), sig_rows.tobytes(),
    ]
    if ann_sketch is None:
        body = b"".join(parts)
        header = _PREFIX.pack(MAGIC, 3) + _HEADER_V3.pack(
            base.alpha, len(shape_items), len(entries), len(orig_vertices),
            len(copy_vertices), sig_curves, len(body), zlib.crc32(body))
        return header + body
    from ..ann.sketch import compute_entry_sketches
    sketch_rows = compute_entry_sketches(base, ann_sketch).astype("<i8")
    sk_hashes, sk_grid, sk_seed = ann_sketch.key
    body = b"".join(parts + [sketch_rows.tobytes()])
    header = _PREFIX.pack(MAGIC, 4) + _HEADER_V4.pack(
        base.alpha, len(shape_items), len(entries), len(orig_vertices),
        len(copy_vertices), sig_curves, sk_hashes, sk_grid, sk_seed,
        len(body), zlib.crc32(body))
    return header + body


def save_base(base: ShapeBase, path: Union[str, Path], *,
              version: int = VERSION,
              hash_curves: Optional[int] = None,
              ann_sketch=None) -> int:
    """Write the whole base to ``path`` atomically; returns bytes written.

    ``version`` selects the on-disk format (3, the array-native
    default, or 2 for compatibility with older readers).  With
    ``hash_curves`` set, a v3/v4 snapshot additionally embeds the
    per-entry characteristic signatures for that curve-family size
    (computing them now if the base has no cache), so a later
    :class:`~repro.hashing.ApproximateRetriever` build costs nothing.
    With ``ann_sketch`` (a :class:`~repro.ann.SketchConfig`) the
    snapshot is written as v4 and embeds the per-entry ANN MinHash
    sketches the same way, so a service's LSH tier warms with zero
    recompute; passing ``version=4`` without ``ann_sketch`` is an
    error (a v4 file exists *because* it carries sketches).

    The payload lands in a same-directory temp file first (fsynced),
    then ``os.replace`` publishes it — a crash mid-write leaves the
    previous snapshot intact, never a torn file.
    """
    path = Path(path)
    if ann_sketch is not None and version not in (3, 4):
        raise ValueError(
            "embedding ANN sketches requires the v4 format")
    if version == 4 and ann_sketch is None:
        raise ValueError(
            "version 4 embeds ANN sketches; pass ann_sketch")
    if version in (3, 4):
        payload = _encode_v3(base, hash_curves, ann_sketch)
    elif version == 2:
        payload = _encode_v2(base)
    else:
        raise ValueError(f"cannot write shape-base file version {version}")
    return _write_atomic(path, payload)


def encode_base(base: ShapeBase, *, hash_curves: Optional[int] = None,
                ann_sketch=None) -> bytes:
    """The v3/v4 snapshot payload for ``base`` as one bytes object.

    Exactly what :func:`save_base` would write (v4 when ``ann_sketch``
    is given, v3 otherwise), without touching the filesystem.  The
    process-worker tier publishes shard bases through shared-memory
    segments with this; :func:`load_base_buffer` is the inverse.
    """
    return _encode_v3(base, hash_curves, ann_sketch)


# ----------------------------------------------------------------------
# Snapshot deltas (streaming publication)
# ----------------------------------------------------------------------
#: A delta payload carries only the shapes *appended* to a base after
#: a known prior state — the unit the process tier ships to workers on
#: a version bump instead of republishing the whole corpus.  Deltas
#: cover pure-append windows only: removals compact entry ids, so any
#: removal forces a full republish (the publisher's compaction rule).
MAGIC_DELTA = b"GSID"
DELTA_VERSION = 1
# alpha, prior shapes, prior entries, added shapes, added entries,
# added original vertices, added copy vertices, signature curve count
# (0 = none), sketch hashes / grid / seed (0/0/0 = none), body length,
# CRC32 of the body.
_HEADER_DELTA = struct.Struct("<dIIIIQQiiiqQI")


def encode_base_delta(base: ShapeBase, prior_shapes: int,
                      prior_entries: int) -> bytes:
    """Columnar payload of everything appended after a prior state.

    ``prior_shapes``/``prior_entries`` name the consumer's current
    counts; the delta carries the shapes and entries past them, sliced
    from the same columns a v3/v4 snapshot stores.  Signature and
    sketch rows for the new entries ride along *when the base's caches
    are warm* (the ingest path keeps them patched), so the consumer
    extends its own caches without recomputing; cold caches just omit
    the section.  The caller must hold the base still (the shard's
    write lock) while encoding.
    """
    shape_items = list(base.shapes.items())[prior_shapes:]
    entries = base.entries[prior_entries:]
    if prior_shapes + len(shape_items) != len(base.shapes) or \
            prior_entries + len(entries) != len(base.entries):
        raise ValueError("prior counts exceed the base's current size")
    sid_to_idx = {sid: i for i, (sid, _) in enumerate(shape_items)}
    shape_ids = np.array([sid for sid, _ in shape_items], dtype="<i8")
    shape_image = np.array(
        [-1 if base.shape_image[sid] is None else int(base.shape_image[sid])
         for sid, _ in shape_items], dtype="<i8")
    orig_counts = np.array([s.num_vertices for _, s in shape_items],
                           dtype="<i4")
    orig_closed = np.array([1 if s.closed else 0 for _, s in shape_items],
                           dtype="<u1")
    orig_vertices = (np.concatenate([s.vertices for _, s in shape_items],
                                    axis=0)
                     if shape_items else np.zeros((0, 2))).astype("<f8")
    try:
        entry_shape_idx = np.array([sid_to_idx[e.shape_id] for e in entries],
                                   dtype="<i4")
    except KeyError as exc:
        raise ValueError(
            f"entry references shape {exc} outside the delta window "
            f"(not a pure-append window)") from exc
    pairs = np.array([e.copy.pair for e in entries],
                     dtype="<u2").reshape(len(entries), 2)
    transforms = np.array([e.copy.transform.as_tuple() for e in entries],
                          dtype="<f8").reshape(len(entries), 4)
    copy_counts = np.array([e.shape.num_vertices for e in entries],
                           dtype="<i4")
    copy_vertices = (np.concatenate([e.shape.vertices for e in entries],
                                    axis=0)
                     if entries else np.zeros((0, 2))).astype("<f8")

    sig = base._signature_cache
    if sig is not None and len(sig[1]) == len(base.entries) and entries:
        sig_curves = int(sig[0])
        sig_rows = np.asarray(sig[1][prior_entries:]).astype("<i2")
    else:
        sig_curves, sig_rows = 0, np.zeros((0, 4), dtype="<i2")
    sketch = base._sketch_cache
    if sketch is not None and len(sketch[1]) == len(base.entries) \
            and entries:
        (sk_hashes, sk_grid, sk_seed) = sketch[0]
        sketch_rows = np.asarray(sketch[1][prior_entries:]).astype("<i8")
    else:
        sk_hashes = sk_grid = sk_seed = 0
        sketch_rows = np.zeros((0, 0), dtype="<i8")

    body = b"".join([
        shape_ids.tobytes(), shape_image.tobytes(), orig_counts.tobytes(),
        orig_closed.tobytes(), entry_shape_idx.tobytes(), pairs.tobytes(),
        transforms.tobytes(), copy_counts.tobytes(),
        orig_vertices.tobytes(), copy_vertices.tobytes(),
        sig_rows.tobytes(), sketch_rows.tobytes(),
    ])
    header = _PREFIX.pack(MAGIC_DELTA, DELTA_VERSION) + _HEADER_DELTA.pack(
        base.alpha, prior_shapes, prior_entries, len(shape_items),
        len(entries), len(orig_vertices), len(copy_vertices), sig_curves,
        int(sk_hashes), int(sk_grid), int(sk_seed),
        len(body), zlib.crc32(body))
    return header + body


def apply_base_delta(base: ShapeBase, payload) -> int:
    """Append a delta payload's shapes to ``base``; returns the first
    new entry id.

    The inverse of :func:`encode_base_delta`: validates the magic,
    CRC and — critically — that ``base`` is at exactly the prior state
    the delta was cut against (same shape/entry counts and alpha), so
    a worker that missed a window fails loudly instead of diverging.
    Entries are rebuilt from the stored copy vertices and transforms
    (zero re-normalization, bit-for-bit) and absorbed through the
    base's own append path (``_register_new_entries``), with the
    delta's signature/sketch rows passed through when they match the
    base's warm cache families.
    """
    view = memoryview(payload)
    if len(view) < _PREFIX.size + _HEADER_DELTA.size:
        raise CorruptSnapshotError("truncated shape-base delta")
    magic, version = _PREFIX.unpack_from(view, 0)
    if magic != MAGIC_DELTA:
        raise CorruptSnapshotError("not a GeoSIR shape-base delta")
    if version != DELTA_VERSION:
        raise CorruptSnapshotError(
            f"unsupported shape-base delta version {version}")
    (alpha, prior_shapes, prior_entries, add_shapes, add_entries,
     n_orig, n_copy, sig_curves, sk_hashes, sk_grid, sk_seed,
     body_len, checksum) = _HEADER_DELTA.unpack_from(view, _PREFIX.size)
    start = _PREFIX.size + _HEADER_DELTA.size
    body = view[start:]
    if len(body) != body_len:
        raise CorruptSnapshotError(
            f"truncated shape-base delta: body holds {len(body)} "
            f"bytes, header promises {body_len}")
    if zlib.crc32(body) != checksum:
        raise CorruptSnapshotError(
            "shape-base delta checksum mismatch")
    if len(base.shapes) != prior_shapes or \
            len(base.entries) != prior_entries:
        raise ValueError(
            f"delta was cut against {prior_shapes} shapes / "
            f"{prior_entries} entries; base holds {len(base.shapes)} / "
            f"{len(base.entries)}")
    if abs(base.alpha - alpha) > 1e-12:
        raise ValueError("delta alpha does not match the base")

    sections = [
        ("shape_ids", "<i8", add_shapes),
        ("shape_image", "<i8", add_shapes),
        ("orig_counts", "<i4", add_shapes),
        ("orig_closed", "<u1", add_shapes),
        ("entry_shape_idx", "<i4", add_entries),
        ("pairs", "<u2", 2 * add_entries),
        ("transforms", "<f8", 4 * add_entries),
        ("copy_counts", "<i4", add_entries),
        ("orig_vertices", "<f8", 2 * n_orig),
        ("copy_vertices", "<f8", 2 * n_copy),
        ("signatures", "<i2", 4 * add_entries if sig_curves else 0),
        ("sketches", "<i8", sk_hashes * add_entries),
    ]
    expected = sum(np.dtype(d).itemsize * c for _, d, c in sections)
    if expected != body_len:
        raise CorruptSnapshotError(
            "shape-base delta section sizes are inconsistent")
    cols: Dict[str, np.ndarray] = {}
    offset = start
    for name, dtype, count in sections:
        cols[name] = np.frombuffer(view, dtype=dtype, count=count,
                                   offset=offset)
        offset += np.dtype(dtype).itemsize * count
    pairs = cols["pairs"].reshape(-1, 2).astype(np.int64)
    transforms = cols["transforms"].reshape(-1, 4)
    orig_vertices = cols["orig_vertices"].reshape(-1, 2)
    copy_vertices = cols["copy_vertices"].reshape(-1, 2)

    shape_ids = cols["shape_ids"]
    images = cols["shape_image"]
    orig_counts = cols["orig_counts"].astype(np.int64)
    orig_offsets = np.concatenate(([0], np.cumsum(orig_counts)))
    closed_flags = cols["orig_closed"] != 0
    for k in range(add_shapes):
        sid = int(shape_ids[k])
        if sid in base.shapes:
            raise ValueError(f"delta shape id {sid} already present")
        image_id = None if images[k] < 0 else int(images[k])
        # Copy out of the payload: unlike a snapshot load, nothing
        # pins the delta buffer after this call returns.
        verts = np.array(orig_vertices[orig_offsets[k]:
                                       orig_offsets[k + 1]])
        base.shapes[sid] = Shape._trusted(verts, bool(closed_flags[k]))
        base.shape_image[sid] = image_id
        base._entries_by_shape[sid] = []
        if image_id is not None:
            base._shapes_by_image.setdefault(image_id, []).append(sid)
        base._next_shape_id = max(base._next_shape_id, sid + 1)

    copy_counts = cols["copy_counts"].astype(np.int64)
    copy_offsets = np.concatenate(([0], np.cumsum(copy_counts)))
    entry_shape_idx = cols["entry_shape_idx"]
    first_entry = prior_entries
    new_entries: List[ShapeEntry] = []
    for e in range(add_entries):
        s_idx = int(entry_shape_idx[e])
        sid = int(shape_ids[s_idx])
        verts = np.array(copy_vertices[copy_offsets[e]:copy_offsets[e + 1]])
        copy = NormalizedCopy(
            Shape._trusted(verts, bool(closed_flags[s_idx])),
            SimilarityTransform(transforms[e, 0], transforms[e, 1],
                                transforms[e, 2], transforms[e, 3]),
            (int(pairs[e, 0]), int(pairs[e, 1])))
        entry = ShapeEntry(first_entry + e, sid,
                           base.shape_image[sid], copy)
        base.entries.append(entry)
        base._entries_by_shape[sid].append(entry.entry_id)
        new_entries.append(entry)

    # Hand cache rows through only when they match the base's warm
    # cache family — _register_new_entries recomputes otherwise.
    sig_rows = None
    if sig_curves and base._signature_cache is not None and \
            int(base._signature_cache[0]) == sig_curves:
        sig_rows = np.array(cols["signatures"]).reshape(-1, 4)
    sketch_rows = None
    if sk_hashes and base._sketch_cache is not None and \
            base._sketch_cache[0] == (sk_hashes, sk_grid, sk_seed):
        sketch_rows = np.array(cols["sketches"]).reshape(-1, sk_hashes)
    base._register_new_entries(new_entries, sig_rows, sketch_rows)
    base.version += 1
    return first_entry


def _load_v3(payload, backend: str, version: int = 3) -> ShapeBase:
    """Materialize a base from a v3/v4 payload buffer.

    ``payload`` may be ``bytes``, an ``mmap.mmap`` mapping or a
    ``memoryview`` — every column array is a zero-copy
    ``np.frombuffer`` view over it, so the caller decides the backing
    (heap, file mapping, shared memory).  The returned arrays are
    read-only whenever the buffer is.
    """
    if version == 4:
        alpha, num_shapes, num_entries, n_orig, n_copy, sig_curves, \
            sk_hashes, sk_grid, sk_seed, body_len, checksum = \
            _HEADER_V4.unpack_from(payload, _PREFIX.size)
        start = _PREFIX.size + _HEADER_V4.size
    else:
        alpha, num_shapes, num_entries, n_orig, n_copy, sig_curves, \
            body_len, checksum = _HEADER_V3.unpack_from(payload,
                                                        _PREFIX.size)
        sk_hashes = sk_grid = sk_seed = 0
        start = _PREFIX.size + _HEADER_V3.size
    # memoryview: no copy of the body for the length/CRC checks even
    # when the payload is a large file mapping.
    body = memoryview(payload)[start:]
    if len(body) != body_len:
        raise CorruptSnapshotError(
            f"truncated shape-base file: body holds {len(body)} "
            f"bytes, header promises {body_len}")
    if zlib.crc32(body) != checksum:
        raise CorruptSnapshotError(
            "shape-base file checksum mismatch (corrupted snapshot)")

    sections = [
        ("shape_ids", "<i8", num_shapes),
        ("shape_image", "<i8", num_shapes),
        ("orig_counts", "<i4", num_shapes),
        ("orig_closed", "<u1", num_shapes),
        ("entry_shape_idx", "<i4", num_entries),
        ("pairs", "<u2", 2 * num_entries),
        ("transforms", "<f8", 4 * num_entries),
        ("copy_counts", "<i4", num_entries),
        ("orig_vertices", "<f8", 2 * n_orig),
        ("copy_vertices", "<f8", 2 * n_copy),
        ("signatures", "<i2", 4 * num_entries if sig_curves else 0),
        ("sketches", "<i8", sk_hashes * num_entries),
    ]
    expected = sum(np.dtype(d).itemsize * c for _, d, c in sections)
    if expected != body_len:
        raise CorruptSnapshotError(
            "shape-base file section sizes are inconsistent")
    cols: Dict[str, np.ndarray] = {}
    offset = start
    for name, dtype, count in sections:
        cols[name] = np.frombuffer(payload, dtype=dtype, count=count,
                                   offset=offset)
        offset += np.dtype(dtype).itemsize * count
    pairs = cols["pairs"].reshape(-1, 2).astype(np.int64)
    transforms = cols["transforms"].reshape(-1, 4)
    orig_vertices = cols["orig_vertices"].reshape(-1, 2)
    copy_vertices = cols["copy_vertices"].reshape(-1, 2)

    base = ShapeBase(alpha=float(alpha), backend=backend)
    shape_ids = cols["shape_ids"]
    images = cols["shape_image"]
    orig_counts = cols["orig_counts"].astype(np.int64)
    orig_offsets = np.concatenate(([0], np.cumsum(orig_counts)))
    closed_flags = cols["orig_closed"] != 0
    for k in range(num_shapes):
        sid = int(shape_ids[k])
        image_id = None if images[k] < 0 else int(images[k])
        verts = orig_vertices[orig_offsets[k]:orig_offsets[k + 1]]
        base.shapes[sid] = Shape._trusted(verts, bool(closed_flags[k]))
        base.shape_image[sid] = image_id
        base._entries_by_shape[sid] = []
        if image_id is not None:
            base._shapes_by_image.setdefault(image_id, []).append(sid)
        base._next_shape_id = max(base._next_shape_id, sid + 1)

    copy_counts = cols["copy_counts"].astype(np.int64)
    copy_offsets = np.concatenate(([0], np.cumsum(copy_counts)))
    entry_shape_idx = cols["entry_shape_idx"]
    for e in range(num_entries):
        s_idx = int(entry_shape_idx[e])
        sid = int(shape_ids[s_idx])
        verts = copy_vertices[copy_offsets[e]:copy_offsets[e + 1]]
        copy = NormalizedCopy(
            Shape._trusted(verts, bool(closed_flags[s_idx])),
            SimilarityTransform(transforms[e, 0], transforms[e, 1],
                                transforms[e, 2], transforms[e, 3]),
            (int(pairs[e, 0]), int(pairs[e, 1])))
        base.entries.append(ShapeEntry(e, sid, base.shape_image[sid], copy))
        base._entries_by_shape[sid].append(e)

    # Derive the flat index arrays by pure slicing (no per-entry work):
    # drop each copy's two anchor rows from the stored vertex block.
    if num_entries:
        mask = np.ones(len(copy_vertices), dtype=bool)
        mask[copy_offsets[:-1] + pairs[:, 0]] = False
        mask[copy_offsets[:-1] + pairs[:, 1]] = False
        sizes = copy_counts - 2
        base._vertex_points = copy_vertices[mask]
        base._entry_sizes = sizes
        offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        base._entry_offsets = offsets
        base._vertex_owner = np.repeat(np.arange(num_entries), sizes)
    if sig_curves:
        base.set_signature_cache(sig_curves,
                                 cols["signatures"].reshape(-1, 4))
    if sk_hashes:
        base.set_sketch_cache(
            (int(sk_hashes), int(sk_grid), int(sk_seed)),
            cols["sketches"].reshape(-1, sk_hashes))
    base.version = 1 if num_shapes else 0
    return base


def load_base(path: Union[str, Path], backend: str = "kdtree", *,
              warm: bool = False, mmap: bool = False) -> ShapeBase:
    """Rebuild a :class:`ShapeBase` from a file written by
    :func:`save_base`.

    v3/v4 snapshots materialize directly from the stored arrays — no
    re-normalization, exact float64 vertices, cached signatures (and,
    for v4, cached ANN sketches) — with
    the range index built lazily on first use, or right away when
    ``warm`` is true.  v1/v2 snapshots reconstruct each original from
    the first of its stored copies via the inverse transform and
    re-normalize through the bulk-ingest path (identical structure to
    a fresh build, up to the old formats' float32 vertex rounding).
    The stored body length and CRC32 (v2/v3) are verified before any
    array or record is decoded.

    With ``mmap=True`` a v3/v4 file is memory-mapped read-only and the
    vertex/transform/signature/sketch columns become zero-copy views
    over the mapping: no per-process copy of the corpus, physical
    pages shared with every other process mapping the same file, and
    ``base.snapshot_backing == "mmap"``.  The answers are bit-for-bit
    identical to an eager load.  v1/v2 files cannot be served from a
    mapping (their load path re-normalizes every shape), so the flag
    silently falls back to the eager decode for them.
    """
    path = Path(path)
    if mmap:
        with open(path, "rb") as handle:
            head = handle.read(_PREFIX.size)
            if len(head) >= _PREFIX.size:
                magic, version = _PREFIX.unpack_from(head, 0)
                if magic == MAGIC and version in (3, 4):
                    mapping = _mmap.mmap(handle.fileno(), 0,
                                         access=_mmap.ACCESS_READ)
                    if len(mapping) < _PREFIX.size + (
                            _HEADER_V3 if version == 3
                            else _HEADER_V4).size:
                        raise CorruptSnapshotError(
                            "truncated shape-base file")
                    base = _load_v3(mapping, backend, version)
                    base.snapshot_backing = "mmap"
                    base._backing_buffer = mapping
                    if warm:
                        base._ensure_arrays()
                    return base
        # v1/v2 (or not-ours, reported below): eager fallback.
    payload = path.read_bytes()
    if len(payload) < _PREFIX.size:
        raise CorruptSnapshotError("truncated shape-base file")
    magic, version = _PREFIX.unpack_from(payload, 0)
    if magic != MAGIC:
        raise CorruptSnapshotError("not a GeoSIR shape-base file")
    if version == 1:
        header = _HEADER_V1
    elif version == 2:
        header = _HEADER_V2
    elif version == 3:
        header = _HEADER_V3
    elif version == 4:
        header = _HEADER_V4
    else:
        raise CorruptSnapshotError(
            f"unsupported shape-base file version {version}")
    if len(payload) < _PREFIX.size + header.size:
        raise CorruptSnapshotError("truncated shape-base file")
    if version in (3, 4):
        base = _load_v3(payload, backend, version)
        base.snapshot_backing = "eager"
        if warm:
            base._ensure_arrays()
        return base
    if version == 1:
        alpha, count = header.unpack_from(payload, _PREFIX.size)
    else:
        alpha, count, body_len, checksum = header.unpack_from(
            payload, _PREFIX.size)
        body = payload[_PREFIX.size + header.size:]
        if len(body) != body_len:
            raise CorruptSnapshotError(
                f"truncated shape-base file: body holds {len(body)} "
                f"bytes, header promises {body_len}")
        if zlib.crc32(body) != checksum:
            raise CorruptSnapshotError(
                "shape-base file checksum mismatch (corrupted snapshot)")
    base = ShapeBase(alpha=float(alpha), backend=backend)
    offset = _PREFIX.size + header.size
    seen = set()
    originals: List[Shape] = []
    shape_ids: List[int] = []
    image_ids: List[Optional[int]] = []
    for _ in range(count):
        record, offset = decode_record(payload, offset)
        if record.shape_id in seen:
            continue
        seen.add(record.shape_id)
        originals.append(record.transform.inverse().apply_shape(record.shape))
        shape_ids.append(record.shape_id)
        image_ids.append(record.image_id)
    if originals:
        base.add_shapes(originals, image_ids=image_ids, shape_ids=shape_ids)
    base.snapshot_backing = "eager"
    if warm:
        base._ensure_arrays()
    return base


def load_base_buffer(buffer, backend: str = "kdtree", *,
                     warm: bool = False,
                     backing: str = "buffer") -> ShapeBase:
    """Materialize a v3/v4 snapshot payload straight from a buffer.

    ``buffer`` is any object exposing the buffer protocol — a
    ``bytes`` payload, a ``memoryview`` over a
    ``multiprocessing.shared_memory`` segment, an ``mmap`` mapping.
    The column arrays view the buffer zero-copy, so the caller must
    keep it alive for the base's lifetime (the base pins it via
    ``_backing_buffer``); pass a read-only view (e.g.
    ``memoryview(shm.buf).toreadonly()``) to guarantee the immutable-
    snapshot contract.  ``backing`` labels ``base.snapshot_backing``
    (the process tier uses ``"shm"``).  Only array-native v3/v4
    payloads are supported — the whole point is zero-copy attach.
    """
    view = memoryview(buffer)
    if len(view) < _PREFIX.size:
        raise CorruptSnapshotError("truncated shape-base payload")
    magic, version = _PREFIX.unpack_from(view, 0)
    if magic != MAGIC:
        raise CorruptSnapshotError("not a GeoSIR shape-base payload")
    if version not in (3, 4):
        raise CorruptSnapshotError(
            f"buffer loads need an array-native v3/v4 payload, "
            f"got version {version}")
    header = _HEADER_V3 if version == 3 else _HEADER_V4
    if len(view) < _PREFIX.size + header.size:
        raise CorruptSnapshotError("truncated shape-base payload")
    base = _load_v3(view, backend, version)
    base.snapshot_backing = backing
    base._backing_buffer = buffer
    if warm:
        base._ensure_arrays()
    return base


def snapshot_info(path: Union[str, Path]) -> Dict[str, object]:
    """Header-only peek at a snapshot: version, alpha and counts.

    Reads just the fixed-size header (no body verification) — cheap
    enough for CLI ``stats`` to call on every invocation.
    ``mmap_capable`` reports whether the file's format supports the
    zero-copy backing modes (``load_base(mmap=True)`` / worker-process
    attach): true for the array-native v3/v4 formats, false for the
    re-normalizing v1/v2 loaders.
    """
    with open(path, "rb") as handle:
        head = handle.read(_PREFIX.size + _HEADER_V4.size)
        handle.seek(0, os.SEEK_END)
        size_bytes = handle.tell()
    if len(head) < _PREFIX.size:
        raise CorruptSnapshotError("truncated shape-base file")
    magic, version = _PREFIX.unpack_from(head, 0)
    if magic != MAGIC:
        raise CorruptSnapshotError("not a GeoSIR shape-base file")
    info: Dict[str, object] = {"version": int(version),
                               "size_bytes": int(size_bytes),
                               "mmap_capable": version in (3, 4)}
    if version == 1 and len(head) >= _PREFIX.size + _HEADER_V1.size:
        alpha, count = _HEADER_V1.unpack_from(head, _PREFIX.size)
        info.update(alpha=float(alpha), num_entries=int(count))
    elif version == 2 and len(head) >= _PREFIX.size + _HEADER_V2.size:
        alpha, count, _, _ = _HEADER_V2.unpack_from(head, _PREFIX.size)
        info.update(alpha=float(alpha), num_entries=int(count))
    elif version == 3 and len(head) >= _PREFIX.size + _HEADER_V3.size:
        alpha, num_shapes, num_entries, _, _, sig_curves, _, _ = \
            _HEADER_V3.unpack_from(head, _PREFIX.size)
        info.update(alpha=float(alpha), num_shapes=int(num_shapes),
                    num_entries=int(num_entries),
                    signature_curves=int(sig_curves))
    elif version == 4 and len(head) >= _PREFIX.size + _HEADER_V4.size:
        alpha, num_shapes, num_entries, _, _, sig_curves, sk_hashes, \
            sk_grid, sk_seed, _, _ = _HEADER_V4.unpack_from(
                head, _PREFIX.size)
        info.update(alpha=float(alpha), num_shapes=int(num_shapes),
                    num_entries=int(num_entries),
                    signature_curves=int(sig_curves),
                    ann_hashes=int(sk_hashes), ann_grid=int(sk_grid),
                    ann_seed=int(sk_seed))
    elif version in (1, 2, 3, 4):
        raise CorruptSnapshotError("truncated shape-base file")
    else:
        raise CorruptSnapshotError(
            f"unsupported shape-base file version {version}")
    return info
