"""External storage layout policies (paper Section 4).

The retrieval algorithm preserves locality — shapes processed in
succession are usually similar — so the goal is to place similar shapes
in adjacent disk blocks.  The paper evaluates:

* three sorts by the characteristic hash-curve quadruple (Section 4.1):

  (i)   by the curve closest to the quadruple mean,
  (ii)  lexicographically by the quadruple,
  (iii) by the better of the two median curves;

* a greedy *local optimization* of the average similarity measure
  within each block (Section 4.2), reported ~30% better in I/O but with
  an O(N^1.5 log N) rehash instead of O(N log N).

Each policy returns a permutation of entry ids; the
:class:`~repro.storage.shapestore.ExternalShapeStore` packs records
into blocks in that order.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..core.shapebase import ShapeBase
from ..hashing.characteristic import (Quadruple, characteristic_quadruple,
                                      quadruple_mean_curve,
                                      quadruple_median_curve)
from ..hashing.curves import HashCurveFamily

LayoutFn = Callable[..., List[int]]

LAYOUTS: Dict[str, LayoutFn] = {}


def _register(name: str):
    def decorator(fn: LayoutFn) -> LayoutFn:
        LAYOUTS[name] = fn
        return fn
    return decorator


def compute_signatures(base: ShapeBase,
                       family: HashCurveFamily) -> List[Quadruple]:
    """Characteristic quadruple of every entry, in entry-id order.

    Answers from (and fills) the base's signature cache, so hash-table
    builds, layout sorts and snapshot saves share one computation.
    """
    cached = base.cached_signatures(family.k)
    if cached is not None:
        return [(int(a), int(b), int(c), int(d)) for a, b, c, d in cached]
    signatures = [characteristic_quadruple(entry.shape, family)
                  for entry in base]
    if len(base):
        base.set_signature_cache(family.k, signatures)
    return signatures


@_register("mean")
def sort_by_mean_curve(base: ShapeBase,
                       signatures: Sequence[Quadruple]) -> List[int]:
    """Method (i): sort by the curve closest to the quadruple mean."""
    keys = [quadruple_mean_curve(sig) for sig in signatures]
    return sorted(range(len(signatures)),
                  key=lambda e: (keys[e], signatures[e]))


@_register("lexicographic")
def sort_lexicographic(base: ShapeBase,
                       signatures: Sequence[Quadruple]) -> List[int]:
    """Method (ii): lexicographic order of the quadruples."""
    return sorted(range(len(signatures)), key=lambda e: signatures[e])


@_register("median")
def sort_by_median_curve(base: ShapeBase,
                         signatures: Sequence[Quadruple]) -> List[int]:
    """Method (iii): sort by the mean-closest of the two median curves."""
    keys = [quadruple_median_curve(sig) for sig in signatures]
    return sorted(range(len(signatures)),
                  key=lambda e: (keys[e], signatures[e]))


# ----------------------------------------------------------------------
# Section 4.2: greedy local optimization of the average measure
# ----------------------------------------------------------------------
def _entry_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Symmetric discrete average point-set distance between vertex sets.

    The greedy layout needs many pairwise shape distances; vertex-set
    (rather than boundary) distances keep it O(v^2) per pair with one
    vectorized expression, and order shapes the same way the full
    measure does.
    """
    diff = a[:, None, :] - b[None, :, :]
    d = np.hypot(diff[..., 0], diff[..., 1])
    return 0.5 * (float(d.min(axis=1).mean()) + float(d.min(axis=0).mean()))


@_register("localopt")
def local_optimization(base: ShapeBase, signatures: Sequence[Quadruple],
                       per_block: int = 5, window: int = 48,
                       history_blocks: int = 5) -> List[int]:
    """Section 4.2's greedy block-local layout.

    The first shape of the first block is picked by a heuristic rule
    (lowest mean characteristic curve); each subsequent shape in a block
    minimizes the average measure to the shapes already in that block;
    the first shape of a new block minimizes the average distance to the
    first shapes of the previous ``history_blocks`` blocks.

    A full greedy is O(N^2) measure evaluations; we restrict each choice
    to the ``window`` unplaced entries nearest in signature order (the
    candidates any locality-aware implementation would shortlist), which
    preserves the local-optimization character at O(N * window) cost.
    Set ``window >= len(base)`` for the exact greedy on small bases.
    """
    n = base.num_entries
    if n == 0:
        return []
    vertices = [base.entry_vertices(e) for e in range(n)]
    # Signature-sorted ring of unplaced entries = the candidate shortlist.
    sig_order = sort_by_mean_curve(base, signatures)
    position = {entry: rank for rank, entry in enumerate(sig_order)}
    unplaced = set(range(n))

    def shortlist(reference: int) -> List[int]:
        """Unplaced entries nearest to ``reference`` in signature order."""
        rank = position[reference]
        out: List[int] = []
        radius = 0
        while len(out) < min(window, len(unplaced)) and radius <= n:
            for r in (rank - radius, rank + radius) if radius else (rank,):
                if 0 <= r < n and sig_order[r] in unplaced:
                    candidate = sig_order[r]
                    if candidate not in out:
                        out.append(candidate)
            radius += 1
        return out

    order: List[int] = []
    block_firsts: List[int] = []
    current_block: List[int] = []

    # Heuristic first shape: lowest mean characteristic curve.
    first = sig_order[0]
    unplaced.discard(first)
    order.append(first)
    block_firsts.append(first)
    current_block = [first]

    while unplaced:
        if len(current_block) >= per_block:
            # Start a new block: minimize avg distance to the first
            # shapes of the previous `history_blocks` blocks.
            anchors = block_firsts[-history_blocks:]
            candidates = shortlist(current_block[-1])
            best = min(candidates, key=lambda e: sum(
                _entry_distance(vertices[e], vertices[a]) for a in anchors
            ) / len(anchors))
            unplaced.discard(best)
            order.append(best)
            block_firsts.append(best)
            current_block = [best]
            continue
        candidates = shortlist(current_block[0])
        best = min(candidates, key=lambda e: sum(
            _entry_distance(vertices[e], vertices[m]) for m in current_block
        ) / len(current_block))
        unplaced.discard(best)
        order.append(best)
        current_block.append(best)
    return order


def make_layout(name: str, base: ShapeBase, signatures: Sequence[Quadruple],
                **kwargs) -> List[int]:
    """Dispatch a layout policy by name.

    Names: ``"mean"``, ``"lexicographic"``, ``"median"``, ``"localopt"``.
    """
    try:
        fn = LAYOUTS[name]
    except KeyError:
        raise ValueError(f"unknown layout {name!r}; "
                         f"expected one of {sorted(LAYOUTS)}") from None
    return fn(base, signatures, **kwargs)


# ----------------------------------------------------------------------
# Rehashing cost models (paper Sections 4.1 / 4.2)
# ----------------------------------------------------------------------
def rehash_cost_sorted(num_shapes: int) -> float:
    """O(N log N) rehash cost of the sort-based methods (arbitrary units)."""
    if num_shapes < 1:
        return 0.0
    return num_shapes * math.log2(max(2, num_shapes))


def rehash_cost_localopt(num_shapes: int) -> float:
    """O(N^1.5 log N) rehash cost of local optimization (arbitrary units)."""
    if num_shapes < 1:
        return 0.0
    return num_shapes ** 1.5 * math.log2(max(2, num_shapes))
