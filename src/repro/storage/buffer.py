"""LRU buffer pool over the simulated block device.

Models the paper's "internal memory buffer of size 100k (capable of
handling 100 disk blocks)" (Section 4.1, first experiment) and the
variable-size buffers of the second experiment (Figure 8).  Reads hit
the pool first; only misses reach the device and count as I/O.
"""

from __future__ import annotations

import os

from collections import OrderedDict
from dataclasses import dataclass

from .disk import BlockDevice


@dataclass
class BufferStats:
    """Hit/miss accounting for one pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class BufferPool:
    """Fixed-capacity LRU cache of device blocks.

    ``capacity`` is in blocks; with the paper's 1-KB blocks a "100k"
    buffer is ``capacity=100``.
    """

    def __init__(self, device: BlockDevice, capacity: int):
        if capacity < 1:
            raise ValueError("buffer capacity must be at least one block")
        self.device = device
        self.capacity = int(capacity)
        self._frames: "OrderedDict[int, bytes]" = OrderedDict()
        self.stats = BufferStats()
        # Pools inherited across fork must not keep counting into the
        # parent's window: each process gets its own frames and stats.
        self._owner_pid = os.getpid()

    def _check_owner(self) -> None:
        if self._owner_pid != os.getpid():
            self._frames = OrderedDict()
            self.stats = BufferStats()
            self._owner_pid = os.getpid()

    def read_block(self, block_id: int) -> bytes:
        """Read through the pool; misses hit the device."""
        self._check_owner()
        frame = self._frames.get(block_id)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(block_id)
            return frame
        self.stats.misses += 1
        frame = self.device.read_block(block_id)
        self._frames[block_id] = frame
        if len(self._frames) > self.capacity:
            self._frames.popitem(last=False)
            self.stats.evictions += 1
        return frame

    def contains(self, block_id: int) -> bool:
        return block_id in self._frames

    def clear(self) -> None:
        """Drop all cached frames (keeps the statistics)."""
        self._frames.clear()

    def reset(self) -> None:
        """Drop frames and zero the statistics (fresh experiment run)."""
        self._frames.clear()
        self.stats = BufferStats()

    def reset_stats(self) -> BufferStats:
        """Zero the statistics but keep the resident frames.

        Long-lived services report hit ratios per *window* rather than
        since process start; this rolls the window without the cold-start
        misses that :meth:`reset` would reintroduce.  Returns the stats
        of the closed window.
        """
        closed = self.stats
        self.stats = BufferStats()
        return closed

    def resize(self, capacity: int) -> None:
        """Change the capacity, evicting LRU frames if shrinking."""
        if capacity < 1:
            raise ValueError("buffer capacity must be at least one block")
        self.capacity = int(capacity)
        while len(self._frames) > self.capacity:
            self._frames.popitem(last=False)
            self.stats.evictions += 1

    @property
    def resident(self) -> int:
        return len(self._frames)

    def __repr__(self) -> str:
        return (f"BufferPool(capacity={self.capacity}, "
                f"resident={self.resident}, hits={self.stats.hits}, "
                f"misses={self.stats.misses})")
