"""Synthetic image/shape workload generation.

The paper's experiments run on a base of 10,000 images averaging 5.5
shapes per image and ~20 vertices per shape, extracted from real images
we do not have.  This module synthesizes workloads with the same
statistical profile (see DESIGN.md, substitutions):

* a pool of *prototype* shapes from several parametric families
  (blobs, stars, notched boxes, zigzag polylines, regular polygons);
* per image, a handful of prototypes re-instanced with vertex-level
  distortion and a random similarity placement — the same artefacts
  automated boundary extraction introduces and the criterion is built
  to tolerate;
* ground-truth prototype labels, so retrieval accuracy is measurable.

Everything is driven by an explicit ``numpy.random.Generator``; the
same seed reproduces the same base bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..geometry.polyline import Shape


# ----------------------------------------------------------------------
# Prototype families
# ----------------------------------------------------------------------
def random_blob(rng: np.random.Generator, num_vertices: int = 20,
                irregularity: float = 0.35) -> Shape:
    """Star-shaped random polygon (guaranteed simple).

    Radii are a smoothed random walk around a unit circle; higher
    ``irregularity`` gives craggier outlines.
    """
    if num_vertices < 3:
        raise ValueError("need at least three vertices")
    angles = np.sort(rng.uniform(0.0, 2.0 * math.pi, num_vertices))
    radii = 1.0 + irregularity * rng.standard_normal(num_vertices)
    # Light smoothing keeps the outline blob-like rather than spiky.
    radii = np.convolve(np.concatenate([radii[-1:], radii, radii[:1]]),
                        [0.25, 0.5, 0.25], mode="valid")
    radii = np.clip(radii, 0.2, None)
    return Shape(np.column_stack([radii * np.cos(angles),
                                  radii * np.sin(angles)]), closed=True)


def star_polygon(points: int = 5, inner: float = 0.45,
                 outer: float = 1.0, phase: float = 0.0) -> Shape:
    """A classic star with ``points`` spikes."""
    if points < 3:
        raise ValueError("a star needs at least three points")
    angles = phase + math.pi * np.arange(2 * points) / points
    radii = np.where(np.arange(2 * points) % 2 == 0, outer, inner)
    return Shape(np.column_stack([radii * np.cos(angles),
                                  radii * np.sin(angles)]), closed=True)


def notched_box(notch: float = 0.4) -> Shape:
    """A rectangle with a rectangular notch (an "L/C" CAD-like part)."""
    if not 0.0 < notch < 1.0:
        raise ValueError("notch must be in (0, 1)")
    return Shape([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (notch, 1.0),
                  (notch, notch), (0.0, notch)], closed=True)


def zigzag_polyline(rng: np.random.Generator, num_vertices: int = 12,
                    amplitude: float = 0.3) -> Shape:
    """An open polyline: a jittered zigzag (river/road-like boundary)."""
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    x = np.linspace(0.0, 2.0, num_vertices)
    y = amplitude * np.where(np.arange(num_vertices) % 2 == 0, 1.0, -1.0)
    y = y + 0.3 * amplitude * rng.standard_normal(num_vertices)
    return Shape(np.column_stack([x, y]), closed=False)


def prototype_pool(rng: np.random.Generator, count: int = 12,
                   vertices_mean: float = 20.0) -> List[Shape]:
    """A mixed pool of prototypes with ~``vertices_mean`` vertices each."""
    pool: List[Shape] = []
    for index in range(count):
        kind = index % 5
        nv = max(6, int(rng.normal(vertices_mean, vertices_mean / 5)))
        if kind == 0:
            pool.append(random_blob(rng, nv, irregularity=0.3))
        elif kind == 1:
            pool.append(star_polygon(points=max(3, nv // 4),
                                     inner=float(rng.uniform(0.35, 0.6)),
                                     phase=float(rng.uniform(0, math.pi))))
        elif kind == 2:
            pool.append(notched_box(float(rng.uniform(0.25, 0.6))))
        elif kind == 3:
            pool.append(zigzag_polyline(rng, max(5, nv // 2),
                                        amplitude=float(rng.uniform(0.2, 0.4))))
        else:
            # Distinct side counts per pool slot: two regular polygons
            # with the same side count are identical after
            # normalization, which would make ground truth ambiguous.
            pool.append(Shape.regular_polygon(3 + (index % 11),
                                              phase=float(rng.uniform(0, 1))))
    return pool


# ----------------------------------------------------------------------
# Distortion and placement
# ----------------------------------------------------------------------
def distort(shape: Shape, noise: float, rng: np.random.Generator) -> Shape:
    """Jitter each vertex by gaussian noise relative to the diameter.

    ``noise`` is the standard deviation as a fraction of the shape's
    diameter — the scale-free way to say "2% boundary noise".
    """
    if noise < 0:
        raise ValueError("noise must be non-negative")
    from ..geometry.diameter import diameter
    _, diam = diameter(shape.vertices)
    jitter = rng.normal(0.0, noise * diam, shape.vertices.shape)
    return Shape(shape.vertices + jitter, closed=shape.closed)


def place_randomly(shape: Shape, rng: np.random.Generator,
                   canvas: float = 100.0,
                   scale_range=(2.0, 8.0)) -> Shape:
    """Random rotation, scale and translation into a canvas."""
    angle = float(rng.uniform(0.0, 2.0 * math.pi))
    scale = float(rng.uniform(*scale_range))
    placed = shape.rotated(angle).scaled(scale)
    xmin, ymin, xmax, ymax = placed.bbox()
    dx = float(rng.uniform(-xmin, max(canvas - xmax, -xmin + 1e-9)))
    dy = float(rng.uniform(-ymin, max(canvas - ymax, -ymin + 1e-9)))
    return placed.translated(dx, dy)


# ----------------------------------------------------------------------
# Whole-base generation
# ----------------------------------------------------------------------
@dataclass
class GeneratedImage:
    """One synthetic image: its shapes plus prototype ground truth."""

    image_id: int
    shapes: List[Shape] = field(default_factory=list)
    labels: List[int] = field(default_factory=list)    # prototype index


@dataclass
class SyntheticWorkload:
    """A full generated base plus the prototype pool it came from."""

    prototypes: List[Shape]
    images: List[GeneratedImage]

    @property
    def num_shapes(self) -> int:
        return sum(len(image.shapes) for image in self.images)

    def all_shapes(self) -> List[Shape]:
        return [s for image in self.images for s in image.shapes]


def generate_workload(num_images: int, rng: np.random.Generator,
                      shapes_per_image: float = 5.5,
                      vertices_mean: float = 20.0,
                      noise: float = 0.01,
                      num_prototypes: int = 12,
                      prototypes: Optional[Sequence[Shape]] = None,
                      canvas: float = 100.0) -> SyntheticWorkload:
    """Generate a base with the paper's statistical profile.

    Shape counts per image are Poisson around ``shapes_per_image``
    (min 1); each instance is a distorted, randomly placed prototype.
    """
    if num_images < 0:
        raise ValueError("num_images must be non-negative")
    pool = list(prototypes) if prototypes is not None else \
        prototype_pool(rng, num_prototypes, vertices_mean)
    images: List[GeneratedImage] = []
    for image_id in range(num_images):
        count = max(1, int(rng.poisson(shapes_per_image)))
        image = GeneratedImage(image_id)
        for _ in range(count):
            proto_index = int(rng.integers(len(pool)))
            instance = distort(pool[proto_index], noise, rng)
            instance = place_randomly(instance, rng, canvas)
            image.shapes.append(instance)
            image.labels.append(proto_index)
        images.append(image)
    return SyntheticWorkload(prototypes=pool, images=images)


def make_query_set(workload: SyntheticWorkload, count: int,
                   rng: np.random.Generator,
                   noise: float = 0.015) -> List[tuple]:
    """Seeded query set: (query shape, true prototype index) pairs.

    Mirrors the paper's "representative experiment set of 15 similarity
    queries": each query is a freshly distorted, freshly placed
    prototype instance, so the correct answers are known.
    """
    queries = []
    for _ in range(count):
        proto_index = int(rng.integers(len(workload.prototypes)))
        query = distort(workload.prototypes[proto_index], noise, rng)
        query = place_randomly(query, rng)
        queries.append((query, proto_index))
    return queries
