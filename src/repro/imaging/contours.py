"""Boundary extraction from binary rasters.

The stand-in for GeoSIR's ``ipp``-based edge extraction: connected
components are labeled (4-connectivity via scipy.ndimage) and each
component's outer boundary is traced with Moore-neighbour tracing using
Jacob's stopping criterion, yielding one closed pixel contour per
object.  Downstream, Douglas-Peucker (:mod:`.simplify`) turns contours
into the segment-approximated polylines the shape base stores.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy import ndimage

from ..geometry.polyline import Shape
from .raster import BinaryImage

# Moore neighbourhood in clockwise order starting from west,
# as (drow, dcol).
_MOORE = [(0, -1), (-1, -1), (-1, 0), (-1, 1),
          (0, 1), (1, 1), (1, 0), (1, -1)]


def label_components(image: BinaryImage,
                     connectivity: int = 1) -> Tuple[np.ndarray, int]:
    """Label connected foreground components (1 = 4-conn, 2 = 8-conn)."""
    if connectivity == 1:
        structure = ndimage.generate_binary_structure(2, 1)
    elif connectivity == 2:
        structure = ndimage.generate_binary_structure(2, 2)
    else:
        raise ValueError("connectivity must be 1 or 2")
    labels, count = ndimage.label(image.pixels, structure=structure)
    return labels, int(count)


def _trace_moore(mask: np.ndarray) -> List[Tuple[int, int]]:
    """Moore-neighbour boundary trace of one component mask.

    Returns the clockwise sequence of boundary pixels (row, col),
    starting from the top-most of the left-most foreground pixels.
    Jacob's criterion stops the walk when the start pixel is re-entered
    from the original direction, which is robust to one-pixel spurs.
    """
    rows, cols = np.nonzero(mask)
    if len(rows) == 0:
        return []
    start_index = np.lexsort((rows, cols))[0]
    start = (int(rows[start_index]), int(cols[start_index]))
    if len(rows) == 1:
        return [start]

    def neighbour(pixel, direction):
        dr, dc = _MOORE[direction]
        r, c = pixel[0] + dr, pixel[1] + dc
        if 0 <= r < mask.shape[0] and 0 <= c < mask.shape[1]:
            return (r, c), bool(mask[r, c])
        return (r, c), False

    contour = [start]
    # We entered `start` moving east; the backtrack direction is west (0).
    current = start
    entry_dir = 0
    first_exit = None
    for _ in range(8 * mask.size):      # safety bound
        found = False
        for step in range(8):
            direction = (entry_dir + 1 + step) % 8
            nxt, is_set = neighbour(current, direction)
            if is_set:
                if current == start:
                    if first_exit is None:
                        first_exit = direction
                    elif direction == first_exit and len(contour) > 1:
                        return contour[:-1]  # closed: drop repeated start
                contour.append(nxt)
                # New backtrack direction: where we came from.
                entry_dir = (direction + 4) % 8
                current = nxt
                found = True
                break
        if not found:       # isolated pixel with spur; shouldn't happen
            break
        if current == start and first_exit is not None:
            # Re-entered start; loop once more to test Jacob's criterion.
            continue
    return contour


def trace_boundaries(image: BinaryImage,
                     min_pixels: int = 8) -> List[np.ndarray]:
    """Closed outer boundary of every component, in pixel coordinates.

    Returns ``(k, 2)`` arrays of (x, y) points — x = col + 0.5,
    y = row + 0.5 (pixel centers) — one per component with at least
    ``min_pixels`` boundary pixels.  Components are traced with
    8-connectivity so diagonally-linked strokes stay one object.
    """
    labels, count = label_components(image, connectivity=2)
    boundaries: List[np.ndarray] = []
    for label in range(1, count + 1):
        mask = labels == label
        contour = _trace_moore(mask)
        if len(contour) < min_pixels:
            continue
        points = np.array([(c + 0.5, r + 0.5) for r, c in contour])
        boundaries.append(points)
    return boundaries


def extract_contour_shapes(image: BinaryImage, min_pixels: int = 8,
                           tolerance: float = 1.2) -> List[Shape]:
    """Full extraction: trace boundaries and segment-approximate them.

    The convenience composition GeoSIR ingestion uses: Moore tracing
    followed by Douglas-Peucker with the given ``tolerance`` (pixels).
    """
    from .simplify import douglas_peucker
    shapes: List[Shape] = []
    for contour in trace_boundaries(image, min_pixels):
        simplified = douglas_peucker(contour, tolerance, closed=True)
        if len(simplified) >= 3:
            shapes.append(Shape(simplified, closed=True))
    return shapes
