"""Imaging substrate (paper Section 6): binary rasters, boundary
extraction, segment approximation, polyline clustering, decomposition of
self-intersecting polylines, and the synthetic workload generator that
stands in for the paper's real image base.
"""

from .clusters import UnionFind, cluster_shapes, detect_clusters
from .contours import (extract_contour_shapes, label_components,
                       trace_boundaries)
from .decompose import decompose_all, decompose_polyline
from .raster import BinaryImage, rasterize_shapes
from .simplify import douglas_peucker, resample_polyline
from .synthesis import (GeneratedImage, SyntheticWorkload, distort,
                        generate_workload, make_query_set, notched_box,
                        place_randomly, prototype_pool, random_blob,
                        star_polygon, zigzag_polyline)

__all__ = [
    "BinaryImage", "GeneratedImage", "SyntheticWorkload", "UnionFind",
    "cluster_shapes", "decompose_all", "decompose_polyline",
    "detect_clusters", "distort", "douglas_peucker",
    "extract_contour_shapes", "generate_workload", "label_components",
    "make_query_set", "notched_box", "place_randomly", "prototype_pool",
    "random_blob", "rasterize_shapes", "resample_polyline", "star_polygon",
    "trace_boundaries", "zigzag_polyline",
]
