"""Binary raster images and rasterization.

The GeoSIR prototype extracts shapes from real images via the ``ipp``
edge extractor [23]; our substitute generates binary rasters from known
vector shapes and re-extracts boundaries from them, exercising the same
pipeline stage (image -> boundary polylines) end to end.  See DESIGN.md
for the substitution rationale.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..geometry.polyline import Shape
from ..geometry.predicates import points_in_polygon


class BinaryImage:
    """A boolean pixel grid; ``pixels[row, col]`` with row 0 at the top."""

    def __init__(self, pixels: np.ndarray):
        pixels = np.asarray(pixels, dtype=bool)
        if pixels.ndim != 2:
            raise ValueError("pixels must be a 2-D array")
        self.pixels = pixels

    @classmethod
    def blank(cls, height: int, width: int) -> "BinaryImage":
        if height < 1 or width < 1:
            raise ValueError("image dimensions must be positive")
        return cls(np.zeros((height, width), dtype=bool))

    @property
    def height(self) -> int:
        return self.pixels.shape[0]

    @property
    def width(self) -> int:
        return self.pixels.shape[1]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BinaryImage):
            return NotImplemented
        return (self.pixels.shape == other.pixels.shape and
                bool((self.pixels == other.pixels).all()))

    def __repr__(self) -> str:
        return (f"BinaryImage({self.height}x{self.width}, "
                f"{int(self.pixels.sum())} set)")

    # ------------------------------------------------------------------
    def fill_polygon(self, shape: Shape) -> None:
        """Set the pixels whose centers fall inside a closed shape."""
        if not shape.closed:
            raise ValueError("fill_polygon needs a closed shape")
        xmin, ymin, xmax, ymax = shape.bbox()
        col_lo = max(0, int(np.floor(xmin)))
        col_hi = min(self.width - 1, int(np.ceil(xmax)))
        row_lo = max(0, int(np.floor(ymin)))
        row_hi = min(self.height - 1, int(np.ceil(ymax)))
        if col_lo > col_hi or row_lo > row_hi:
            return
        cols, rows = np.meshgrid(np.arange(col_lo, col_hi + 1),
                                 np.arange(row_lo, row_hi + 1))
        centers = np.column_stack([cols.ravel() + 0.5, rows.ravel() + 0.5])
        inside = points_in_polygon(centers, shape.vertices)
        patch = inside.reshape(rows.shape)
        self.pixels[row_lo:row_hi + 1, col_lo:col_hi + 1] |= patch

    def draw_polyline(self, shape: Shape, thickness: float = 1.0) -> None:
        """Set the pixels within ``thickness/2`` of the shape boundary."""
        from ..geometry.primitives import points_segments_distance
        starts, ends = shape.edges()
        margin = thickness / 2.0 + 1.0
        xmin, ymin, xmax, ymax = shape.bbox()
        col_lo = max(0, int(np.floor(xmin - margin)))
        col_hi = min(self.width - 1, int(np.ceil(xmax + margin)))
        row_lo = max(0, int(np.floor(ymin - margin)))
        row_hi = min(self.height - 1, int(np.ceil(ymax + margin)))
        if col_lo > col_hi or row_lo > row_hi:
            return
        cols, rows = np.meshgrid(np.arange(col_lo, col_hi + 1),
                                 np.arange(row_lo, row_hi + 1))
        centers = np.column_stack([cols.ravel() + 0.5, rows.ravel() + 0.5])
        distances = points_segments_distance(centers, starts, ends)
        near = (distances <= thickness / 2.0).reshape(rows.shape)
        self.pixels[row_lo:row_hi + 1, col_lo:col_hi + 1] |= near

    def add_noise(self, rate: float, rng: np.random.Generator) -> None:
        """Flip a fraction ``rate`` of pixels (salt-and-pepper noise).

        The paper stresses the criterion's noise tolerance; this is the
        knob the robustness tests turn.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        flips = rng.random(self.pixels.shape) < rate
        self.pixels ^= flips


def rasterize_shapes(shapes: Iterable[Shape], height: int, width: int,
                     filled: bool = True,
                     thickness: float = 1.5) -> BinaryImage:
    """Render several shapes into one binary image.

    Closed shapes are filled (object silhouettes, the usual boundary-
    extraction input); open polylines are stroked.
    """
    image = BinaryImage.blank(height, width)
    for shape in shapes:
        if shape.closed and filled:
            image.fill_polygon(shape)
        else:
            image.draw_polyline(shape, thickness)
    return image
