"""Decomposition of self-intersecting polylines (paper Sections 2.4, 6).

The shape base only admits simple (non-self-intersecting) polylines;
"self-intersecting polygons or polylines extracted from an image are
decomposed in a number of shapes".  We split every edge at its
intersection points with other edges, build the induced planar graph on
snapped nodes, and peel off maximal simple chains: walking from nodes of
degree != 2 (and then around leftover cycles), so each output piece is a
simple open polyline or a simple closed loop.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from ..geometry.polyline import Shape
from ..geometry.predicates import segment_intersection_point
from ..geometry.primitives import EPSILON


def _snap_key(point: Tuple[float, float],
              snap: float) -> Tuple[int, int]:
    return (int(round(point[0] / snap)), int(round(point[1] / snap)))


def _split_edges(shape: Shape, snap: float) -> List[Tuple[Tuple[float, float],
                                                          Tuple[float, float]]]:
    """Split every edge at its intersections with all other edges."""
    starts, ends = shape.edges()
    edges = list(zip(map(tuple, starts), map(tuple, ends)))
    pieces: List[Tuple[Tuple[float, float], Tuple[float, float]]] = []
    for i, (a, b) in enumerate(edges):
        cuts: List[Tuple[float, Tuple[float, float]]] = []
        for j, (c, d) in enumerate(edges):
            if j == i:
                continue
            point = segment_intersection_point(a, b, c, d)
            if point is None:
                continue
            length_sq = (b[0] - a[0]) ** 2 + (b[1] - a[1]) ** 2
            if length_sq < EPSILON:
                continue
            t = ((point[0] - a[0]) * (b[0] - a[0]) +
                 (point[1] - a[1]) * (b[1] - a[1])) / length_sq
            if snap / 10.0 < t * np.sqrt(length_sq) and \
                    t * np.sqrt(length_sq) < np.sqrt(length_sq) - snap / 10.0:
                cuts.append((t, point))
        cuts.sort()
        previous = a
        for _, point in cuts:
            if _snap_key(previous, snap) != _snap_key(point, snap):
                pieces.append((previous, point))
            previous = point
        if _snap_key(previous, snap) != _snap_key(b, snap):
            pieces.append((previous, b))
    return pieces


def decompose_polyline(shape: Shape, snap: float = 1e-6) -> List[Shape]:
    """Split a possibly self-intersecting polyline into simple shapes.

    A shape that is already simple is returned as-is (single-element
    list).  Otherwise the planar subdivision induced by the
    self-intersections is computed and maximal degree-2 chains are
    extracted; chains whose two endpoints coincide become closed
    shapes.
    """
    if shape.is_simple():
        return [shape]
    pieces = _split_edges(shape, snap)
    # Build the graph on snapped nodes.
    coords: Dict[Tuple[int, int], Tuple[float, float]] = {}
    adjacency: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    edge_set: Set[Tuple[Tuple[int, int], Tuple[int, int]]] = set()
    for a, b in pieces:
        ka, kb = _snap_key(a, snap), _snap_key(b, snap)
        if ka == kb:
            continue
        coords.setdefault(ka, a)
        coords.setdefault(kb, b)
        key = (ka, kb) if ka <= kb else (kb, ka)
        if key in edge_set:
            continue
        edge_set.add(key)
        adjacency.setdefault(ka, []).append(kb)
        adjacency.setdefault(kb, []).append(ka)

    used: Set[Tuple[Tuple[int, int], Tuple[int, int]]] = set()

    def walk(start: Tuple[int, int],
             nxt: Tuple[int, int]) -> List[Tuple[int, int]]:
        """Follow a chain through degree-2 nodes until a junction/end."""
        chain = [start, nxt]
        used.add((start, nxt) if start <= nxt else (nxt, start))
        current, previous = nxt, start
        while len(adjacency[current]) == 2:
            a, b = adjacency[current]
            following = a if b == previous else b
            key = (current, following) if current <= following \
                else (following, current)
            if key in used:
                break
            used.add(key)
            chain.append(following)
            previous, current = current, following
            if current == chain[0]:
                break
        return chain

    results: List[Shape] = []

    def emit(chain: List[Tuple[int, int]]) -> None:
        points = [coords[k] for k in chain]
        closed = chain[0] == chain[-1] and len(chain) > 3
        if closed:
            points = points[:-1]
            if len(points) >= 3:
                results.append(Shape(points, closed=True))
        elif len(points) >= 2:
            results.append(Shape(points, closed=False))

    junctions = [node for node, nbrs in adjacency.items()
                 if len(nbrs) != 2]
    for node in junctions:
        for neighbour in adjacency[node]:
            key = (node, neighbour) if node <= neighbour \
                else (neighbour, node)
            if key in used:
                continue
            emit(walk(node, neighbour))
    # Leftover pure cycles (no junction on them).
    for node, neighbours in adjacency.items():
        for neighbour in neighbours:
            key = (node, neighbour) if node <= neighbour \
                else (neighbour, node)
            if key in used:
                continue
            emit(walk(node, neighbour))
    return results


def decompose_all(shapes: List[Shape], snap: float = 1e-6) -> List[Shape]:
    """Decompose a batch; simple inputs pass through untouched."""
    out: List[Shape] = []
    for shape in shapes:
        out.extend(decompose_polyline(shape, snap))
    return out
