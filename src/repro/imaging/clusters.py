"""Polyline cluster detection (paper Section 6, Figure 11).

After boundary extraction an image holds many polylines; GeoSIR groups
them into *clusters* — maximal sets of polylines that share edges or
vertices — because one object boundary may have been extracted as
several touching pieces.  Sharing is detected on quantized vertex
coordinates (extraction noise keeps "the same" junction within a small
snap radius), and grouping is a plain union-find.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..geometry.polyline import Shape


class UnionFind:
    """Path-compressing, union-by-size disjoint sets over 0..n-1."""

    def __init__(self, size: int):
        self.parent = list(range(size))
        self.size = [1] * size

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True

    def groups(self) -> Dict[int, List[int]]:
        out: Dict[int, List[int]] = {}
        for x in range(len(self.parent)):
            out.setdefault(self.find(x), []).append(x)
        return out


def _vertex_keys(shape: Shape, snap: float) -> List[Tuple[int, int]]:
    quantized = np.round(shape.vertices / snap).astype(np.int64)
    return [tuple(q) for q in quantized]


def detect_clusters(polylines: Sequence[Shape],
                    snap: float = 0.5) -> List[List[int]]:
    """Group polylines that share (snapped) vertices.

    Returns lists of indices into ``polylines``, one list per cluster,
    in first-seen order.  ``snap`` is the junction snap radius in the
    polylines' coordinate units (pixels, for raster-extracted input).
    """
    if snap <= 0:
        raise ValueError("snap must be positive")
    uf = UnionFind(len(polylines))
    seen: Dict[Tuple[int, int], int] = {}
    for index, shape in enumerate(polylines):
        for key in _vertex_keys(shape, snap):
            owner = seen.get(key)
            if owner is None:
                seen[key] = index
            else:
                uf.union(owner, index)
    groups = uf.groups()
    ordered_roots = sorted(groups, key=lambda r: min(groups[r]))
    return [sorted(groups[root]) for root in ordered_roots]


def cluster_shapes(polylines: Sequence[Shape],
                   snap: float = 0.5) -> List[List[Shape]]:
    """Same as :func:`detect_clusters` but returns the shapes."""
    return [[polylines[i] for i in group]
            for group in detect_clusters(polylines, snap)]
