"""Segment approximation of boundaries (Douglas-Peucker).

GeoSIR's ingestion "first performs image processing that achieves
segment approximation of boundaries" (Section 6); Douglas-Peucker is
the standard such approximation: it keeps the fewest vertices such that
no dropped point deviates more than ``tolerance`` from the kept
polyline.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..geometry.primitives import as_points, points_segment_distance


def _simplify_open(points: np.ndarray, tolerance: float) -> np.ndarray:
    """Iterative (stack-based) Douglas-Peucker on an open chain."""
    n = len(points)
    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[n - 1] = True
    stack: List[tuple] = [(0, n - 1)]
    while stack:
        first, last = stack.pop()
        if last - first < 2:
            continue
        segment = points[first + 1:last]
        distances = points_segment_distance(segment, points[first],
                                            points[last])
        worst = int(np.argmax(distances))
        if distances[worst] > tolerance:
            split = first + 1 + worst
            keep[split] = True
            stack.append((first, split))
            stack.append((split, last))
    return points[keep]


def douglas_peucker(points: np.ndarray, tolerance: float,
                    closed: bool = False) -> np.ndarray:
    """Simplify a chain of points to within ``tolerance``.

    For closed rings, the two anchors are chosen as the extremes of the
    ring's diameter axis (the farthest pair of the first/middle split),
    the ring is simplified as two open halves, and the halves are
    re-joined — the usual way to make Douglas-Peucker start-point
    independent on rings.
    """
    pts = as_points(points)
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if len(pts) <= 2:
        return pts.copy()
    if not closed:
        return _simplify_open(pts, tolerance)
    # Closed ring: anchor at the point farthest from points[0], split
    # the ring there, simplify both halves.
    deltas = pts - pts[0]
    far = int(np.argmax(deltas[:, 0] ** 2 + deltas[:, 1] ** 2))
    if far == 0:
        return pts[:1].copy()
    first_half = _simplify_open(pts[:far + 1], tolerance)
    second_half = _simplify_open(np.vstack([pts[far:], pts[:1]]), tolerance)
    return np.vstack([first_half[:-1], second_half[:-1]])


def resample_polyline(points: np.ndarray, spacing: float,
                      closed: bool = False) -> np.ndarray:
    """Uniform arc-length resampling (the inverse knob of simplify).

    Handy for building vertex-count sweeps in the measure benchmarks:
    the same geometric shape represented with many or few vertices.
    """
    pts = as_points(points)
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    if closed:
        pts = np.vstack([pts, pts[:1]])
    deltas = np.diff(pts, axis=0)
    lengths = np.hypot(deltas[:, 0], deltas[:, 1])
    cumulative = np.concatenate([[0.0], np.cumsum(lengths)])
    total = cumulative[-1]
    if total <= 0:
        return pts[:1].copy()
    count = max(3 if closed else 2, int(round(total / spacing)))
    targets = np.linspace(0.0, total, count, endpoint=not closed)
    out = np.empty((len(targets), 2))
    for i, t in enumerate(targets):
        j = int(np.searchsorted(cumulative, t, side="right")) - 1
        j = min(j, len(lengths) - 1)
        local = (t - cumulative[j]) / lengths[j] if lengths[j] > 0 else 0.0
        out[i] = pts[j] + local * deltas[j]
    return out
