"""Shape diameters and alpha-diameters (paper Section 2.4).

The diameter of a shape is the pair of vertices that are farthest apart.
The paper normalizes every shape about *all* of its alpha-diameters —
the vertex pairs whose distance is at least ``(1 - alpha)`` times the
diameter length — to buy tolerance against local distortion.

For the ~20-vertex shapes the paper's base contains, the brute-force
O(n^2) pair scan is already fast; for larger inputs we go through the
convex hull and rotating calipers, which is O(n log n).
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from .primitives import as_points, cross, squared_distance

VertexPair = Tuple[int, int]


def convex_hull(points: np.ndarray) -> List[int]:
    """Indices of the convex hull in counter-clockwise order.

    Andrew's monotone chain; collinear points on the hull boundary are
    dropped.  Returns indices into the *input* array.
    """
    pts = as_points(points)
    n = len(pts)
    if n < 3:
        return list(range(n))
    order = np.lexsort((pts[:, 1], pts[:, 0]))

    def build(indices) -> List[int]:
        chain: List[int] = []
        for idx in indices:
            while len(chain) >= 2 and \
                    cross(pts[chain[-2]], pts[chain[-1]], pts[idx]) <= 0:
                chain.pop()
            chain.append(int(idx))
        return chain

    lower = build(order)
    upper = build(order[::-1])
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:         # all points collinear: keep the two extremes
        return [int(order[0]), int(order[-1])]
    return hull


def diameter_bruteforce(points: np.ndarray) -> Tuple[VertexPair, float]:
    """Farthest vertex pair by exhaustive O(n^2) scan (vectorized)."""
    pts = as_points(points)
    n = len(pts)
    if n < 2:
        raise ValueError("need at least two points")
    best = (0, 1)
    best_sq = -1.0
    for i in range(n - 1):
        delta = pts[i + 1:] - pts[i]
        sq = delta[:, 0] ** 2 + delta[:, 1] ** 2
        j = int(np.argmax(sq))
        if sq[j] > best_sq:
            best_sq = float(sq[j])
            best = (i, i + 1 + j)
    return best, math.sqrt(best_sq)


def diameter_rotating_calipers(points: np.ndarray) -> Tuple[VertexPair, float]:
    """Farthest vertex pair via convex hull + rotating calipers.

    O(n log n) overall; falls back to the brute-force scan for tiny or
    degenerate inputs.  The diameter of a point set is always attained
    by a pair of hull vertices (an antipodal pair).
    """
    pts = as_points(points)
    hull = convex_hull(pts)
    h = len(hull)
    if h < 3:
        return diameter_bruteforce(pts)
    hull_pts = pts[hull]
    best_sq = -1.0
    best = (hull[0], hull[1])
    j = 1
    for i in range(h):
        ni = (i + 1) % h
        # advance j while the area (distance from edge i->ni) keeps growing
        while True:
            nj = (j + 1) % h
            area_now = abs(cross(hull_pts[i], hull_pts[ni], hull_pts[j]))
            area_next = abs(cross(hull_pts[i], hull_pts[ni], hull_pts[nj]))
            if area_next > area_now:
                j = nj
            else:
                break
        for candidate in (j, (j + 1) % h):
            sq = squared_distance(hull_pts[i], hull_pts[candidate])
            if sq > best_sq:
                best_sq = sq
                best = (hull[i], hull[candidate])
        sq = squared_distance(hull_pts[ni], hull_pts[j])
        if sq > best_sq:
            best_sq = sq
            best = (hull[ni], hull[j])
    i, j = best
    if i > j:
        i, j = j, i
    return (i, j), math.sqrt(best_sq)


def diameter(points: np.ndarray, method: str = "auto") -> Tuple[VertexPair, float]:
    """Farthest vertex pair ``((i, j), length)`` with ``i < j``.

    ``method`` is one of ``"auto"``, ``"brute"``, ``"calipers"``; auto
    uses brute force below 64 vertices (faster in practice) and calipers
    above.
    """
    pts = as_points(points)
    if method == "brute" or (method == "auto" and len(pts) < 64):
        pair, length = diameter_bruteforce(pts)
    elif method in ("calipers", "auto"):
        pair, length = diameter_rotating_calipers(pts)
    else:
        raise ValueError(f"unknown diameter method {method!r}")
    i, j = pair
    if i > j:
        i, j = j, i
    return (i, j), length


def alpha_diameters(points: np.ndarray, alpha: float
                    ) -> Tuple[List[VertexPair], float]:
    """All vertex pairs at distance >= ``(1 - alpha) * diameter``.

    Returns ``(pairs, diameter_length)``; pairs are ``(i, j)`` with
    ``i < j`` and always include the true diameter pair.  ``alpha = 0``
    yields exactly the diameter pair(s).  Section 2.4: every shape is
    normalized (twice) about each of these pairs.
    """
    if not 0.0 <= alpha < 1.0:
        raise ValueError("alpha must be in [0, 1)")
    pts = as_points(points)
    _, diam = diameter(pts)
    threshold_sq = ((1.0 - alpha) * diam) ** 2
    pairs: List[VertexPair] = []
    n = len(pts)
    for i in range(n - 1):
        delta = pts[i + 1:] - pts[i]
        sq = delta[:, 0] ** 2 + delta[:, 1] ** 2
        for offset in np.nonzero(sq >= threshold_sq - 1e-12)[0]:
            pairs.append((i, i + 1 + int(offset)))
    return pairs, diam
