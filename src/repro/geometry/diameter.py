"""Shape diameters and alpha-diameters (paper Section 2.4).

The diameter of a shape is the pair of vertices that are farthest apart.
The paper normalizes every shape about *all* of its alpha-diameters —
the vertex pairs whose distance is at least ``(1 - alpha)`` times the
diameter length — to buy tolerance against local distortion.

For the ~20-vertex shapes the paper's base contains, the brute-force
O(n^2) pair scan is already fast; for larger inputs we go through the
convex hull and rotating calipers, which is O(n log n).
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from .primitives import as_points, cross, squared_distance

VertexPair = Tuple[int, int]


def convex_hull(points: np.ndarray) -> List[int]:
    """Indices of the convex hull in counter-clockwise order.

    Andrew's monotone chain; collinear points on the hull boundary are
    dropped.  Returns indices into the *input* array.
    """
    pts = as_points(points)
    n = len(pts)
    if n < 3:
        return list(range(n))
    order = np.lexsort((pts[:, 1], pts[:, 0]))

    def build(indices) -> List[int]:
        chain: List[int] = []
        for idx in indices:
            while len(chain) >= 2 and \
                    cross(pts[chain[-2]], pts[chain[-1]], pts[idx]) <= 0:
                chain.pop()
            chain.append(int(idx))
        return chain

    lower = build(order)
    upper = build(order[::-1])
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:         # all points collinear: keep the two extremes
        return [int(order[0]), int(order[-1])]
    return hull


def diameter_bruteforce(points: np.ndarray) -> Tuple[VertexPair, float]:
    """Farthest vertex pair by exhaustive O(n^2) scan (vectorized)."""
    pts = as_points(points)
    n = len(pts)
    if n < 2:
        raise ValueError("need at least two points")
    best = (0, 1)
    best_sq = -1.0
    for i in range(n - 1):
        delta = pts[i + 1:] - pts[i]
        sq = delta[:, 0] ** 2 + delta[:, 1] ** 2
        j = int(np.argmax(sq))
        if sq[j] > best_sq:
            best_sq = float(sq[j])
            best = (i, i + 1 + j)
    return best, math.sqrt(best_sq)


def diameter_rotating_calipers(points: np.ndarray) -> Tuple[VertexPair, float]:
    """Farthest vertex pair via convex hull + rotating calipers.

    O(n log n) overall; falls back to the brute-force scan for tiny or
    degenerate inputs.  The diameter of a point set is always attained
    by a pair of hull vertices (an antipodal pair).
    """
    pts = as_points(points)
    hull = convex_hull(pts)
    h = len(hull)
    if h < 3:
        return diameter_bruteforce(pts)
    hull_pts = pts[hull]
    best_sq = -1.0
    best = (hull[0], hull[1])
    j = 1
    for i in range(h):
        ni = (i + 1) % h
        # advance j while the area (distance from edge i->ni) keeps growing
        while True:
            nj = (j + 1) % h
            area_now = abs(cross(hull_pts[i], hull_pts[ni], hull_pts[j]))
            area_next = abs(cross(hull_pts[i], hull_pts[ni], hull_pts[nj]))
            if area_next > area_now:
                j = nj
            else:
                break
        for candidate in (j, (j + 1) % h):
            sq = squared_distance(hull_pts[i], hull_pts[candidate])
            if sq > best_sq:
                best_sq = sq
                best = (hull[i], hull[candidate])
        sq = squared_distance(hull_pts[ni], hull_pts[j])
        if sq > best_sq:
            best_sq = sq
            best = (hull[ni], hull[j])
    i, j = best
    if i > j:
        i, j = j, i
    return (i, j), math.sqrt(best_sq)


def diameter(points: np.ndarray, method: str = "auto") -> Tuple[VertexPair, float]:
    """Farthest vertex pair ``((i, j), length)`` with ``i < j``.

    ``method`` is one of ``"auto"``, ``"brute"``, ``"calipers"``; auto
    uses brute force below 64 vertices (faster in practice) and calipers
    above.
    """
    pts = as_points(points)
    if method == "brute" or (method == "auto" and len(pts) < 64):
        pair, length = diameter_bruteforce(pts)
    elif method in ("calipers", "auto"):
        pair, length = diameter_rotating_calipers(pts)
    else:
        raise ValueError(f"unknown diameter method {method!r}")
    i, j = pair
    if i > j:
        i, j = j, i
    return (i, j), length


#: Above this vertex count the O(n^2) pairwise matrix stops being the
#: cheapest option and alpha_diameters falls back to the rowwise scan.
_MATRIX_LIMIT = 1024


def _pairwise_upper_sq(pts: np.ndarray) -> np.ndarray:
    """Squared distances of all ``i < j`` pairs as an ``(n, n)`` matrix.

    The lower triangle and diagonal are set to ``-1`` so row-major
    reductions (argmax, nonzero) see only the upper pairs.  Each
    ``sq[i, j]`` is computed with exactly the arithmetic of the rowwise
    scan (``pts[j] - pts[i]``, square, add), so reductions over the
    matrix agree bit-for-bit with the scalar loop.
    """
    diff = pts[None, :, :] - pts[:, None, :]        # diff[i, j] = p_j - p_i
    sq = diff[:, :, 0] ** 2 + diff[:, :, 1] ** 2
    sq[np.tril_indices(len(pts))] = -1.0
    return sq


def alpha_diameters(points: np.ndarray, alpha: float
                    ) -> Tuple[List[VertexPair], float]:
    """All vertex pairs at distance >= ``(1 - alpha) * diameter``.

    Returns ``(pairs, diameter_length)``; pairs are ``(i, j)`` with
    ``i < j`` and always include the true diameter pair.  ``alpha = 0``
    yields exactly the diameter pair(s).  Section 2.4: every shape is
    normalized (twice) about each of these pairs.

    For the small shapes the base stores, the whole scan runs as one
    vectorized pass over the pairwise-distance matrix; the output is
    identical (same pairs, same order, same floats) to the rowwise
    reference loop, which remains as the large-``n`` fallback.
    """
    if not 0.0 <= alpha < 1.0:
        raise ValueError("alpha must be in [0, 1)")
    pts = as_points(points)
    n = len(pts)
    if n < 2:
        raise ValueError("need at least two points")
    if n > _MATRIX_LIMIT:
        _, diam = diameter(pts)
        threshold_sq = ((1.0 - alpha) * diam) ** 2
        pairs: List[VertexPair] = []
        for i in range(n - 1):
            delta = pts[i + 1:] - pts[i]
            sq = delta[:, 0] ** 2 + delta[:, 1] ** 2
            for offset in np.nonzero(sq >= threshold_sq - 1e-12)[0]:
                pairs.append((i, i + 1 + int(offset)))
        return pairs, diam
    sq = _pairwise_upper_sq(pts)
    # Row-major argmax = the first pair attaining the maximum, the same
    # tie-break as the brute-force scan's strict-improvement update.
    diam = math.sqrt(float(sq.flat[int(np.argmax(sq))]))
    threshold_sq = ((1.0 - alpha) * diam) ** 2
    rows, cols = np.nonzero(sq >= threshold_sq - 1e-12)
    return [(int(i), int(j)) for i, j in zip(rows, cols)], diam
