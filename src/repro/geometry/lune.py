"""The lune: locus of normalized shape vertices (paper Section 3).

After a shape is normalized about its diameter, every vertex lies within
distance 1 of both diameter endpoints (otherwise the pair would not be
the farthest one).  The locus is therefore the *lune* — the intersection
of the two unit disks centered at (0, 0) and (1, 0).  Geometric hashing
partitions the lune into the four quarters of Figure 4 and covers each
quarter with a family of equal-area arcs.

Vertices of copies normalized about alpha-diameters (alpha > 0) can fall
slightly outside; the paper treats them "as if they are located on the
boundary of the lune", which is what :func:`clamp_to_lune` implements.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from .primitives import as_points

#: Centers of the two defining unit circles.
LEFT_CENTER = (0.0, 0.0)
RIGHT_CENTER = (1.0, 0.0)

#: Corners of the lune (intersection points of the two circles).
TOP_CORNER = (0.5, math.sqrt(3.0) / 2.0)
BOTTOM_CORNER = (0.5, -math.sqrt(3.0) / 2.0)

#: Exact lune area: 2 * pi / 3 - sqrt(3) / 2 (two unit circles, centers
#: distance 1 apart).  This is the ``A_0`` of the paper's E(x) equation.
LUNE_AREA = 2.0 * math.pi / 3.0 - math.sqrt(3.0) / 2.0


def in_lune(points: np.ndarray, tolerance: float = 1e-9) -> np.ndarray:
    """Boolean mask: which points lie in the (closed) lune."""
    pts = as_points(points)
    d_left = np.hypot(pts[:, 0], pts[:, 1])
    d_right = np.hypot(pts[:, 0] - 1.0, pts[:, 1])
    return (d_left <= 1.0 + tolerance) & (d_right <= 1.0 + tolerance)


def quarter_of(x: float, y: float) -> int:
    """Quarter index 1..4 of a lune point (Figure 4, left).

    The lune is split by the vertical line ``x = 1/2`` and the
    horizontal axis ``y = 0``: q1 upper-left, q2 upper-right, q3
    lower-left, q4 lower-right.  Points exactly on a split line go to
    the lower-index quarter.
    """
    if y >= 0.0:
        return 1 if x <= 0.5 else 2
    return 3 if x <= 0.5 else 4


def quarters_of(points: np.ndarray) -> np.ndarray:
    """Vectorized :func:`quarter_of`."""
    pts = as_points(points)
    upper = pts[:, 1] >= 0.0
    left = pts[:, 0] <= 0.5
    out = np.full(len(pts), 4, dtype=np.int8)
    out[upper & left] = 1
    out[upper & ~left] = 2
    out[~upper & left] = 3
    return out


def _nearest_on_arc(point: Tuple[float, float], center: Tuple[float, float],
                    other_center: Tuple[float, float]) -> Tuple[float, float]:
    """Nearest point to ``point`` on the lune-boundary arc of one circle.

    The arc consists of the points of the unit circle around ``center``
    that also lie within the unit disk around ``other_center``.  When the
    radial projection leaves that disk, the nearest valid point is one of
    the lune corners.
    """
    dx, dy = point[0] - center[0], point[1] - center[1]
    norm = math.hypot(dx, dy)
    if norm < 1e-12:
        projected = (center[0] + 1.0, center[1])
    else:
        projected = (center[0] + dx / norm, center[1] + dy / norm)
    if math.hypot(projected[0] - other_center[0],
                  projected[1] - other_center[1]) <= 1.0 + 1e-12:
        return projected
    top = math.hypot(point[0] - TOP_CORNER[0], point[1] - TOP_CORNER[1])
    bottom = math.hypot(point[0] - BOTTOM_CORNER[0],
                        point[1] - BOTTOM_CORNER[1])
    return TOP_CORNER if top <= bottom else BOTTOM_CORNER


def clamp_to_lune(points: np.ndarray) -> np.ndarray:
    """Project points outside the lune onto its boundary.

    Points already inside are returned unchanged.  This realizes the
    paper's rule for alpha-diameter copies whose vertices spill outside
    the diameter locus.
    """
    pts = as_points(points).copy()
    inside = in_lune(pts)
    for row in np.nonzero(~inside)[0]:
        p = (float(pts[row, 0]), float(pts[row, 1]))
        candidates = [_nearest_on_arc(p, LEFT_CENTER, RIGHT_CENTER),
                      _nearest_on_arc(p, RIGHT_CENTER, LEFT_CENTER)]
        best = min(candidates,
                   key=lambda c: (c[0] - p[0]) ** 2 + (c[1] - p[1]) ** 2)
        pts[row] = best
    return pts


def sample_lune(count: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random points in the lune (rejection sampling).

    Workload generators use this to synthesize vertex distributions that
    match the paper's "uniform distribution of the vertices inside the
    lune" assumption (Section 2.5 complexity analysis).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    out = np.empty((count, 2))
    filled = 0
    height = math.sqrt(3.0) / 2.0
    while filled < count:
        need = count - filled
        batch = max(16, int(need / 0.70) + 1)   # lune fills ~71% of its bbox
        candidates = np.column_stack([
            rng.uniform(0.0, 1.0, batch),
            rng.uniform(-height, height, batch)])
        good = candidates[in_lune(candidates)]
        take = min(len(good), need)
        out[filled:filled + take] = good[:take]
        filled += take
    return out
