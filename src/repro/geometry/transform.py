"""Similarity transforms and diameter normalization (paper Sections 2.3-2.4).

A *similarity transform* is scale + rotation + translation (no shear, no
reflection).  Normalizing a shape about a vertex pair ``(p, q)`` applies
the unique similarity transform mapping ``p -> (0, 0)`` and
``q -> (1, 0)``; the paper stores each shape base entry this way, once
per direction per alpha-diameter, and keeps the *inverse* transform so
that query processing can recover original diameters (Section 5.3).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from .diameter import alpha_diameters
from .polyline import Shape
from .primitives import EPSILON, as_points


class SimilarityTransform:
    """``T(x) = scale * R(theta) @ x + t`` — an orientation-preserving
    similarity of the plane.

    Stored as the four numbers ``(a, b, tx, ty)`` where the linear part
    is ``[[a, -b], [b, a]]`` (so ``scale = hypot(a, b)`` and
    ``theta = atan2(b, a)``).  Four floats per record is exactly the
    footprint the paper's ~200-byte shape record budget assumes.
    """

    __slots__ = ("a", "b", "tx", "ty")

    def __init__(self, a: float, b: float, tx: float, ty: float):
        self.a = float(a)
        self.b = float(b)
        self.tx = float(tx)
        self.ty = float(ty)

    # -- constructors ---------------------------------------------------
    @classmethod
    def identity(cls) -> "SimilarityTransform":
        return cls(1.0, 0.0, 0.0, 0.0)

    @classmethod
    def from_scale_rotation_translation(cls, scale: float, theta: float,
                                        tx: float, ty: float
                                        ) -> "SimilarityTransform":
        if scale <= 0:
            raise ValueError("scale must be positive")
        return cls(scale * math.cos(theta), scale * math.sin(theta), tx, ty)

    @classmethod
    def mapping_segment_to_unit(cls, p: Sequence[float],
                                q: Sequence[float]) -> "SimilarityTransform":
        """The transform sending ``p -> (0, 0)`` and ``q -> (1, 0)``."""
        dx, dy = q[0] - p[0], q[1] - p[1]
        norm_sq = dx * dx + dy * dy
        if norm_sq < EPSILON * EPSILON:
            raise ValueError("cannot normalize about a zero-length segment")
        # Linear part: conjugate of (dx + i dy) divided by |pq|^2.
        a = dx / norm_sq
        b = -dy / norm_sq
        tx = -(a * p[0] - b * p[1])
        ty = -(b * p[0] + a * p[1])
        return cls(a, b, tx, ty)

    # -- algebra ---------------------------------------------------------
    @property
    def scale(self) -> float:
        return math.hypot(self.a, self.b)

    @property
    def rotation(self) -> float:
        return math.atan2(self.b, self.a)

    @property
    def translation(self) -> Tuple[float, float]:
        return (self.tx, self.ty)

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Transform an ``(n, 2)`` array (or a single point) of inputs."""
        pts = as_points(points)
        x, y = pts[:, 0], pts[:, 1]
        out = np.column_stack([self.a * x - self.b * y + self.tx,
                               self.b * x + self.a * y + self.ty])
        return out

    def apply_point(self, p: Sequence[float]) -> Tuple[float, float]:
        return (self.a * p[0] - self.b * p[1] + self.tx,
                self.b * p[0] + self.a * p[1] + self.ty)

    def apply_shape(self, shape: Shape) -> Shape:
        return Shape(self.apply(shape.vertices), closed=shape.closed)

    def compose(self, other: "SimilarityTransform") -> "SimilarityTransform":
        """Return ``self o other`` (apply ``other`` first)."""
        a = self.a * other.a - self.b * other.b
        b = self.b * other.a + self.a * other.b
        tx, ty = self.apply_point((other.tx, other.ty))
        return SimilarityTransform(a, b, tx, ty)

    def inverse(self) -> "SimilarityTransform":
        norm_sq = self.a * self.a + self.b * self.b
        if norm_sq < EPSILON * EPSILON:
            raise ValueError("transform is singular")
        ia = self.a / norm_sq
        ib = -self.b / norm_sq
        itx = -(ia * self.tx - ib * self.ty)
        ity = -(ib * self.tx + ia * self.ty)
        return SimilarityTransform(ia, ib, itx, ity)

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.a, self.b, self.tx, self.ty)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimilarityTransform):
            return NotImplemented
        return all(abs(x - y) < 1e-9
                   for x, y in zip(self.as_tuple(), other.as_tuple()))

    def __repr__(self) -> str:
        return (f"SimilarityTransform(scale={self.scale:.6g}, "
                f"rotation={self.rotation:.6g}, t=({self.tx:.6g}, {self.ty:.6g}))")


class NormalizedCopy:
    """One normalized entry of the shape base.

    Carries the normalized shape, the forward transform that produced it
    and the pair of original vertex indices that served as the
    alpha-diameter.  ``inverse`` recovers original coordinates — the
    query processor uses ``inverse.apply`` on the canonical diameter
    ``((0,0), (1,0))`` to compute signed angles between shapes
    (Section 5.3).
    """

    __slots__ = ("shape", "transform", "pair")

    def __init__(self, shape: Shape, transform: SimilarityTransform,
                 pair: Tuple[int, int]):
        self.shape = shape
        self.transform = transform
        self.pair = pair

    @property
    def inverse(self) -> SimilarityTransform:
        return self.transform.inverse()

    def original_diameter_vector(self) -> Tuple[float, float]:
        """The normalized x-axis mapped back to original coordinates."""
        inv = self.inverse
        p0 = inv.apply_point((0.0, 0.0))
        p1 = inv.apply_point((1.0, 0.0))
        return (p1[0] - p0[0], p1[1] - p0[1])

    def __repr__(self) -> str:
        return f"NormalizedCopy(pair={self.pair}, {self.shape!r})"


def normalize_about(shape: Shape, i: int, j: int) -> NormalizedCopy:
    """Normalize ``shape`` so vertex ``i`` lands on (0,0) and ``j`` on (1,0)."""
    v = shape.vertices
    transform = SimilarityTransform.mapping_segment_to_unit(v[i], v[j])
    return NormalizedCopy(transform.apply_shape(shape), transform, (i, j))


def normalize_about_diameter(shape: Shape) -> NormalizedCopy:
    """Normalize about the true diameter (the query-side normalization).

    The database carries every alpha-diameter in both orientations, so a
    query only needs this single canonical copy (Section 2.3).
    """
    from .diameter import diameter as _diameter
    (i, j), _ = _diameter(shape.vertices)
    return normalize_about(shape, i, j)


def normalized_copies(shape: Shape, alpha: float = 0.0) -> List[NormalizedCopy]:
    """All normalized copies of ``shape`` per the paper's Section 2.4.

    For each alpha-diameter ``(i, j)`` two copies are produced: one with
    ``i -> (0,0), j -> (1,0)`` and one with the endpoints swapped.
    """
    pairs, _ = alpha_diameters(shape.vertices, alpha)
    copies: List[NormalizedCopy] = []
    for i, j in pairs:
        copies.append(normalize_about(shape, i, j))
        copies.append(normalize_about(shape, j, i))
    return copies


def batch_normalized_copies(shapes: Sequence[Shape], alpha: float = 0.0
                            ) -> List[List[NormalizedCopy]]:
    """``[normalized_copies(s, alpha) for s in shapes]``, batched.

    All transform parameters and all normalized vertex coordinates are
    computed in a handful of stacked numpy passes over every copy of
    every shape at once; only the final ``NormalizedCopy`` objects are
    assembled in Python.  Because each elementwise operation uses the
    same operands in the same order as the scalar path, the resulting
    entries are bit-for-bit identical to per-shape ``normalized_copies``
    (same floats, same pair order, same errors on degenerate input).
    """
    if not shapes:
        return []
    n_s = np.array([s.num_vertices for s in shapes], dtype=np.int64)
    starts = np.concatenate(([0], np.cumsum(n_s)))[:-1]
    flat = np.concatenate([s.vertices for s in shapes], axis=0)

    # One (shape_idx, p, q) row per copy; pair (i, j) yields (i, j) then
    # (j, i), preserving the scalar path's copy order exactly.
    shape_idx: List[int] = []
    p_loc: List[int] = []
    q_loc: List[int] = []
    pair_tuples: List[Tuple[int, int]] = []
    per_shape_counts: List[int] = []
    for s_i, shape in enumerate(shapes):
        pairs, _ = alpha_diameters(shape.vertices, alpha)
        per_shape_counts.append(2 * len(pairs))
        for i, j in pairs:
            shape_idx.extend((s_i, s_i))
            p_loc.extend((i, j))
            q_loc.extend((j, i))
            pair_tuples.append((i, j))
            pair_tuples.append((j, i))
    sidx = np.array(shape_idx, dtype=np.int64)
    p_glob = starts[sidx] + np.array(p_loc, dtype=np.int64)
    q_glob = starts[sidx] + np.array(q_loc, dtype=np.int64)

    # Stacked transform parameters (mapping_segment_to_unit, vectorized).
    P = flat[p_glob]
    Q = flat[q_glob]
    dx = Q[:, 0] - P[:, 0]
    dy = Q[:, 1] - P[:, 1]
    norm_sq = dx * dx + dy * dy
    if np.any(norm_sq < EPSILON * EPSILON):
        raise ValueError("cannot normalize about a zero-length segment")
    A = dx / norm_sq
    B = -dy / norm_sq
    TX = -(A * P[:, 0] - B * P[:, 1])
    TY = -(B * P[:, 0] + A * P[:, 1])

    # Apply every transform to its shape's vertices in one flat pass.
    counts = n_s[sidx]                              # vertices per copy
    copy_off = np.concatenate(([0], np.cumsum(counts)))
    total = int(copy_off[-1])
    src = np.arange(total, dtype=np.int64) + \
        np.repeat(starts[sidx] - copy_off[:-1], counts)
    x = flat[src, 0]
    y = flat[src, 1]
    Af = np.repeat(A, counts)
    Bf = np.repeat(B, counts)
    out = np.empty((total, 2), dtype=np.float64)
    out[:, 0] = Af * x - Bf * y + np.repeat(TX, counts)
    out[:, 1] = Bf * x + Af * y + np.repeat(TY, counts)
    out.setflags(write=False)

    # Shape.__init__'s duplicated-closing-vertex check, vectorized: for
    # closed shapes, drop the last vertex when np.allclose(first, last)
    # (atol=EPSILON, default rtol=1e-5) would fire.
    closed_s = np.array([s.closed for s in shapes], dtype=bool)
    closed_c = closed_s[sidx]
    first = out[copy_off[:-1]]
    last = out[copy_off[1:] - 1]
    near = np.abs(first - last) <= (EPSILON + 1.0e-5 * np.abs(last))
    drop = closed_c & near.all(axis=1)
    if np.any(drop & (counts - 1 < 3)):
        raise ValueError("a closed shape needs at least three vertices")

    result: List[List[NormalizedCopy]] = []
    k = 0
    for s_i, copy_count in enumerate(per_shape_counts):
        copies: List[NormalizedCopy] = []
        closed = bool(closed_s[s_i])
        for _ in range(copy_count):
            end = int(copy_off[k + 1]) - (1 if drop[k] else 0)
            norm_shape = Shape._trusted(out[int(copy_off[k]):end], closed)
            transform = SimilarityTransform(A[k], B[k], TX[k], TY[k])
            copies.append(NormalizedCopy(norm_shape, transform,
                                         pair_tuples[k]))
            k += 1
        result.append(copies)
    return result
