"""JSON interchange for shapes and image collections.

A minimal, stable text format so bases can be built from external
tooling (sketch editors, extraction pipelines) and results inspected:

.. code-block:: json

    {
      "images": [
        {"id": 0,
         "shapes": [
            {"closed": true, "vertices": [[0, 0], [4, 0], [2, 3]]}
         ]}
      ]
    }

A bare top-level ``{"shapes": [...]}`` (no image grouping) is also
accepted and written by the single-list helpers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .polyline import Shape

PathLike = Union[str, Path]


def shape_to_dict(shape: Shape) -> dict:
    """One shape as a JSON-ready dict."""
    return {"closed": shape.closed,
            "vertices": [[float(x), float(y)] for x, y in shape.vertices]}


def shape_from_dict(payload: dict) -> Shape:
    """Inverse of :func:`shape_to_dict` (with validation)."""
    if "vertices" not in payload:
        raise ValueError("shape record lacks 'vertices'")
    vertices = payload["vertices"]
    closed = bool(payload.get("closed", True))
    return Shape(vertices, closed=closed)


def save_shapes(shapes: Sequence[Shape], path: PathLike) -> None:
    """Write a flat shape list."""
    payload = {"shapes": [shape_to_dict(s) for s in shapes]}
    Path(path).write_text(json.dumps(payload, indent=1))


def load_shapes(path: PathLike) -> List[Shape]:
    """Read a flat shape list (also accepts the grouped format,
    flattening it)."""
    payload = json.loads(Path(path).read_text())
    if "shapes" in payload:
        return [shape_from_dict(s) for s in payload["shapes"]]
    if "images" in payload:
        return [shape_from_dict(s)
                for image in payload["images"]
                for s in image.get("shapes", [])]
    raise ValueError("expected a 'shapes' or 'images' key")


def save_images(images: Sequence[Tuple[Optional[int], Sequence[Shape]]],
                path: PathLike) -> None:
    """Write grouped images: an iterable of ``(image_id, shapes)``."""
    records = []
    for image_id, shapes in images:
        record: Dict = {"shapes": [shape_to_dict(s) for s in shapes]}
        if image_id is not None:
            record["id"] = int(image_id)
        records.append(record)
    Path(path).write_text(json.dumps({"images": records}, indent=1))


def load_images(path: PathLike) -> List[Tuple[Optional[int], List[Shape]]]:
    """Read grouped images as ``(image_id, shapes)`` pairs.

    A flat ``shapes`` file is treated as a single anonymous image.
    """
    payload = json.loads(Path(path).read_text())
    if "images" in payload:
        out = []
        for record in payload["images"]:
            image_id = record.get("id")
            shapes = [shape_from_dict(s) for s in record.get("shapes", [])]
            out.append((image_id, shapes))
        return out
    if "shapes" in payload:
        return [(None, [shape_from_dict(s) for s in payload["shapes"]])]
    raise ValueError("expected a 'shapes' or 'images' key")
