"""The ``Shape`` class: a non-self-intersecting polygon or polyline.

Section 2.4 of the paper defines a *shape* as "a non self-intersecting
polygon or polyline with no convexity restrictions".  ``Shape`` is the
single vertex-sequence abstraction used everywhere: the shape base, the
matcher, the hashing stage and the query processor all trade in it.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from .primitives import (EPSILON, as_points, bounding_box, interior_angle,
                         polygon_signed_area)
from .predicates import polygon_is_simple


class Shape:
    """An immutable open polyline or closed polygon in the plane.

    Parameters
    ----------
    vertices:
        Iterable of ``(x, y)`` pairs; at least two distinct points.
    closed:
        When true the last vertex connects back to the first (polygon);
        when false the shape is an open polyline.  Both kinds occur in
        the paper's image base (Section 6: "non-self-intersecting
        polylines either open or closed").
    """

    __slots__ = ("_vertices", "closed", "_perimeter", "_edge_lengths")

    def __init__(self, vertices: Iterable[Sequence[float]], closed: bool = True):
        array = as_points(vertices)
        if len(array) < 2:
            raise ValueError("a shape needs at least two vertices")
        if closed and len(array) >= 2 and \
                np.allclose(array[0], array[-1], atol=EPSILON):
            array = array[:-1]          # drop the duplicated closing vertex
        if closed and len(array) < 3:
            raise ValueError("a closed shape needs at least three vertices")
        array.setflags(write=False)
        self._vertices = array
        self.closed = bool(closed)
        self._perimeter: Optional[float] = None
        self._edge_lengths: Optional[np.ndarray] = None

    @classmethod
    def _trusted(cls, vertices: np.ndarray, closed: bool) -> "Shape":
        """Wrap an already-validated vertex array without copying.

        ``vertices`` must be a read-only float64 ``(n, 2)`` array that
        already satisfies the constructor's invariants (enough vertices,
        no duplicated closing vertex).  Bulk pipelines use this to turn
        slices of one big batch-computed array into ``Shape`` objects
        without re-running per-shape validation.
        """
        shape = object.__new__(cls)
        shape._vertices = vertices
        shape.closed = closed
        shape._perimeter = None
        shape._edge_lengths = None
        return shape

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> np.ndarray:
        """Read-only ``(n, 2)`` array of vertices."""
        return self._vertices

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    def __len__(self) -> int:
        return len(self._vertices)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._vertices)

    def __repr__(self) -> str:
        kind = "polygon" if self.closed else "polyline"
        return f"Shape({kind}, {self.num_vertices} vertices)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Shape):
            return NotImplemented
        return (self.closed == other.closed and
                self._vertices.shape == other._vertices.shape and
                bool(np.allclose(self._vertices, other._vertices,
                                 atol=EPSILON)))

    def __hash__(self) -> int:
        return hash((self.closed, self._vertices.shape,
                     self._vertices.round(9).tobytes()))

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return self.num_vertices if self.closed else self.num_vertices - 1

    def edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(starts, ends)`` arrays of shape ``(num_edges, 2)``."""
        v = self._vertices
        if self.closed:
            return v, np.roll(v, -1, axis=0)
        return v[:-1], v[1:]

    def edge_lengths(self) -> np.ndarray:
        """Lengths of all edges, cached."""
        if self._edge_lengths is None:
            starts, ends = self.edges()
            delta = ends - starts
            lengths = np.hypot(delta[:, 0], delta[:, 1])
            lengths.setflags(write=False)
            self._edge_lengths = lengths
        return self._edge_lengths

    @property
    def perimeter(self) -> float:
        """Total boundary length (``l_Q`` in the paper's epsilon bound)."""
        if self._perimeter is None:
            self._perimeter = float(self.edge_lengths().sum())
        return self._perimeter

    @property
    def area(self) -> float:
        """Absolute enclosed area; zero for open polylines."""
        if not self.closed:
            return 0.0
        return abs(polygon_signed_area(self._vertices))

    @property
    def centroid(self) -> Tuple[float, float]:
        """Arithmetic mean of the vertices."""
        c = self._vertices.mean(axis=0)
        return (float(c[0]), float(c[1]))

    def bbox(self) -> Tuple[float, float, float, float]:
        """Axis-aligned bounding box ``(xmin, ymin, xmax, ymax)``."""
        return bounding_box(self._vertices)

    def is_simple(self) -> bool:
        """True when the shape has no self-intersections (paper Sec. 2.4)."""
        return polygon_is_simple(self._vertices, closed=self.closed)

    def interior_angles(self) -> np.ndarray:
        """Positive angle in ``[0, pi]`` at every vertex.

        For an open polyline the two endpoints have no turn; the paper's
        V_S statistic treats them as degenerate (angle 0, contributing
        their edge-length term only), and so do we.
        """
        v = self._vertices
        n = len(v)
        angles = np.zeros(n)
        if self.closed:
            for i in range(n):
                angles[i] = interior_angle(v[(i - 1) % n], v[i], v[(i + 1) % n])
        else:
            for i in range(1, n - 1):
                angles[i] = interior_angle(v[i - 1], v[i], v[i + 1])
        return angles

    # ------------------------------------------------------------------
    # Boundary sampling (continuous-measure support)
    # ------------------------------------------------------------------
    def sample_boundary(self, spacing: float) -> np.ndarray:
        """Points spaced ~``spacing`` apart along the boundary.

        The paper computes ``h_avg`` over *all points of the continuous
        shape* (Section 2.2); we approximate the boundary integral with a
        uniform arc-length quadrature.  Each edge gets at least two
        sample points (its endpoints), so the discrete vertex set is
        always a subset of the returned samples.
        """
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        starts, ends = self.edges()
        lengths = self.edge_lengths()
        pieces = []
        for start, end, length in zip(starts, ends, lengths):
            count = max(2, int(math.ceil(length / spacing)) + 1)
            t = np.linspace(0.0, 1.0, count, endpoint=False)[:, None]
            pieces.append(start + t * (end - start))
        if not self.closed:
            pieces.append(self._vertices[-1:].copy())
        return np.vstack(pieces)

    def boundary_quadrature(self, samples_per_edge: int = 8
                            ) -> Tuple[np.ndarray, np.ndarray]:
        """Midpoint-rule quadrature nodes and weights over the boundary.

        Returns ``(points, weights)`` where ``weights`` sum to the
        perimeter.  Used for the exact edge-integrated ``h_avg``.
        """
        if samples_per_edge < 1:
            raise ValueError("samples_per_edge must be >= 1")
        starts, ends = self.edges()
        lengths = self.edge_lengths()
        t = (np.arange(samples_per_edge) + 0.5) / samples_per_edge
        points = []
        weights = []
        for start, end, length in zip(starts, ends, lengths):
            points.append(start + t[:, None] * (end - start))
            weights.append(np.full(samples_per_edge, length / samples_per_edge))
        return np.vstack(points), np.concatenate(weights)

    # ------------------------------------------------------------------
    # Constructors / transforms
    # ------------------------------------------------------------------
    def reversed(self) -> "Shape":
        """Same shape with the vertex order reversed."""
        return Shape(self._vertices[::-1].copy(), closed=self.closed)

    def translated(self, dx: float, dy: float) -> "Shape":
        return Shape(self._vertices + np.array([dx, dy]), closed=self.closed)

    def scaled(self, factor: float) -> "Shape":
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return Shape(self._vertices * factor, closed=self.closed)

    def rotated(self, angle: float) -> "Shape":
        """Rotate counter-clockwise about the origin by ``angle`` radians."""
        c, s = math.cos(angle), math.sin(angle)
        rotation = np.array([[c, -s], [s, c]])
        return Shape(self._vertices @ rotation.T, closed=self.closed)

    @classmethod
    def regular_polygon(cls, sides: int, radius: float = 1.0,
                        center: Sequence[float] = (0.0, 0.0),
                        phase: float = 0.0) -> "Shape":
        """Convenience constructor for test/workload fixtures."""
        if sides < 3:
            raise ValueError("a polygon needs at least three sides")
        theta = phase + 2.0 * math.pi * np.arange(sides) / sides
        points = np.column_stack([center[0] + radius * np.cos(theta),
                                  center[1] + radius * np.sin(theta)])
        return cls(points, closed=True)

    @classmethod
    def rectangle(cls, xmin: float, ymin: float, xmax: float,
                  ymax: float) -> "Shape":
        if xmax <= xmin or ymax <= ymin:
            raise ValueError("degenerate rectangle")
        return cls([(xmin, ymin), (xmax, ymin), (xmax, ymax), (xmin, ymax)],
                   closed=True)
