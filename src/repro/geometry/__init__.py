"""Geometric substrate: primitives, shapes, diameters, transforms,
epsilon-envelopes, the lune, and boundary-distance engines.

Everything the GeoSIR core builds on lives here; the modules are
dependency-ordered (primitives -> predicates -> polyline -> the rest).
"""

from .diameter import (alpha_diameters, convex_hull, diameter,
                       diameter_bruteforce, diameter_rotating_calipers)
from .io import (load_images, load_shapes, save_images, save_shapes,
                 shape_from_dict, shape_to_dict)
from .envelope import (EpsilonEnvelope, band_cover_triangles,
                       difference_mask)
from .lune import (LUNE_AREA, clamp_to_lune, in_lune, quarter_of,
                   quarters_of, sample_lune)
from .nearest import BoundaryDistance, GridBoundaryDistance
from .polyline import Shape
from .predicates import (orientation, point_in_polygon, point_in_triangle,
                         points_in_polygon, points_in_triangle,
                         polygon_is_simple, segment_intersection_point,
                         segments_intersect, segments_properly_intersect)
from .primitives import (EPSILON, as_points, bounding_box, cross, distance,
                         interior_angle, point_segment_distance,
                         points_segment_distance, points_segments_distance,
                         polygon_signed_area, signed_angle)
from .transform import (NormalizedCopy, SimilarityTransform,
                        batch_normalized_copies, normalize_about,
                        normalize_about_diameter, normalized_copies)

__all__ = [
    "EPSILON", "LUNE_AREA", "BoundaryDistance", "EpsilonEnvelope",
    "GridBoundaryDistance", "NormalizedCopy", "Shape", "SimilarityTransform",
    "alpha_diameters", "as_points", "band_cover_triangles",
    "batch_normalized_copies", "bounding_box",
    "clamp_to_lune", "convex_hull", "cross", "diameter",
    "diameter_bruteforce", "diameter_rotating_calipers", "difference_mask",
    "distance", "in_lune", "interior_angle", "load_images", "load_shapes",
    "normalize_about", "normalize_about_diameter", "normalized_copies",
    "orientation", "point_in_polygon", "save_images", "save_shapes",
    "shape_from_dict", "shape_to_dict",
    "point_in_triangle", "point_segment_distance", "points_in_polygon",
    "points_in_triangle", "points_segment_distance",
    "points_segments_distance", "polygon_is_simple", "polygon_signed_area",
    "quarter_of", "quarters_of", "sample_lune", "segment_intersection_point",
    "segments_intersect", "segments_properly_intersect", "signed_angle",
]
