"""Epsilon-envelopes of a query shape (paper Sections 2.3 and 2.5).

The ``epsilon``-envelope of a shape Q is the set of points at boundary
distance at most ``epsilon`` — the "fattened" query shape of Figure 3.
The matcher grows a sequence of envelopes and, at each step, must find
the shape-base vertices inside the *difference* of two consecutive
envelopes.  The paper decomposes that difference into O(m) trapezoids
(two per edge) and hands the resulting triangles to a simplex
range-search structure.

We reproduce exactly that decomposition:

* per edge, one strip on each side between the ``eps_inner`` and
  ``eps_outer`` offset lines (a trapezoid -> two triangles), and
* per vertex, a fan of triangles circumscribing the vertex disk of
  radius ``eps_outer`` (the joins/caps the straight strips miss).

The triangle set is a *conservative cover*: its union contains the
envelope difference and may slightly overshoot near joints, so vertices
reported by the range structure are always re-checked with the exact
distance predicate.  Overshoot only costs extra reported candidates
(the output-sensitive ``kappa`` term), never correctness.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from .nearest import BoundaryDistance
from .polyline import Shape
from .primitives import EPSILON, as_points

Triangle = np.ndarray        # (3, 2) array


def _edge_strip_triangles(a: np.ndarray, b: np.ndarray, inner: float,
                          outer: float) -> List[Triangle]:
    """Triangles covering the two side strips of one edge.

    Each strip is the set of points whose perpendicular foot falls on the
    edge and whose perpendicular distance lies in ``[inner, outer]``.
    """
    direction = b - a
    length = math.hypot(direction[0], direction[1])
    if length < EPSILON:
        return []
    normal = np.array([-direction[1], direction[0]]) / length
    triangles: List[Triangle] = []
    for side in (1.0, -1.0):
        lo = a + side * inner * normal, b + side * inner * normal
        hi = a + side * outer * normal, b + side * outer * normal
        quad = np.array([lo[0], lo[1], hi[1], hi[0]])
        triangles.append(quad[[0, 1, 2]].copy())
        triangles.append(quad[[0, 2, 3]].copy())
    return triangles


def _vertex_fan_triangles(center: np.ndarray, radius: float,
                          sectors: int) -> List[Triangle]:
    """Fan of ``sectors`` triangles whose union contains the disk.

    The fan circumscribes the circle: the outer chord is pushed out to
    radius ``radius / cos(pi / sectors)`` so no circular cap is missed.
    """
    if radius <= 0:
        return []
    circumradius = radius / math.cos(math.pi / sectors)
    angles = np.linspace(0.0, 2.0 * math.pi, sectors + 1)
    ring = center + circumradius * np.column_stack([np.cos(angles),
                                                    np.sin(angles)])
    return [np.array([center, ring[i], ring[i + 1]])
            for i in range(sectors)]


def band_cover_triangles(shape: Shape, eps_inner: float, eps_outer: float,
                         cap_sectors: int = 8) -> List[Triangle]:
    """Conservative triangle cover of the envelope difference.

    The union of the returned triangles contains every point ``p`` with
    ``eps_inner <= dist(p, boundary(shape)) <= eps_outer``.  The count is
    ``4 * num_edges + cap_sectors * num_vertices`` = O(m), matching the
    paper's per-iteration O(m) triangle budget.
    """
    if eps_outer < eps_inner:
        raise ValueError("eps_outer must be >= eps_inner")
    if eps_outer <= 0:
        return []
    triangles: List[Triangle] = []
    starts, ends = shape.edges()
    for a, b in zip(starts, ends):
        triangles.extend(_edge_strip_triangles(a, b, eps_inner, eps_outer))
    for vertex in shape.vertices:
        # The full disk (not just the ring) keeps the fan simple; points
        # inside the inner envelope are rejected by the exact filter and
        # by the matcher's visited set.
        triangles.extend(_vertex_fan_triangles(vertex, eps_outer, cap_sectors))
    return triangles


class EpsilonEnvelope:
    """The fattened query shape at a fixed width ``epsilon``."""

    def __init__(self, shape: Shape, epsilon: float):
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.shape = shape
        self.epsilon = float(epsilon)
        self._distance = BoundaryDistance(shape)

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask: which points lie inside the envelope."""
        pts = as_points(points)
        if len(pts) == 0:
            return np.zeros(0, dtype=bool)
        return self._distance.distances(pts) <= self.epsilon + EPSILON

    def contains_point(self, point) -> bool:
        return self._distance.distance(point) <= self.epsilon + EPSILON

    def cover_triangles(self, cap_sectors: int = 8) -> List[Triangle]:
        """Conservative triangle cover of the whole envelope."""
        return band_cover_triangles(self.shape, 0.0, self.epsilon,
                                    cap_sectors)

    def area_estimate(self) -> float:
        """First-order envelope area ``~ 2 * epsilon * perimeter``.

        This is the density estimate behind the paper's initial-epsilon
        choice and its termination threshold (Section 2.5, step 5).
        """
        return 2.0 * self.epsilon * self.shape.perimeter


def difference_mask(shape: Shape, eps_prev: float, eps_new: float,
                    points: np.ndarray) -> np.ndarray:
    """Exact mask of points in the envelope difference.

    ``True`` where ``eps_prev < dist(p, boundary) <= eps_new``.  This is
    the filter applied to range-search output; together with the
    matcher's per-vertex visited set it guarantees each shape-base
    vertex is processed exactly once (Section 2.5, step 2).
    """
    if eps_new < eps_prev:
        raise ValueError("eps_new must be >= eps_prev")
    pts = as_points(points)
    if len(pts) == 0:
        return np.zeros(0, dtype=bool)
    distances = BoundaryDistance(shape).distances(pts)
    return (distances > eps_prev + EPSILON) & (distances <= eps_new + EPSILON)
