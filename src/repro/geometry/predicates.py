"""Exact-ish geometric predicates: orientation, intersection, containment.

These are the classical computational-geometry predicates the paper's
machinery rests on: the envelope decomposition needs point-in-triangle
tests, the topological operators of Section 5 need polygon containment
and overlap tests, and the GeoSIR ingestion pipeline (Section 6) needs
segment-intersection tests to decompose self-intersecting polylines.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .primitives import EPSILON, as_points, cross

Point = Sequence[float]


def orientation(a: Point, b: Point, c: Point, eps: float = EPSILON) -> int:
    """Return +1 for a left turn, -1 for a right turn, 0 for collinear."""
    value = cross(a, b, c)
    if value > eps:
        return 1
    if value < -eps:
        return -1
    return 0


def on_segment(p: Point, a: Point, b: Point, eps: float = EPSILON) -> bool:
    """True when collinear point ``p`` lies on the closed segment ``ab``."""
    return (min(a[0], b[0]) - eps <= p[0] <= max(a[0], b[0]) + eps and
            min(a[1], b[1]) - eps <= p[1] <= max(a[1], b[1]) + eps)


def segments_intersect(a: Point, b: Point, c: Point, d: Point,
                       eps: float = EPSILON) -> bool:
    """True when closed segments ``ab`` and ``cd`` share at least one point."""
    o1 = orientation(a, b, c, eps)
    o2 = orientation(a, b, d, eps)
    o3 = orientation(c, d, a, eps)
    o4 = orientation(c, d, b, eps)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and on_segment(c, a, b, eps):
        return True
    if o2 == 0 and on_segment(d, a, b, eps):
        return True
    if o3 == 0 and on_segment(a, c, d, eps):
        return True
    if o4 == 0 and on_segment(b, c, d, eps):
        return True
    return False


def segments_properly_intersect(a: Point, b: Point, c: Point, d: Point,
                                eps: float = EPSILON) -> bool:
    """True when ``ab`` and ``cd`` cross at a single interior point."""
    o1 = orientation(a, b, c, eps)
    o2 = orientation(a, b, d, eps)
    o3 = orientation(c, d, a, eps)
    o4 = orientation(c, d, b, eps)
    return o1 != o2 and o3 != o4 and 0 not in (o1, o2, o3, o4)


def segment_intersection_point(a: Point, b: Point, c: Point,
                               d: Point) -> Optional[Tuple[float, float]]:
    """Intersection point of the *lines* through ``ab`` and ``cd``.

    Returns the point when the segments properly intersect; ``None`` when
    the segments are parallel or miss each other.  Touching endpoints are
    treated as intersections (the cluster-decomposition stage of the
    GeoSIR pipeline wants them).
    """
    r = (b[0] - a[0], b[1] - a[1])
    s = (d[0] - c[0], d[1] - c[1])
    denominator = r[0] * s[1] - r[1] * s[0]
    if abs(denominator) < EPSILON:
        return None
    qp = (c[0] - a[0], c[1] - a[1])
    t = (qp[0] * s[1] - qp[1] * s[0]) / denominator
    u = (qp[0] * r[1] - qp[1] * r[0]) / denominator
    if -EPSILON <= t <= 1.0 + EPSILON and -EPSILON <= u <= 1.0 + EPSILON:
        return (a[0] + t * r[0], a[1] + t * r[1])
    return None


def point_in_triangle(p: Point, a: Point, b: Point, c: Point,
                      eps: float = EPSILON) -> bool:
    """True when ``p`` lies inside or on the boundary of triangle ``abc``.

    Degenerate (collinear) triangles are handled consistently: the
    bounding-box constraint keeps "inside" meaning "on the segment"
    instead of the half-plane test's vacuous everywhere-true.
    """
    if not (min(a[0], b[0], c[0]) - eps <= p[0] <= max(a[0], b[0], c[0]) + eps
            and min(a[1], b[1], c[1]) - eps <= p[1]
            <= max(a[1], b[1], c[1]) + eps):
        return False
    d1 = cross(a, b, p)
    d2 = cross(b, c, p)
    d3 = cross(c, a, p)
    has_neg = (d1 < -eps) or (d2 < -eps) or (d3 < -eps)
    has_pos = (d1 > eps) or (d2 > eps) or (d3 > eps)
    return not (has_neg and has_pos)


def points_in_triangle(points: np.ndarray, a: Point, b: Point, c: Point,
                       eps: float = EPSILON) -> np.ndarray:
    """Vectorized triangle-containment test; returns a boolean mask.

    This is the predicate the simplex-range-search substrate answers in
    bulk (Section 2.5 step 2): "which shape-base vertices fall inside this
    query triangle?".
    """
    points = as_points(points)
    px, py = points[:, 0], points[:, 1]

    def half_plane(o: Point, q: Point) -> np.ndarray:
        return (q[0] - o[0]) * (py - o[1]) - (q[1] - o[1]) * (px - o[0])

    d1 = half_plane(a, b)
    d2 = half_plane(b, c)
    d3 = half_plane(c, a)
    has_neg = (d1 < -eps) | (d2 < -eps) | (d3 < -eps)
    has_pos = (d1 > eps) | (d2 > eps) | (d3 > eps)
    in_box = ((px >= min(a[0], b[0], c[0]) - eps) &
              (px <= max(a[0], b[0], c[0]) + eps) &
              (py >= min(a[1], b[1], c[1]) - eps) &
              (py <= max(a[1], b[1], c[1]) + eps))
    return ~(has_neg & has_pos) & in_box


def point_in_polygon(p: Point, vertices: np.ndarray,
                     eps: float = EPSILON) -> bool:
    """Even-odd test: is ``p`` inside the closed polygon ``vertices``?

    Boundary points count as inside, matching the semantics the
    ``contain`` topological predicate of Section 5.1 needs (a shape
    touching its container from inside is still contained).
    """
    v = as_points(vertices)
    n = len(v)
    inside = False
    j = n - 1
    for i in range(n):
        xi, yi = v[i]
        xj, yj = v[j]
        if on_segment(p, (xi, yi), (xj, yj), eps) and \
                orientation((xi, yi), (xj, yj), p, eps) == 0:
            return True
        if (yi > p[1]) != (yj > p[1]):
            x_cross = (xj - xi) * (p[1] - yi) / (yj - yi) + xi
            if p[0] < x_cross:
                inside = not inside
        j = i
    return inside


def points_in_polygon(points: np.ndarray, vertices: np.ndarray) -> np.ndarray:
    """Vectorized even-odd point-in-polygon test (boundary ~ inside)."""
    points = as_points(points)
    v = as_points(vertices)
    px, py = points[:, 0], points[:, 1]
    inside = np.zeros(len(points), dtype=bool)
    n = len(v)
    j = n - 1
    for i in range(n):
        xi, yi = v[i]
        xj, yj = v[j]
        crosses = (yi > py) != (yj > py)
        if np.any(crosses):
            x_cross = (xj - xi) * (py[crosses] - yi) / (yj - yi) + xi
            flips = np.zeros(len(points), dtype=bool)
            flips[crosses] = px[crosses] < x_cross
            inside ^= flips
        j = i
    return inside


def boundaries_contact(a_starts: np.ndarray, a_ends: np.ndarray,
                       b_starts: np.ndarray, b_ends: np.ndarray,
                       eps: float = EPSILON) -> Tuple[bool, bool]:
    """``(touching, properly_crossing)`` for two whole edge sets at once.

    Vectorized equivalent of the pairwise ``segments_intersect`` /
    ``segments_properly_intersect`` double loop over every (edge of A,
    edge of B) pair: one broadcasted orientation computation for all
    ``n_a * n_b`` pairs instead of four scalar predicate calls per
    pair.  The epsilon semantics are identical by construction — the
    same ``cross > eps`` sign test and the same closed bounding-box
    collinearity check — so this returns exactly what the scalar loop
    returns (``tests/test_graph.py`` pins the equivalence on random
    shape pairs).  The image-graph builder runs all its pair tests
    through this path.
    """
    a0 = as_points(a_starts)[:, None, :]
    a1 = as_points(a_ends)[:, None, :]
    b0 = as_points(b_starts)[None, :, :]
    b1 = as_points(b_ends)[None, :, :]

    def orient(p0: np.ndarray, p1: np.ndarray, q: np.ndarray) -> np.ndarray:
        value = ((p1[..., 0] - p0[..., 0]) * (q[..., 1] - p0[..., 1]) -
                 (p1[..., 1] - p0[..., 1]) * (q[..., 0] - p0[..., 0]))
        return (value > eps).astype(np.int8) - (value < -eps).astype(np.int8)

    o1 = orient(a0, a1, b0)
    o2 = orient(a0, a1, b1)
    o3 = orient(b0, b1, a0)
    o4 = orient(b0, b1, a1)
    straddle = (o1 != o2) & (o3 != o4)
    proper = straddle & (o1 != 0) & (o2 != 0) & (o3 != 0) & (o4 != 0)

    def in_box(q: np.ndarray, p0: np.ndarray, p1: np.ndarray) -> np.ndarray:
        lo = np.minimum(p0, p1) - eps
        hi = np.maximum(p0, p1) + eps
        return ((q[..., 0] >= lo[..., 0]) & (q[..., 0] <= hi[..., 0]) &
                (q[..., 1] >= lo[..., 1]) & (q[..., 1] <= hi[..., 1]))

    touching = straddle.any() or bool(
        (((o1 == 0) & in_box(b0, a0, a1)) |
         ((o2 == 0) & in_box(b1, a0, a1)) |
         ((o3 == 0) & in_box(a0, b0, b1)) |
         ((o4 == 0) & in_box(a1, b0, b1))).any())
    return bool(touching), bool(proper.any())


def polygon_is_simple(vertices: np.ndarray, closed: bool = True,
                      eps: float = EPSILON) -> bool:
    """True when the polyline/polygon has no self-intersections.

    Adjacent edges sharing an endpoint are allowed; everything else is
    checked pairwise (O(m^2), fine for the ~20-vertex shapes the paper's
    base contains).
    """
    v = as_points(vertices)
    n = len(v)
    if n < 3:
        return True
    edge_count = n if closed else n - 1
    edges = [(v[i], v[(i + 1) % n]) for i in range(edge_count)]
    for i in range(edge_count):
        for j in range(i + 1, edge_count):
            adjacent = (j == i + 1) or (closed and i == 0 and j == edge_count - 1)
            a, b = edges[i]
            c, d = edges[j]
            if adjacent:
                if segments_properly_intersect(a, b, c, d, eps):
                    return False
                continue
            if segments_intersect(a, b, c, d, eps):
                return False
    return True


def triangle_intersects_box(a: Point, b: Point, c: Point,
                            xmin: float, ymin: float,
                            xmax: float, ymax: float) -> bool:
    """Separating-axis test between triangle ``abc`` and an AABB.

    Used by the kd-tree triangle-range-search backend to prune subtrees.
    """
    tx = (a[0], b[0], c[0])
    ty = (a[1], b[1], c[1])
    # The slack mirrors the eps tolerance of the point-level predicates,
    # so tree pruning never rejects a point the exact test would accept.
    if max(tx) < xmin - EPSILON or min(tx) > xmax + EPSILON or \
            max(ty) < ymin - EPSILON or min(ty) > ymax + EPSILON:
        return False
    corners = ((xmin, ymin), (xmax, ymin), (xmax, ymax), (xmin, ymax))
    # Triangle edge normals as separating axes.
    vertices = (a, b, c)
    for i in range(3):
        p, q = vertices[i], vertices[(i + 1) % 3]
        nx, ny = q[1] - p[1], p[0] - q[0]
        tri_proj = [nx * vx + ny * vy for vx, vy in vertices]
        box_proj = [nx * vx + ny * vy for vx, vy in corners]
        if max(tri_proj) < min(box_proj) - EPSILON or \
                min(tri_proj) > max(box_proj) + EPSILON:
            return False
    return True


def box_inside_triangle(a: Point, b: Point, c: Point,
                        xmin: float, ymin: float,
                        xmax: float, ymax: float) -> bool:
    """True when the whole AABB lies inside triangle ``abc``.

    Lets the range-search backends report entire subtrees without
    per-point tests (the output-sensitive ``+ kappa`` term of the paper's
    ``O(log^3 n + kappa)`` query bound).
    """
    for corner in ((xmin, ymin), (xmax, ymin), (xmax, ymax), (xmin, ymax)):
        if not point_in_triangle(corner, a, b, c):
            return False
    return True
