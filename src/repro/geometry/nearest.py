"""Nearest-boundary-distance engine for a fixed query shape.

Section 2.5 of the paper uses "the Voronoi diagram of the query shape Q"
(a segment Voronoi diagram, computable in O(m log m)) to answer
point-to-boundary distance queries quickly.  A robust segment Voronoi
diagram is notoriously fiddly; since the query shape has a *constant*
number m of edges (the paper's complexity analysis treats m as O(1)),
we provide:

* an exact vectorized all-segments scan, O(m) per point batch, and
* a uniform-grid accelerator that buckets edges by proximity so each
  point only tests nearby edges — the practical stand-in for the
  Voronoi point-location step, with the same exactness (candidate lists
  per cell are conservative supersets).

Both return exact distances; the grid is just faster for large batches
against many-edge shapes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .polyline import Shape
from .primitives import (as_points, point_segment_distance,
                         points_segments_distance)


class BoundaryDistance:
    """Exact minimum distance from points to the boundary of one shape."""

    def __init__(self, shape: Shape):
        self.shape = shape
        starts, ends = shape.edges()
        self._starts = starts
        self._ends = ends

    def distances(self, points: np.ndarray) -> np.ndarray:
        """Min distance from each point to the shape boundary."""
        return points_segments_distance(as_points(points),
                                        self._starts, self._ends)

    def distance(self, point: Sequence[float]) -> float:
        return float(min(point_segment_distance(point, a, b)
                         for a, b in zip(self._starts, self._ends)))


class GridBoundaryDistance:
    """Grid-accelerated exact boundary distance (Voronoi stand-in).

    The plane region of interest is covered by square cells of side
    ``cell``; each cell stores the edges whose distance to the cell is
    at most ``reach``.  Queries within ``reach`` of the boundary test
    only that candidate list; farther points fall back to the full scan.
    The matcher only ever asks about points near the epsilon-envelope,
    whose width is bounded by the paper's ``A / (2 p l_Q) * log^3 n``
    threshold, so ``reach`` is chosen from that bound.
    """

    def __init__(self, shape: Shape, reach: float, cell: float = 0.0):
        if reach <= 0:
            raise ValueError("reach must be positive")
        self.shape = shape
        self.reach = float(reach)
        starts, ends = shape.edges()
        self._starts = starts
        self._ends = ends
        self._fallback = BoundaryDistance(shape)
        if cell <= 0:
            # Heuristic: a few edges per cell on average.
            cell = max(reach, shape.perimeter / max(1, shape.num_edges))
        self.cell = float(cell)
        self._buckets: Dict[Tuple[int, int], List[int]] = {}
        margin = self.reach + self.cell
        for index, (a, b) in enumerate(zip(starts, ends)):
            xmin = min(a[0], b[0]) - margin
            xmax = max(a[0], b[0]) + margin
            ymin = min(a[1], b[1]) - margin
            ymax = max(a[1], b[1]) + margin
            for cx in range(int(math.floor(xmin / self.cell)),
                            int(math.floor(xmax / self.cell)) + 1):
                for cy in range(int(math.floor(ymin / self.cell)),
                                int(math.floor(ymax / self.cell)) + 1):
                    # Conservative: keep the edge if its bbox (inflated by
                    # reach) touches the cell; distance check would be
                    # tighter but the superset is already small.
                    self._buckets.setdefault((cx, cy), []).append(index)

    def _cell_of(self, point: Sequence[float]) -> Tuple[int, int]:
        return (int(math.floor(point[0] / self.cell)),
                int(math.floor(point[1] / self.cell)))

    def distance(self, point: Sequence[float]) -> float:
        candidates = self._buckets.get(self._cell_of(point))
        if not candidates:
            return self._fallback.distance(point)
        best = min(point_segment_distance(point, self._starts[i], self._ends[i])
                   for i in candidates)
        if best <= self.reach:
            return best
        # The candidate list only guarantees correctness within reach.
        return self._fallback.distance(point)

    def _grouped(self, pts: np.ndarray):
        """Yield ``(rows, candidate_edge_ids | None)`` per occupied cell.

        Points sharing a grid cell share a candidate list, so each
        group is resolved with one vectorized all-candidates pass.
        """
        cx = np.floor(pts[:, 0] / self.cell).astype(np.int64)
        cy = np.floor(pts[:, 1] / self.cell).astype(np.int64)
        keys = np.stack([cx, cy], axis=1)
        uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        bounds = np.searchsorted(inverse[order], np.arange(len(uniq) + 1))
        for g in range(len(uniq)):
            rows = order[bounds[g]:bounds[g + 1]]
            candidates = self._buckets.get((int(uniq[g, 0]),
                                            int(uniq[g, 1])))
            yield rows, candidates

    def distances(self, points: np.ndarray) -> np.ndarray:
        pts = as_points(points)
        out = np.empty(len(pts))
        if not len(pts):
            return out
        fallback_rows: List[np.ndarray] = []
        for rows, candidates in self._grouped(pts):
            if candidates is None:
                fallback_rows.append(rows)
                continue
            idx = np.asarray(candidates, dtype=np.int64)
            best = points_segments_distance(pts[rows], self._starts[idx],
                                            self._ends[idx])
            out[rows] = best
            # Candidate lists only guarantee correctness within reach.
            over = rows[best > self.reach]
            if len(over):
                fallback_rows.append(over)
        if fallback_rows:
            rows = np.concatenate(fallback_rows)
            out[rows] = self._fallback.distances(pts[rows])
        return out

    def within(self, points: np.ndarray, radius: float) -> np.ndarray:
        """Boolean mask: is each point within ``radius`` of the boundary?

        ``radius`` must not exceed ``reach`` (grid guarantee); callers
        needing larger radii should rebuild with a bigger reach.
        """
        if radius > self.reach + 1e-12:
            raise ValueError("radius exceeds the grid's guaranteed reach")
        pts = as_points(points)
        mask = np.zeros(len(pts), dtype=bool)
        for rows, candidates in self._grouped(pts):
            if candidates is None:
                continue
            idx = np.asarray(candidates, dtype=np.int64)
            best = points_segments_distance(pts[rows], self._starts[idx],
                                            self._ends[idx])
            mask[rows] = best <= radius
        return mask
