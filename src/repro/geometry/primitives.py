"""Low-level geometric primitives.

All heavy-weight routines operate on numpy arrays of shape ``(n, 2)``
(one row per point).  Scalars are plain Python floats; nothing in this
module allocates per-point Python objects, which keeps the shape-base
pipelines (hundreds of thousands of vertices) tractable in pure Python.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

import numpy as np

Point = Tuple[float, float]

#: Tolerance used by the exact-ish predicates throughout the package.
EPSILON = 1e-9


def as_points(points: Iterable[Sequence[float]]) -> np.ndarray:
    """Return ``points`` as a float64 array of shape ``(n, 2)``.

    Accepts any iterable of pairs (lists, tuples, arrays).  Raises
    ``ValueError`` when the input cannot be interpreted as 2-D points.
    Already-conforming float64 ``(n, 2)`` arrays pass through without a
    copy — this sits under every distance call in the matcher hot path.
    """
    if isinstance(points, np.ndarray):
        if points.ndim == 2 and points.shape[1] == 2 and \
                points.dtype == np.float64:
            return points
        array = np.asarray(points, dtype=np.float64)
    else:
        array = np.asarray(list(points), dtype=np.float64)
    if array.ndim == 1 and array.size == 2:
        array = array.reshape(1, 2)
    if array.ndim != 2 or array.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got array of shape {array.shape}")
    return array


def distance(p: Sequence[float], q: Sequence[float]) -> float:
    """Euclidean distance between two points."""
    return math.hypot(p[0] - q[0], p[1] - q[1])


def squared_distance(p: Sequence[float], q: Sequence[float]) -> float:
    """Squared Euclidean distance between two points."""
    dx, dy = p[0] - q[0], p[1] - q[1]
    return dx * dx + dy * dy


def cross(o: Sequence[float], a: Sequence[float], b: Sequence[float]) -> float:
    """Z-component of the cross product of vectors ``o->a`` and ``o->b``.

    Positive when ``o, a, b`` make a left (counter-clockwise) turn.
    """
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def dot(o: Sequence[float], a: Sequence[float], b: Sequence[float]) -> float:
    """Dot product of vectors ``o->a`` and ``o->b``."""
    return (a[0] - o[0]) * (b[0] - o[0]) + (a[1] - o[1]) * (b[1] - o[1])


def interior_angle(prev: Sequence[float], vertex: Sequence[float],
                   nxt: Sequence[float]) -> float:
    """Positive angle in ``[0, pi]`` formed at ``vertex`` by its neighbours.

    This is the *acute/obtuse magnitude* of the turn the paper's
    "significant vertices" statistic uses (Section 5.2): degenerate
    straight-through vertices yield ``pi`` and spikes yield values
    near ``0``.
    """
    ux, uy = prev[0] - vertex[0], prev[1] - vertex[1]
    vx, vy = nxt[0] - vertex[0], nxt[1] - vertex[1]
    nu = math.hypot(ux, uy)
    nv = math.hypot(vx, vy)
    if nu < EPSILON or nv < EPSILON:
        return 0.0
    cosine = (ux * vx + uy * vy) / (nu * nv)
    cosine = max(-1.0, min(1.0, cosine))
    return math.acos(cosine)


def signed_angle(u: Sequence[float], v: Sequence[float]) -> float:
    """Signed angle in ``(-pi, pi]`` rotating vector ``u`` onto vector ``v``.

    Used by the topological predicates of Section 5.1, which compare the
    *signed* angle between the inverse-normalized diameters of two shapes.
    """
    angle = math.atan2(v[1], v[0]) - math.atan2(u[1], u[0])
    if angle <= -math.pi:
        angle += 2.0 * math.pi
    elif angle > math.pi:
        angle -= 2.0 * math.pi
    return angle


def point_segment_distance(p: Sequence[float], a: Sequence[float],
                           b: Sequence[float]) -> float:
    """Distance from point ``p`` to the closed segment ``ab``."""
    ax, ay = a[0], a[1]
    bx, by = b[0], b[1]
    px, py = p[0], p[1]
    dx, dy = bx - ax, by - ay
    length_sq = dx * dx + dy * dy
    if length_sq < EPSILON * EPSILON:
        return math.hypot(px - ax, py - ay)
    t = ((px - ax) * dx + (py - ay) * dy) / length_sq
    t = max(0.0, min(1.0, t))
    return math.hypot(px - (ax + t * dx), py - (ay + t * dy))


def points_segment_distance(points: np.ndarray, a: Sequence[float],
                            b: Sequence[float]) -> np.ndarray:
    """Vectorized distance from each row of ``points`` to segment ``ab``."""
    points = np.asarray(points, dtype=np.float64)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    d = b - a
    length_sq = float(d @ d)
    if length_sq < EPSILON * EPSILON:
        return np.hypot(points[:, 0] - a[0], points[:, 1] - a[1])
    t = ((points - a) @ d) / length_sq
    np.clip(t, 0.0, 1.0, out=t)
    proj = a + t[:, None] * d
    delta = points - proj
    return np.hypot(delta[:, 0], delta[:, 1])


def points_segments_distance(points: np.ndarray, starts: np.ndarray,
                             ends: np.ndarray) -> np.ndarray:
    """Min distance from each point to a set of segments.

    ``starts`` and ``ends`` are ``(m, 2)`` arrays defining ``m`` segments.
    Returns an ``(n,)`` array with, for each point, the minimum distance
    over all segments.  This is the workhorse behind the continuous
    ``h_avg`` measure and the epsilon-envelope membership test; it is
    O(n * m) but fully vectorized.
    """
    points = np.asarray(points, dtype=np.float64)
    starts = np.asarray(starts, dtype=np.float64)
    ends = np.asarray(ends, dtype=np.float64)
    if len(points) == 0:
        return np.zeros(0)
    if len(starts) == 0:
        raise ValueError("need at least one segment")
    d = ends - starts                                    # (m, 2)
    length_sq = np.einsum("ij,ij->i", d, d)              # (m,)
    degenerate = length_sq < EPSILON * EPSILON
    safe_length_sq = np.where(degenerate, 1.0, length_sq)
    # t[i, j]: projection parameter of point i on segment j
    diff = points[:, None, :] - starts[None, :, :]        # (n, m, 2)
    t = np.einsum("nmj,mj->nm", diff, d) / safe_length_sq
    t[:, degenerate] = 0.0
    np.clip(t, 0.0, 1.0, out=t)
    proj = starts[None, :, :] + t[..., None] * d[None, :, :]
    delta = points[:, None, :] - proj
    dist = np.hypot(delta[..., 0], delta[..., 1])
    return dist.min(axis=1)


def segment_length(a: Sequence[float], b: Sequence[float]) -> float:
    """Length of segment ``ab``."""
    return distance(a, b)


def polygon_signed_area(vertices: np.ndarray) -> float:
    """Signed area of a closed polygon (positive when counter-clockwise)."""
    v = as_points(vertices)
    x, y = v[:, 0], v[:, 1]
    return 0.5 * float(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))


def bounding_box(points: np.ndarray) -> Tuple[float, float, float, float]:
    """Axis-aligned bounding box ``(xmin, ymin, xmax, ymax)``."""
    p = as_points(points)
    return (float(p[:, 0].min()), float(p[:, 1].min()),
            float(p[:, 0].max()), float(p[:, 1].max()))
