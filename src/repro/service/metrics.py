"""Counters and latency histograms for the retrieval service.

A deliberately small, dependency-free metrics registry: named
monotonic counters, windowed histograms with percentile readout, and
gauge callbacks for values owned elsewhere (queue depth, cache size).
Everything is exposed through :meth:`MetricsRegistry.as_dict` — a plain
dict that the CLI prints and the benchmarks serialize as JSON.

The registry is thread-safe: the worker pool records latencies from
many threads concurrently.
"""

from __future__ import annotations

import threading
from bisect import insort
from contextlib import contextmanager
from time import perf_counter
from typing import Callable, Dict, List, Optional

from ..storage.buffer import BufferPool


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Histogram:
    """Latency/size distribution with percentile readout.

    Observations are kept in sorted order (capped at ``max_samples``
    by uniform decimation) so percentiles are exact for small services
    and approximate under sustained load.  ``reset_window`` clears the
    observations while keeping the lifetime count — the per-window
    reporting pattern the service uses.
    """

    def __init__(self, name: str, max_samples: int = 8192):
        self.name = name
        self.max_samples = int(max_samples)
        self._sorted: List[float] = []
        self._total_count = 0
        self._stride = 1          # keep every _stride-th observation
        self._phase = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._total_count += 1
            self._phase += 1
            if self._phase < self._stride:
                return
            self._phase = 0
            insort(self._sorted, float(value))
            if len(self._sorted) > self.max_samples:
                # Halve both the retained samples and the future
                # sampling rate.  Halving only the window would skew it
                # toward recent observations (old samples decimated
                # repeatedly, new ones arriving at full rate); halving
                # the intake too keeps density uniform over the stream,
                # so percentiles stay representative.
                self._sorted = self._sorted[::2]
                self._stride *= 2

    def percentile(self, q: float) -> float:
        """The q-th percentile (``q`` in [0, 100]) of the window."""
        with self._lock:
            if not self._sorted:
                return 0.0
            position = (len(self._sorted) - 1) * (q / 100.0)
            lo = int(position)
            hi = min(lo + 1, len(self._sorted) - 1)
            frac = position - lo
            return self._sorted[lo] * (1 - frac) + self._sorted[hi] * frac

    @property
    def count(self) -> int:
        return self._total_count

    @property
    def window_count(self) -> int:
        return len(self._sorted)

    @property
    def mean(self) -> float:
        with self._lock:
            if not self._sorted:
                return 0.0
            return sum(self._sorted) / len(self._sorted)

    def reset_window(self) -> None:
        with self._lock:
            self._sorted = []
            self._stride = 1
            self._phase = 0

    @property
    def window_sum(self) -> float:
        with self._lock:
            return sum(self._sorted)

    def summary(self) -> Dict[str, float]:
        """Latency quantiles ready for ``/stats`` — no client-side math.

        ``p50``/``p95``/``p99`` are the SLO trio; ``sum`` and
        ``window_count`` let a scraper compute rates across windows.
        """
        return {
            "count": self.count,
            "window_count": self.window_count,
            "sum": self.window_sum,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "max": self.percentile(100.0),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, count={self.count})"


class MetricsRegistry:
    """All of a service's instrumentation under one roof.

    ``counter(name)`` / ``histogram(name)`` create on first use and
    return the same object afterwards, so call sites never need to
    pre-register.  Buffer pools (the storage tier's own instrument) can
    be attached; their hit ratios appear in the snapshot and are rolled
    by :meth:`reset_window` via :meth:`BufferPool.reset_stats`.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}
        self._buffer_pools: Dict[str, BufferPool] = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def histogram(self, name: str, max_samples: int = 8192) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, max_samples)
            return self._histograms[name]

    def gauge(self, name: str, read: Callable[[], float]) -> None:
        """Register a callback sampled at snapshot time."""
        with self._lock:
            self._gauges[name] = read

    @contextmanager
    def timer(self, name: str):
        """Context manager observing the block's wall time (seconds)
        into ``histogram(name)``."""
        histogram = self.histogram(name)
        started = perf_counter()
        try:
            yield
        finally:
            histogram.observe(perf_counter() - started)

    def attach_buffer_pool(self, name: str, pool: BufferPool) -> None:
        """Expose a storage buffer pool's hit ratio in snapshots."""
        with self._lock:
            self._buffer_pools[name] = pool

    # -- readout --------------------------------------------------------
    def as_dict(self) -> dict:
        """One plain-dict snapshot of everything (CLI/benchmark output)."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
            gauges = dict(self._gauges)
            pools = dict(self._buffer_pools)
        out: dict = {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "histograms": {n: h.summary()
                           for n, h in sorted(histograms.items())},
        }
        if gauges:
            out["gauges"] = {n: float(read())
                             for n, read in sorted(gauges.items())}
        if pools:
            out["buffer_pools"] = {
                n: {"hits": p.stats.hits, "misses": p.stats.misses,
                    "hit_ratio": p.stats.hit_ratio}
                for n, p in sorted(pools.items())}
        return out

    def ratio(self, numerator: str, denominator: str) -> float:
        """``counter[numerator] / counter[denominator]`` (0 when empty)."""
        denom = self.counter(denominator).value
        if denom == 0:
            return 0.0
        return self.counter(numerator).value / denom

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """Values of every counter named ``prefix<suffix>``, by suffix.

        The registry creates counters on first use, so a family like
        the service's per-tier counters (``queries.tier_exact``,
        ``queries.tier_ann``, ...) only contains the members that have
        actually fired; this collects whichever exist without the
        caller having to enumerate them.
        """
        with self._lock:
            counters = dict(self._counters)
        return {name[len(prefix):]: counter.value
                for name, counter in sorted(counters.items())
                if name.startswith(prefix)}

    def reset_window(self) -> dict:
        """Close the current reporting window; returns its snapshot.

        Histograms drop their observations (lifetime counts survive)
        and attached buffer pools roll their hit/miss stats via
        :meth:`BufferPool.reset_stats`; counters are lifetime
        monotonic and are left untouched.
        """
        snapshot = self.as_dict()
        with self._lock:
            histograms = list(self._histograms.values())
            pools = list(self._buffer_pools.values())
        for histogram in histograms:
            histogram.reset_window()
        for pool in pools:
            pool.reset_stats()
        return snapshot
