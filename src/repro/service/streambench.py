"""Streaming-ingest scenario: live writes under closed-loop queries.

The PR 10 headline exercise.  One service per execution mode runs
three interleaved phases:

* **idle baseline** — closed-loop clients only; the reference latency
  distribution;
* **stream segments** — an ingest thread pushes shape batches through
  the copy-on-write write path (:meth:`RetrievalService.ingest`:
  backpressure, background folds, delta publication to process
  workers) while the same closed-loop clients keep querying.  Only
  latencies measured *inside* a segment count toward the interference
  numbers;
* **checkpoints** — between segments both sides pause: folds drain
  (:meth:`RetrievalService.quiesce_ingest`), dead process workers are
  revived and resynced, and every query sketch is answered by the
  live (core + delta) service *and* by a service rebuilt from scratch
  over the same corpus.  The two answer sets must match bit-for-bit —
  `(shape_id, image_id, distance, approximate)` per match;
* **final idle baseline** — after the last checkpoint the clients run
  once more against the quiesced, fully-grown corpus.  This is the
  denominator of ``p99_interference``: the stream-phase p99 is
  dominated by late-stream queries that already serve the grown
  corpus, so dividing by the *pre-stream* baseline would bill plain
  corpus growth as write-path interference.

With ``chaos`` set, process mode SIGKILLs one worker mid-stream; the
scenario then additionally proves service stayed degraded-not-failed
and that ``revive_workers`` + a forced sync restore exact answers by
the next checkpoint.

Shared by ``repro serve-bench --stream`` (the CLI wrapper formats and
records the rows) and ``benchmarks/bench_stream.py`` (which asserts
the PR acceptance gates on the returned rows).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.shapebase import ShapeBase
from ..geometry.polyline import Shape
from ..imaging.synthesis import generate_workload, make_query_set
from .service import RetrievalService, ServiceConfig

__all__ = ["run_stream_scenario", "pctl", "STREAM_TRAJECTORY_HEADER"]

#: Header seeded into ``BENCH_stream.json`` on first write (the
#: ``record_trajectory`` protocol shared with the other BENCH files).
STREAM_TRAJECTORY_HEADER = {
    "benchmark": "stream_ingest",
    "metric": ("query p99 under live ingest vs quiesced same-corpus "
               "idle p99; delta vs full publication bytes per round"),
    "protocol": (
        "repro.service.streambench.run_stream_scenario: closed-loop "
        "clients measure an idle baseline, then keep querying while "
        "an ingest thread streams shape batches through the "
        "copy-on-write write path (background folds, backpressure, "
        "delta publication to process workers).  Checkpoints quiesce "
        "both sides and assert the live answers bit-for-bit equal to "
        "a service rebuilt from scratch over the same corpus, in "
        "thread and process modes.  p99_interference divides the "
        "stream-phase p99 by a final idle baseline re-measured on "
        "the fully-grown corpus, so plain corpus growth is not "
        "billed as write-path interference.  Points are appended "
        "when REPRO_BENCH_LABEL is set (the CI stream-smoke job does "
        "this on every run)."),
}


def pctl(sorted_values: Sequence[float], q: float) -> float:
    """Interpolated percentile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    position = (len(sorted_values) - 1) * (q / 100.0)
    lo = int(position)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = position - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def _collect_corpus(shards):
    """(shapes, image_ids, shape_ids) across a quiesced shard set, in
    shape-id order — the input for a rebuilt reference base."""
    shapes, image_ids, shape_ids = [], [], []
    for shard in shards:
        for sid, shape in shard.base.shapes.items():
            shapes.append(shape)
            image_ids.append(shard.base.shape_image[sid])
            shape_ids.append(int(sid))
    order = sorted(range(len(shape_ids)), key=lambda i: shape_ids[i])
    return ([shapes[i] for i in order], [image_ids[i] for i in order],
            [shape_ids[i] for i in order])


def _checkpoint_mismatches(service: RetrievalService,
                           sketches: Sequence[Shape], k: int,
                           num_shards: int, ann, ann_mode: str) -> int:
    """Bit-for-bit compare the live service against a service rebuilt
    from scratch over the same corpus; returns the number of diverging
    sketches.  The caller has paused ingest and quiesced folds, so the
    live corpus is still for the duration."""
    shapes, image_ids, shape_ids = _collect_corpus(service.shards)
    reference_base = ShapeBase(alpha=0.1)
    reference_base.add_shapes(shapes, image_ids=image_ids,
                              shape_ids=shape_ids)
    config = ServiceConfig(num_shards=num_shards, workers=2,
                           cache_capacity=0, ann=ann, ann_mode=ann_mode)
    mismatches = 0
    with RetrievalService.from_base(reference_base, config) as reference:
        for sketch in sketches:
            live = service.retrieve(sketch, k=k)
            want = reference.retrieve(sketch, k=k)
            live_key = [(m.shape_id, m.image_id, m.distance,
                         m.approximate) for m in live.matches]
            want_key = [(m.shape_id, m.image_id, m.distance,
                         m.approximate) for m in want.matches]
            if live.status != "ok" or live_key != want_key:
                mismatches += 1
    return mismatches


def run_stream_scenario(
        *, images: int, queries: int, distinct: int, k: int,
        shards: int, modes: Sequence[Tuple[str, int]],
        batches: int, batch_size: int, checkpoints: int,
        max_pending: Optional[int] = None, ann=None,
        ann_mode: str = "always", ingest_max_delta: int = 4096,
        ingest_pause: float = 0.0,
        publish_compact_every: Optional[int] = None,
        chaos: Optional[int] = None, seed: int = 0,
        ) -> Tuple[List[dict], List[str], List[str]]:
    """Run the streaming scenario; returns ``(rows, escaped, failures)``.

    ``modes`` is a sequence of ``(execution, workers)`` pairs — e.g.
    ``[("thread", 2), ("process", 4)]``.  One row per mode.
    ``ingest_pause`` spaces batches by that many seconds, modelling a
    stream's arrival cadence — with 0 the ingest thread saturates a
    core, which on small hosts measures CPU starvation rather than
    write-path interference.  ``publish_compact_every`` overrides the
    process tier's compaction cadence (``None`` keeps the service
    default): parent-side queries never run in process mode, so the
    parent's fold scheduler stays idle and worker brute tails grow
    with every delta round until a compaction republish resets them —
    at bench scale the default cadence is too lax to bound the tail
    cost.  The run *observed* a failure when
    ``failures`` is non-empty (checkpoint divergence, chaos kill that
    never landed) and *crashed* when ``escaped`` is non-empty (an
    exception leaked out of the service).
    """
    rng = np.random.default_rng(seed)
    workload = generate_workload(images, rng, shapes_per_image=4.0,
                                 noise=0.01)
    base = ShapeBase(alpha=0.1)
    for image in workload.images:
        for shape in image.shapes:
            base.add_shape(shape, image_id=image.image_id)
    sketches = [query for query, _ in
                make_query_set(workload, distinct,
                               np.random.default_rng(seed + 1),
                               noise=0.01)]

    batches = max(1, batches)
    batch_size = max(1, batch_size)
    checkpoints = max(1, min(checkpoints, batches))
    checkpoint_every = max(1, batches // checkpoints)
    needed_images = (batches * batch_size + 3) // 4 + 1
    stream_workload = generate_workload(
        needed_images, np.random.default_rng(seed + 7),
        shapes_per_image=4.0, noise=0.01)
    stream_shapes = [shape for image in stream_workload.images
                     for shape in image.shapes]

    rows: List[dict] = []
    escaped: List[str] = []
    failures: List[str] = []
    for execution, workers in modes:
        config_kwargs = {}
        if publish_compact_every is not None:
            config_kwargs["publish_compact_every"] = publish_compact_every
        config = ServiceConfig(
            num_shards=shards, workers=workers,
            cache_capacity=0,       # every query does real work
            max_pending=max_pending,
            ann=ann, ann_mode=ann_mode,
            execution=execution, processes=workers,
            streaming=True, ingest_max_delta=ingest_max_delta,
            **config_kwargs)
        service = RetrievalService.from_base(base, config)
        mode = f"{execution}-{workers}"
        kill_mid_stream = chaos is not None and execution == "process"
        victim = (chaos % workers) if kill_mid_stream else None

        stop = threading.Event()
        lock = threading.Lock()
        latencies: List[float] = []
        degraded = {"n": 0}

        def client() -> None:
            index = 0
            while not stop.is_set():
                sketch = sketches[index % len(sketches)]
                index += 1
                try:
                    result = service.retrieve(sketch, k=k)
                except Exception as exc:
                    with lock:
                        escaped.append(f"{mode}: "
                                       f"{type(exc).__name__}: {exc}")
                    return
                with lock:
                    if result.ok or result.failed_shards:
                        latencies.append(result.latency)
                    if result.failed_shards:
                        degraded["n"] += 1

        def run_clients(queries_target: Optional[int] = None,
                        body: Optional[Callable[[], None]] = None
                        ) -> List[float]:
            """Drive closed-loop clients around ``body`` (or until
            ``queries_target`` answers land); returns the phase's
            sorted latencies."""
            del latencies[:]
            stop.clear()
            clients = [threading.Thread(target=client,
                                        name=f"stream-client-{i}")
                       for i in range(workers)]
            for thread in clients:
                thread.start()
            try:
                if body is not None:
                    body()
                else:
                    while True:
                        with lock:
                            if len(latencies) >= (queries_target or 0):
                                break
                        time.sleep(0.005)
            finally:
                stop.set()
                for thread in clients:
                    thread.join()
            with lock:
                return sorted(latencies)

        # -- phase 1: idle baseline ------------------------------------
        idle = run_clients(queries_target=queries)
        idle_p50 = pctl(idle, 50.0)
        idle_p99 = pctl(idle, 99.0)

        # -- phase 2: streaming ingest under query load ----------------
        ingested = {"shapes": 0, "batches": 0}
        checkpoint_results: List[int] = []
        kill_state = {"pid": None}
        next_shape = {"i": 0}

        def checkpoint() -> None:
            if kill_state["pid"] is not None and \
                    service.procpool is not None:
                # The chaos kill degraded this worker's slice; the
                # checkpoint contract is equality *after recovery*.
                service.procpool.revive_workers()
                service.procpool.sync(service.shards, force=True)
            service.quiesce_ingest()
            checkpoint_results.append(_checkpoint_mismatches(
                service, sketches, k, shards, ann, ann_mode))

        def ingest_segment(first: int, last: int) -> None:
            """Ingest batches [first, last) while clients run."""
            for batch_index in range(first, last):
                take = [stream_shapes[(next_shape["i"] + j)
                                      % len(stream_shapes)].translated(
                            0.001 * ingested["batches"], 0.0)
                        for j in range(batch_size)]
                next_shape["i"] += batch_size
                try:
                    service.ingest(take, image_id=10_000 + batch_index)
                except Exception as exc:
                    with lock:
                        escaped.append(f"{mode} ingest: "
                                       f"{type(exc).__name__}: {exc}")
                    return
                ingested["shapes"] += len(take)
                ingested["batches"] += 1
                if kill_mid_stream and kill_state["pid"] is None \
                        and batch_index + 1 >= batches // 2:
                    kill_state["pid"] = \
                        service.procpool.kill_worker(victim)
                if ingest_pause:
                    time.sleep(ingest_pause)

        # Checkpoints punctuate the stream: clients and ingest run
        # together inside each segment (those latencies are the
        # interference measurement), then both pause while the
        # quiesced live base is diffed against a rebuilt static one.
        stream: List[float] = []
        stream_wall = 0.0
        first = 0
        while first < batches:
            last = min(first + checkpoint_every, batches)
            segment_start = time.perf_counter()
            segment = run_clients(
                body=lambda first=first, last=last:
                     ingest_segment(first, last))
            stream_wall += time.perf_counter() - segment_start
            stream.extend(segment)
            checkpoint()
            first = last
        stream.sort()
        stream_p50 = pctl(stream, 50.0)
        stream_p99 = pctl(stream, 99.0)

        # -- phase 3: idle baseline on the grown corpus ----------------
        # The last checkpoint left the service quiesced, so this
        # measures the same corpus the late-stream (p99-dominating)
        # queries saw, minus the concurrent ingest.
        final_idle = run_clients(queries_target=queries)
        final_idle_p50 = pctl(final_idle, 50.0)
        final_idle_p99 = pctl(final_idle, 99.0)

        snap = service.snapshot()
        ingest_stats = snap["ingest"]
        row = {
            "mode": mode,
            "execution": execution,
            "workers": workers,
            "shards": shards,
            "corpus_shapes": service.shards.num_shapes,
            "idle_queries": len(idle),
            "stream_queries": len(stream),
            "idle_p50_ms": round(idle_p50 * 1e3, 3),
            "idle_p99_ms": round(idle_p99 * 1e3, 3),
            "stream_p50_ms": round(stream_p50 * 1e3, 3),
            "stream_p99_ms": round(stream_p99 * 1e3, 3),
            "final_idle_p50_ms": round(final_idle_p50 * 1e3, 3),
            "final_idle_p99_ms": round(final_idle_p99 * 1e3, 3),
            "p99_interference": (round(stream_p99 / final_idle_p99, 3)
                                 if final_idle_p99 else 0.0),
            "ingest_shapes": ingested["shapes"],
            "ingest_wall_s": round(stream_wall, 3),
            "ingest_rate_sps": (round(ingested["shapes"] / stream_wall, 1)
                                if stream_wall else 0.0),
            "backpressure_waits": ingest_stats["backpressure_waits"],
            "folds": ingest_stats["folds"],
            "pending_delta": ingest_stats["pending_delta"],
            "checkpoints": len(checkpoint_results),
            "checkpoint_mismatches": sum(checkpoint_results),
        }
        if ingest_stats.get("fold_ms"):
            row["fold_ms_p50"] = round(ingest_stats["fold_ms"]["p50"], 3)
        if execution == "process":
            sync = service.procpool.info()["sync"]
            row["sync"] = sync
            if sync["delta_rounds"]:
                row["delta_bytes_per_round"] = round(
                    sync["delta_bytes"] / sync["delta_rounds"])
            if sync["full_rounds"]:
                row["full_bytes_per_round"] = round(
                    sync["full_bytes"] / sync["full_rounds"])
        if kill_mid_stream:
            row["killed_worker"] = victim
            row["killed_pid"] = kill_state["pid"]
            row["degraded"] = degraded["n"]
            row["alive_workers"] = service.procpool.alive_workers()
            if kill_state["pid"] is None:
                failures.append(f"{mode}: chaos kill never landed")
        rows.append(row)
        if sum(checkpoint_results):
            failures.append(
                f"{mode}: {sum(checkpoint_results)} checkpoint "
                f"divergences from the rebuilt static base")
        service.close()
    return rows, escaped, failures
