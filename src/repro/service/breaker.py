"""Per-shard circuit breakers for the retrieval service.

A :class:`CircuitBreaker` guards one shard.  While the shard behaves,
the breaker is *closed* and calls pass through.  Failures land in a
sliding outcome window; once the failure rate over that window crosses
the threshold (with a minimum volume, so one early error cannot trip
an idle shard), the breaker *opens*: calls are refused instantly, so a
persistently broken shard costs a dictionary lookup instead of a full
retry-with-backoff cycle on every query.  After a cooldown on the
monotonic clock the breaker goes *half-open* and admits a bounded
number of probe calls — one success closes it again, one failure
re-opens it for another cooldown.

The clock is injectable so the whole state machine is unit-testable
without sleeping; all transitions happen under a lock because shard
calls run on the service's worker pool.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

#: Breaker states (``CircuitBreaker.state`` values).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric encoding for gauges (higher = less healthy).
STATE_CODES = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs of one :class:`CircuitBreaker`.

    ``window`` outcomes are retained; the breaker trips when at least
    ``min_volume`` of them exist and the failure fraction reaches
    ``failure_threshold``.  ``cooldown`` seconds after tripping, up to
    ``half_open_probes`` concurrent probe calls are admitted.
    """

    window: int = 16
    failure_threshold: float = 0.5
    min_volume: int = 4
    cooldown: float = 5.0
    half_open_probes: int = 1

    def __post_init__(self):
        if self.window < 1:
            raise ValueError("window must be at least 1")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if self.min_volume < 1:
            raise ValueError("min_volume must be at least 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be at least 1")


class CircuitBreaker:
    """closed → open → half-open state machine over a failure window.

    State transitions are driven by :meth:`allow` (which also performs
    the open → half-open promotion once the cooldown elapses) and by
    :meth:`record_success` / :meth:`record_failure`.  Outcomes reported
    while the breaker is open (stragglers from calls admitted earlier)
    are ignored — they carry no information the trip did not already
    act on.
    """

    def __init__(self, config: Optional[BreakerConfig] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=self.config.window)
        self._opened_at: Optional[float] = None
        self._probes_inflight = 0
        self._opened_count = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state; open → half-open happens inside :meth:`allow`."""
        with self._lock:
            return self._state

    @property
    def opened_count(self) -> int:
        """How many times the breaker has tripped over its lifetime."""
        return self._opened_count

    @property
    def failure_rate(self) -> float:
        with self._lock:
            if not self._outcomes:
                return 0.0
            failures = sum(1 for ok in self._outcomes if not ok)
            return failures / len(self._outcomes)

    def state_code(self) -> float:
        """Numeric state for metrics gauges (0 closed … 2 open)."""
        return STATE_CODES[self.state]

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether a call may proceed right now (may promote to half-open)."""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                elapsed = self._clock() - self._opened_at
                if elapsed < self.config.cooldown:
                    return False
                self._state = HALF_OPEN
                self._probes_inflight = 0
            # Half-open: admit a bounded number of probes.
            if self._probes_inflight < self.config.half_open_probes:
                self._probes_inflight += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == OPEN:
                return                      # straggler; trip already acted
            if self._state == HALF_OPEN:
                self._close_locked()
                return
            self._outcomes.append(True)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == OPEN:
                return                      # straggler
            if self._state == HALF_OPEN:
                self._open_locked()
                return
            self._outcomes.append(False)
            if len(self._outcomes) < self.config.min_volume:
                return
            failures = sum(1 for ok in self._outcomes if not ok)
            if failures / len(self._outcomes) >= \
                    self.config.failure_threshold:
                self._open_locked()

    # ------------------------------------------------------------------
    def _open_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._opened_count += 1
        self._outcomes.clear()
        self._probes_inflight = 0

    def _close_locked(self) -> None:
        self._state = CLOSED
        self._outcomes.clear()
        self._probes_inflight = 0

    def snapshot(self) -> dict:
        """Plain-dict state for ``RetrievalService.snapshot()``."""
        with self._lock:
            failures = sum(1 for ok in self._outcomes if not ok)
            window = len(self._outcomes)
            return {
                "state": self._state,
                "window": window,
                "failure_rate": failures / window if window else 0.0,
                "opened_count": self._opened_count,
            }

    def __repr__(self) -> str:
        return (f"CircuitBreaker(state={self.state}, "
                f"opened={self._opened_count})")
