"""Query-result caching keyed by a canonical sketch signature.

Two sketches that differ only by a similarity transform (rotation,
scale, translation) are the *same query* to GeoSIR — retrieval is
invariant by construction.  The cache key therefore reuses the paper's
own normalization (:func:`repro.geometry.transform
.normalize_about_diameter`): the sketch is mapped so its diameter
endpoints land on (0,0)/(1,0), the resulting vertices are quantized to
a small grid (absorbing the float noise the transform introduces), and
the quantized bytes — plus the structural bits (closed flag, vertex
count) and the query parameters (kind, k / threshold) — are hashed.

Entries carry the shape-base version they were computed against;
:meth:`QueryResultCache.get` refuses stale entries, and ingest bumps
the version, so invalidation is automatic and O(1).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple

import numpy as np

from ..geometry.polyline import Shape
from ..geometry.transform import normalize_about_diameter

#: Quantization grid for normalized vertices.  Normalized coordinates
#: live in the lune (|x|, |y| <= 1.5 in practice); 1e-6 is far below any
#: meaningful geometric difference yet far above the ~1e-12 float noise
#: of the normalization transform.
SIGNATURE_GRID = 1e-6


def sketch_signature(sketch: Shape, *, kind: str = "topk",
                     parameter: Any = 1,
                     grid: float = SIGNATURE_GRID) -> str:
    """A rotation/scale/translation-invariant digest of one query.

    ``kind``/``parameter`` distinguish top-k from threshold queries
    (and their k / threshold values) so they never alias.
    """
    normalized = normalize_about_diameter(sketch).shape
    quantized = np.rint(normalized.vertices / grid).astype(np.int64)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(b"closed" if normalized.closed else b"open")
    digest.update(len(quantized).to_bytes(4, "little"))
    digest.update(f"{kind}:{parameter}".encode())
    digest.update(np.ascontiguousarray(quantized).tobytes())
    return digest.hexdigest()


class QueryResultCache:
    """Thread-safe LRU of query results, versioned for invalidation.

    ``capacity`` bounds the number of cached results; the base version
    recorded with each entry makes results computed before an ingest
    invisible afterwards (they age out of the LRU naturally).
    """

    def __init__(self, capacity: int = 128):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, Tuple[int, Any]]" = \
            OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def get(self, key: Hashable, version: int) -> Optional[Any]:
        """The cached value, or ``None`` on miss/version mismatch."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == version:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry[1]
            if entry is not None:
                # Stale: computed against an older base.
                del self._entries[key]
            self.misses += 1
            return None

    def put(self, key: Hashable, version: int, value: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._entries[key] = (version, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate(self) -> None:
        """Drop everything (explicit invalidation on ingest)."""
        with self._lock:
            self.invalidations += 1
            self._entries.clear()

    def clear(self) -> None:
        """Alias for :meth:`invalidate` (dict-like spelling)."""
        self.invalidate()

    @property
    def hit_ratio(self) -> float:
        accesses = self.hits + self.misses
        if accesses == 0:
            return 0.0
        return self.hits / accesses

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (f"QueryResultCache(capacity={self.capacity}, "
                f"size={len(self)}, hits={self.hits}, "
                f"misses={self.misses})")
