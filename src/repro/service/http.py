"""HTTP/JSON network tier: front door, replica fleet, balancer.

Everything robust the service learned in-process — deadlines, the
three-rung degradation ladder, load shedding, breakers, zero-copy
snapshots — stops mattering for "millions of users" until it survives
the wire.  This module is that wire, stdlib only:

* :class:`HttpRetrievalServer` — a threading ``http.server`` front on
  one :class:`~repro.service.service.RetrievalService`:
  ``POST /query`` and ``POST /query_batch`` (JSON sketches in, ranked
  matches + the answering tier out), ``GET /stats`` (the service
  snapshot, quantiles included), ``GET /healthz`` (liveness: the
  process answers) and ``GET /readyz`` (readiness: snapshot attached,
  shards warm — the balancer's routing signal).

* **Deadline propagation.**  The ``X-Deadline-Ms`` request header
  carries the client's *remaining* budget in milliseconds (relative,
  so replica clock skew is irrelevant).  The handler rebuilds it into
  the service's cooperative :class:`~repro.service.deadline.Deadline`,
  the exact→ann→hash ladder spends it, and the response reports the
  ``tier`` that answered plus the ``degraded`` flag.  A request whose
  budget is already spent is shed at the door — ``503`` with
  ``Retry-After`` — because queueing doomed work only steals cycles
  from queries that can still make it.

* **Load shedding.**  Admission-queue saturation
  (``ServiceResult.status == "overloaded"``) also answers ``503`` +
  ``Retry-After`` instead of queueing; the balancer treats that as
  "try a sibling", not "mark it dead".

* **HTTP result caching.**  Full-quality answers carry an ``ETag``
  derived from ``(shard-set version, similarity-invariant query
  signature)`` — the same canonicalization the in-process cache keys
  on — so a repeat query validates with ``304 Not Modified`` and any
  intermediary may cache safely: the tag changes the moment the
  corpus does.  Degraded answers are ``Cache-Control: no-store``.

* :class:`ReplicaSet` — N replica server *processes* warmed from the
  same published v3/v4 snapshot (``load_base(mmap=True)``: zero
  recompute, one page-cache copy).  A SIGKILLed replica can be
  :meth:`~ReplicaSet.restart`-ed and re-attaches from the snapshot —
  the warm-standby path.

* :class:`Balancer` — the front: health-checks replicas at an
  interval, routes round-robin over the live ones, retries idempotent
  queries (retrieval is a pure read) on a surviving replica with
  capped backoff under a per-request retry budget, and marks dead
  replicas through the *existing*
  :class:`~repro.service.breaker.CircuitBreaker` state machine — the
  same closed→open→half-open ladder that guards shards in-process.
  :class:`BalancerServer` exposes the same endpoint surface over one
  listening port, making the fleet a single-address front door.

The fleet-level invariant (chaos-tested by ``serve-bench --http
--chaos`` and the CI ``http-smoke`` job): killing one replica
mid-traffic yields zero errored client responses — every in-flight
query completes ``ok`` or ``degraded`` from the survivors.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..geometry.io import shape_from_dict, shape_to_dict
from ..geometry.polyline import Shape
from .breaker import BreakerConfig, CircuitBreaker, OPEN
from .cache import sketch_signature
from .deadline import Deadline
from .metrics import MetricsRegistry
from .service import OVERLOADED, RetrievalService, ServiceConfig, \
    ServiceResult

#: Remaining-budget request header (milliseconds, relative).
DEADLINE_HEADER = "X-Deadline-Ms"

#: ``Retry-After`` seconds suggested on a shed (503) response.
RETRY_AFTER_SECONDS = 1

#: tier names as reported over the wire (``method`` -> ``tier``).
_METHOD_TIER = {"envelope": "exact", "ann": "ann", "hashing": "hash",
                "none": "none"}


class ReplicaStartupError(RuntimeError):
    """A replica process failed to warm from the snapshot."""


class NoHealthyReplicas(RuntimeError):
    """Every replica is dead or breaker-excluded."""


def _json_default(value):
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def _json_bytes(payload: dict) -> bytes:
    return json.dumps(payload, default=_json_default).encode("utf-8")


def query_etag(version: int, sketch: Shape, k: int) -> str:
    """The validation tag of one (corpus version, query) pair.

    Built from the shard-set version and the similarity-invariant
    sketch signature (the in-process cache's canonicalization), so
    two sketches differing only by rotation/scale/translation share a
    tag and *any* corpus mutation changes it.  Safe for intermediary
    caches: a tag can only validate the answer it named.
    """
    signature = sketch_signature(sketch, kind="http-topk", parameter=k)
    return f'"g{version}-{signature}"'


def result_payload(result: ServiceResult) -> dict:
    """One :class:`ServiceResult` as its wire (JSON) form."""
    return {
        "status": result.status,
        "tier": _METHOD_TIER.get(result.method, result.method),
        "method": result.method,
        "degraded": bool(result.degraded or result.failed_shards),
        "deadline_degraded": result.degraded,
        "cached": result.cached,
        "failed_shards": list(result.failed_shards),
        "latency_ms": round(result.latency * 1e3, 3),
        "matches": [{"rank": rank,
                     "shape_id": match.shape_id,
                     "image_id": match.image_id,
                     "distance": match.distance,
                     "approximate": match.approximate}
                    for rank, match in enumerate(result.matches, 1)],
    }


def parse_deadline_ms(raw: Optional[str]) -> Optional[float]:
    """``X-Deadline-Ms`` header value -> milliseconds (None = absent).

    Raises ``ValueError`` on garbage; negative values clamp to 0 (an
    already-expired budget, shed at the door).
    """
    if raw is None or raw.strip() == "":
        return None
    value = float(raw)
    return max(0.0, value)


# ----------------------------------------------------------------------
# The per-replica HTTP server
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    """Routes one connection's requests to the owning server's app."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-geosir"

    def log_message(self, *args) -> None:     # keep benches quiet
        pass

    @property
    def app(self) -> "HttpRetrievalServer":
        return self.server.app                # type: ignore[attr-defined]

    # -- plumbing -------------------------------------------------------
    def _respond(self, code: int, payload: Optional[dict] = None,
                 headers: Optional[Dict[str, str]] = None) -> None:
        body = b"" if payload is None else _json_bytes(payload)
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _shed(self, reason: str, counter: str) -> None:
        self.app.metrics.counter(counter).increment()
        self._respond(503, {"status": OVERLOADED, "reason": reason},
                      {"Retry-After": str(RETRY_AFTER_SECONDS)})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # -- routing --------------------------------------------------------
    def do_GET(self) -> None:                 # noqa: N802 (stdlib name)
        try:
            if self.path == "/healthz":
                self._respond(200, self.app.health_payload())
            elif self.path == "/readyz":
                ready, payload = self.app.ready_payload()
                self._respond(200 if ready else 503, payload)
            elif self.path == "/stats":
                self._respond(200, self.app.stats_payload())
            else:
                self._respond(404, {"error": f"no route {self.path}"})
        except Exception as exc:              # the wire must not drop
            self._server_error(exc)

    def do_POST(self) -> None:                # noqa: N802
        try:
            if self.path == "/query":
                self._query()
            elif self.path == "/query_batch":
                self._query_batch()
            elif self.path == "/admin/kill_worker":
                self._kill_worker()
            else:
                self._read_body()     # drain; keep-alive must survive
                self._respond(404, {"error": f"no route {self.path}"})
        except (ValueError, KeyError, TypeError) as exc:
            self.app.metrics.counter("http.bad_requests").increment()
            self._respond(400, {"error": f"bad request: {exc}"})
        except Exception as exc:
            self._server_error(exc)

    def _server_error(self, exc: Exception) -> None:
        self.app.metrics.counter("http.errors").increment()
        try:
            self._respond(500, {"status": "error",
                                "error": f"{type(exc).__name__}: {exc}"})
        except OSError:
            pass                              # client went away mid-write

    # -- endpoints ------------------------------------------------------
    def _deadline_seconds(self) -> Optional[float]:
        ms = parse_deadline_ms(self.headers.get(DEADLINE_HEADER))
        return None if ms is None else ms / 1000.0

    def _query(self) -> None:
        app = self.app
        started = time.perf_counter()
        app.metrics.counter("http.queries").increment()
        deadline = self._deadline_seconds()
        # The body must be drained even when shedding: unread bytes
        # would corrupt the next request on this keep-alive connection.
        body = self._read_body()
        if deadline is not None and deadline <= 0.0:
            # Already out of budget: queueing this query steals cycles
            # from ones that can still answer in time.
            self._shed("deadline already expired", "http.shed_deadline")
            return
        sketch = shape_from_dict(body["sketch"])
        k = int(body.get("k", 1))
        if k < 1:
            raise ValueError("k must be at least 1")

        etag = query_etag(app.service.shards.version, sketch, k)
        candidates = self.headers.get("If-None-Match", "")
        if etag in [tag.strip() for tag in candidates.split(",") if tag]:
            app.metrics.counter("http.not_modified").increment()
            self._respond(304, None, {"ETag": etag})
            return

        result = app.service.retrieve(sketch, k=k, deadline=deadline)
        if result.status == OVERLOADED:
            self._shed("admission queue full", "http.shed_overload")
            return
        payload = result_payload(result)
        payload["replica"] = app.replica_id
        payload["snapshot_version"] = app.service.shards.version
        headers: Dict[str, str] = {}
        if result.ok and not result.degraded:
            # Only full-quality answers are validatable: a degraded
            # answer must not be revalidated into permanence.
            headers["ETag"] = etag
        else:
            headers["Cache-Control"] = "no-store"
        app.metrics.histogram("http.latency").observe(
            time.perf_counter() - started)
        self._respond(200, payload, headers)

    def _query_batch(self) -> None:
        app = self.app
        started = time.perf_counter()
        deadline = self._deadline_seconds()
        body = self._read_body()      # drain before any early response
        if deadline is not None and deadline <= 0.0:
            self._shed("deadline already expired", "http.shed_deadline")
            return
        sketches = [shape_from_dict(entry) for entry in body["sketches"]]
        if not sketches:
            raise ValueError("sketches must be non-empty")
        k = int(body.get("k", 1))
        app.metrics.counter("http.queries").increment(len(sketches))
        results = app.service.retrieve_batch(sketches, k=k,
                                             deadline=deadline)
        if all(r.status == OVERLOADED for r in results):
            self._shed("admission queue full", "http.shed_overload")
            return
        payload = {
            "status": "ok",
            "replica": app.replica_id,
            "snapshot_version": app.service.shards.version,
            "results": [result_payload(r) for r in results],
        }
        app.metrics.histogram("http.latency").observe(
            time.perf_counter() - started)
        self._respond(200, payload, {"Cache-Control": "no-store"})

    def _kill_worker(self) -> None:
        """Chaos hook: SIGKILL one process-tier worker *inside* this
        replica (``serve-bench --http --processes`` uses it to compose
        replica-level and worker-level failure)."""
        app = self.app
        body = self._read_body()
        if not app.allow_admin:
            self._respond(404, {"error": "admin surface disabled"})
            return
        pool = app.service.procpool
        if pool is None:
            self._respond(400, {"error": "replica runs thread "
                                         "execution; no workers"})
            return
        index = int(body.get("index", 0))
        pid = pool.kill_worker(index)
        self._respond(200, {"killed_worker": index, "pid": pid})


class _ThreadingServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class HttpRetrievalServer:
    """One replica's HTTP/JSON front on a :class:`RetrievalService`.

    Threading server (one handler thread per connection — the service
    underneath is already concurrent and admission-bounded);
    ``port=0`` binds an ephemeral port, read back from
    :attr:`address`.  :meth:`close` is idempotent and safe under
    concurrent callers, like the service's own ``close``.
    """

    def __init__(self, service: RetrievalService,
                 host: str = "127.0.0.1", port: int = 0, *,
                 replica_id: Optional[int] = None,
                 allow_admin: bool = False):
        self.service = service
        self.metrics = service.metrics
        self.replica_id = replica_id
        self.allow_admin = allow_admin
        self._httpd = _ThreadingServer((host, port), _Handler)
        self._httpd.app = self                # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._lifecycle = threading.Lock()
        self._closed = False
        self._started_at = time.monotonic()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "HttpRetrievalServer":
        with self._lifecycle:
            if self._closed:
                raise RuntimeError("server is closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._httpd.serve_forever,
                    kwargs={"poll_interval": 0.05},
                    name="repro-http", daemon=True)
                self._thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop serving; idempotent under concurrent callers."""
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
        if thread is not None:
            self._httpd.shutdown()
        self._httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "HttpRetrievalServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- endpoint payloads ---------------------------------------------
    def uptime(self) -> float:
        return time.monotonic() - self._started_at

    def health_payload(self) -> dict:
        return {"status": "alive", "replica": self.replica_id,
                "uptime_s": round(self.uptime(), 3)}

    def ready_payload(self) -> Tuple[bool, dict]:
        ready = not self._closed and self.service.ready()
        return ready, {
            "status": "ready" if ready else "unready",
            "replica": self.replica_id,
            "snapshot_version": self.service.shards.version,
            "shards": self.service.shards.num_shards,
            "shapes": self.service.shards.num_shapes,
        }

    def stats_payload(self) -> dict:
        snap = self.service.snapshot()
        snap["server"] = {"replica": self.replica_id,
                          "uptime_s": round(self.uptime(), 3),
                          "address": list(self.address)}
        return snap

    def __repr__(self) -> str:
        host, port = self.address
        return (f"HttpRetrievalServer({host}:{port}, "
                f"replica={self.replica_id}, closed={self._closed})")


# ----------------------------------------------------------------------
# Replica fleet: snapshot-shipped warm processes
# ----------------------------------------------------------------------
def _replica_main(conn, snapshot_path: str, config: ServiceConfig,
                  host: str, replica_id: int, allow_admin: bool) -> None:
    """Entry point of one replica process.

    Warm order matters: the service attaches the snapshot (mmap — the
    page cache shares one physical copy across the fleet) and warms
    every shard *before* the ready message, so ``/readyz`` flipping
    200 really means "serving at full quality".
    """
    server = None
    service = None
    try:
        service = RetrievalService.from_snapshot(snapshot_path, config,
                                                 mmap=True)
        server = HttpRetrievalServer(service, host=host, port=0,
                                     replica_id=replica_id,
                                     allow_admin=allow_admin).start()
        conn.send(("ready", server.address))
    except Exception as exc:
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
        return
    try:
        # Wait for stop.  Parent death cannot be trusted to surface as
        # EOF: with the fork start method, this process (and later
        # siblings) inherit copies of the pipe's parent end, which
        # keep the socket open after the parent is gone.  Watch for
        # reparenting explicitly instead — an orphaned replica must
        # exit, not serve forever.
        import os
        parent = os.getppid()
        while not conn.poll(2.0):
            if os.getppid() != parent:
                break
        else:
            conn.recv()
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        server.close()
        service.close()


@dataclass
class _Replica:
    index: int
    process: Any
    conn: Any
    address: Optional[Tuple[str, int]] = None
    generation: int = 0

    def is_alive(self) -> bool:
        return self.process.is_alive()


class ReplicaSet:
    """N replica servers, all warmed from one published snapshot.

    Replication here is *snapshot shipping*: the corpus is published
    once (a v3/v4 file — PR 8's zero-copy format) and every replica
    process attaches with ``mmap=True``, so fleet warm-up costs no
    recompute and no extra physical memory beyond the page cache.
    :meth:`kill` (SIGKILL, the chaos hook) and :meth:`restart` (the
    warm-standby path: a fresh process re-attaches from the same
    snapshot) are deliberately symmetric — recovery is just another
    start.
    """

    def __init__(self, snapshot_path, replicas: int = 2,
                 config: Optional[ServiceConfig] = None,
                 host: str = "127.0.0.1", *,
                 start_method: Optional[str] = None,
                 allow_admin: bool = False,
                 startup_timeout: float = 120.0):
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        import multiprocessing
        import os
        import sys
        import tempfile
        self.snapshot_path = str(snapshot_path)
        self.replicas = int(replicas)
        # Fault plans hold locks (unpicklable) and belong to chaos
        # harnesses in the parent; replicas serve clean.
        config = config or ServiceConfig()
        self.config = replace(config, fault_plan=None)
        # Process-execution replicas publish shards for their workers.
        # Route that through files we own instead of shm segments: a
        # SIGKILLed replica cannot release its segments, but files in
        # this directory are swept by stop() regardless of how the
        # replica died.
        self._publish_tmp = None
        if self.config.execution == "process" and \
                self.config.snapshot_dir is None:
            self._publish_tmp = tempfile.TemporaryDirectory(
                prefix="repro-replica-publish-")
            self.config = replace(self.config,
                                  snapshot_dir=self._publish_tmp.name)
        self.host = host
        self.allow_admin = allow_admin
        self.startup_timeout = float(startup_timeout)
        if start_method is None:
            start_method = os.environ.get("REPRO_PROCPOOL_START") or \
                ("fork" if sys.platform.startswith("linux") else "spawn")
        self._ctx = multiprocessing.get_context(start_method)
        self._members: List[_Replica] = []
        self._lock = threading.Lock()
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ReplicaSet":
        with self._lock:
            if self._closed:
                raise RuntimeError("replica set is closed")
            if not self._members:
                self._members = [self._spawn(index, generation=0)
                                 for index in range(self.replicas)]
        return self

    def _replica_config(self, index: int,
                        generation: int) -> ServiceConfig:
        """Per-replica config: publish paths must not collide across
        replicas (shard files are named by index/version/round only),
        so each replica incarnation publishes into its own subdir."""
        if self.config.snapshot_dir is None:
            return self.config
        import os
        subdir = os.path.join(self.config.snapshot_dir,
                              f"replica-{index}-g{generation}")
        return replace(self.config, snapshot_dir=subdir)

    def _spawn(self, index: int, generation: int) -> _Replica:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        # Not a daemon: a replica in process execution spawns its own
        # worker children, which daemonic processes may not.  Orphan
        # protection comes from the pipe instead — parent death closes
        # our end, _replica_main's recv() EOFs, the replica shuts down.
        process = self._ctx.Process(
            target=_replica_main,
            args=(child_conn, self.snapshot_path,
                  self._replica_config(index, generation),
                  self.host, index, self.allow_admin),
            name=f"repro-replica-{index}", daemon=False)
        process.start()
        child_conn.close()
        replica = _Replica(index, process, parent_conn,
                           generation=generation)
        if not parent_conn.poll(self.startup_timeout):
            process.kill()
            raise ReplicaStartupError(
                f"replica {index} did not become ready within "
                f"{self.startup_timeout}s")
        kind, detail = parent_conn.recv()
        if kind != "ready":
            process.join(timeout=1.0)
            raise ReplicaStartupError(f"replica {index}: {detail}")
        replica.address = (detail[0], int(detail[1]))
        return replica

    def kill(self, index: int) -> int:
        """SIGKILL one replica (chaos); returns its pid.

        Like the procpool's ``kill_worker``, this does *not* mark the
        replica dead — detection is the balancer's job (health checks,
        connection errors, breakers).
        """
        replica = self._members[index % len(self._members)]
        pid = replica.process.pid
        replica.process.kill()
        return pid

    def restart(self, index: int) -> Tuple[str, int]:
        """Replace a (dead) replica with a fresh process warmed from
        the same published snapshot; returns the new address."""
        with self._lock:
            if self._closed:
                raise RuntimeError("replica set is closed")
            old = self._members[index % len(self._members)]
            old.process.kill()
            old.process.join(timeout=5.0)
            try:
                old.conn.close()
            except OSError:
                pass
            fresh = self._spawn(old.index, generation=old.generation + 1)
            self._members[index % len(self._members)] = fresh
        return fresh.address

    def stop(self) -> None:
        """Stop every replica; idempotent under concurrent callers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            members, self._members = self._members, []
        for replica in members:
            try:
                replica.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for replica in members:
            # A replica's graceful close can take several seconds
            # (HTTP thread join + process-pool shutdown); give it room
            # before escalating — a SIGKILLed replica orphans its
            # workers onto the watchdog path instead of a clean exit.
            replica.process.join(timeout=10.0)
            if replica.process.is_alive():
                replica.process.kill()
                replica.process.join(timeout=2.0)
            try:
                replica.conn.close()
            except OSError:
                pass
        if self._publish_tmp is not None:
            self._publish_tmp.cleanup()
            self._publish_tmp = None

    def __enter__(self) -> "ReplicaSet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- introspection --------------------------------------------------
    def endpoints(self) -> List[Tuple[str, int]]:
        with self._lock:
            return [r.address for r in self._members
                    if r.address is not None]

    def alive(self) -> List[int]:
        with self._lock:
            return [r.index for r in self._members if r.is_alive()]

    def pids(self) -> List[Optional[int]]:
        with self._lock:
            return [r.process.pid for r in self._members]

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:
        return (f"ReplicaSet(replicas={self.replicas}, "
                f"alive={self.alive()}, snapshot="
                f"{self.snapshot_path!r})")


# ----------------------------------------------------------------------
# The balancer: health-checked failover with a retry budget
# ----------------------------------------------------------------------
@dataclass
class BalancedResponse:
    """What the balancer hands back for one front-door request."""

    status_code: int
    payload: dict = field(default_factory=dict)
    endpoint: Optional[Tuple[str, int]] = None
    attempts: int = 1
    etag: Optional[str] = None

    @property
    def not_modified(self) -> bool:
        return self.status_code == 304

    @property
    def ok(self) -> bool:
        return self.status_code in (200, 304)


class Balancer:
    """Route queries over a replica fleet; evict the dead, retry safely.

    Retrieval is a pure read, so ``POST /query`` is idempotent and a
    failed attempt may be replayed on a sibling without double-effect.
    Each request gets ``retry_budget`` extra attempts with capped
    exponential backoff, never exceeding the request's own deadline.
    Replica health is tracked two ways: a background thread probes
    ``/readyz`` every ``health_interval`` seconds (connection refusal
    = confirmed down, excluded immediately), and every routed request
    reports its outcome into a per-replica
    :class:`~repro.service.breaker.CircuitBreaker` — the shard
    breaker's state machine reused at fleet scope, so a flapping
    replica is quarantined for a cooldown and re-admitted through a
    bounded half-open probe.
    """

    def __init__(self, endpoints: Sequence[Tuple[str, int]], *,
                 health_interval: float = 0.25,
                 request_timeout: float = 30.0,
                 retry_budget: int = 2,
                 retry_backoff: float = 0.02,
                 retry_backoff_max: float = 0.25,
                 breaker: Optional[BreakerConfig] = None,
                 metrics: Optional[MetricsRegistry] = None):
        if not endpoints:
            raise ValueError("balancer needs at least one endpoint")
        self._endpoints: List[Tuple[str, int]] = [
            (str(host), int(port)) for host, port in endpoints]
        self.health_interval = float(health_interval)
        self.request_timeout = float(request_timeout)
        self.retry_budget = int(retry_budget)
        self.retry_backoff = float(retry_backoff)
        self.retry_backoff_max = float(retry_backoff_max)
        self.metrics = metrics or MetricsRegistry()
        breaker_config = breaker or BreakerConfig(
            window=8, failure_threshold=0.5, min_volume=2,
            cooldown=1.0, half_open_probes=1)
        self._breakers = [CircuitBreaker(breaker_config)
                          for _ in self._endpoints]
        self._down: set = set()
        self._rr = 0
        self._lock = threading.Lock()
        self._closed = False
        self._stop = threading.Event()
        self._health_thread = threading.Thread(
            target=self._health_loop, name="repro-balancer-health",
            daemon=True)
        self._health_thread.start()

    # -- endpoint management -------------------------------------------
    def replace_endpoint(self, index: int,
                         endpoint: Tuple[str, int]) -> None:
        """Point slot ``index`` at a restarted replica's new address.

        The slot's breaker is reset: the fresh process has no failure
        history to answer for.
        """
        with self._lock:
            self._breakers[index] = CircuitBreaker(
                self._breakers[index].config)
            self._endpoints[index] = (str(endpoint[0]), int(endpoint[1]))
            self._down.discard(index)

    def endpoints(self) -> List[Tuple[str, int]]:
        with self._lock:
            return list(self._endpoints)

    def healthy(self) -> List[int]:
        """Replica slots currently routable (not down, breaker not open)."""
        with self._lock:
            indices = list(range(len(self._endpoints)))
            down = set(self._down)
        return [i for i in indices
                if i not in down and self._breakers[i].state != OPEN]

    # -- health checking ------------------------------------------------
    def _health_loop(self) -> None:
        while not self._stop.wait(self.health_interval):
            self.check_health()

    def check_health(self) -> List[int]:
        """One probe round over every endpoint; returns healthy slots.

        Runs on the background thread each interval; tests may call it
        directly to make eviction timing deterministic.
        """
        self.metrics.counter("balancer.health_rounds").increment()
        for index, endpoint in enumerate(self.endpoints()):
            try:
                code, _, _ = self._http(endpoint, "GET", "/readyz",
                                        timeout=min(
                                            self.request_timeout,
                                            max(self.health_interval,
                                                0.25) * 4))
                alive = code == 200
            except (OSError, http.client.HTTPException):
                alive = False
            with self._lock:
                was_down = index in self._down
                if alive:
                    self._down.discard(index)
                else:
                    self._down.add(index)
            if alive:
                self._breakers[index].record_success()
                if was_down:
                    self.metrics.counter(
                        "balancer.readmitted").increment()
            else:
                self._breakers[index].record_failure()
                if not was_down:
                    self.metrics.counter("balancer.evicted").increment()
        return self.healthy()

    # -- transport ------------------------------------------------------
    @staticmethod
    def _http(endpoint: Tuple[str, int], method: str, path: str,
              body: Optional[bytes] = None,
              headers: Optional[Dict[str, str]] = None,
              timeout: float = 30.0
              ) -> Tuple[int, Dict[str, str], dict]:
        host, port = endpoint
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            send_headers = {"Content-Type": "application/json"}
            send_headers.update(headers or {})
            conn.request(method, path, body=body, headers=send_headers)
            response = conn.getresponse()
            raw = response.read()
            payload: dict = {}
            if raw:
                try:
                    payload = json.loads(raw.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    payload = {"error": "unparseable body"}
            return (response.status,
                    {k.lower(): v for k, v in response.getheaders()},
                    payload)
        finally:
            conn.close()

    # -- routing --------------------------------------------------------
    def _pick(self, exclude: set) -> Optional[int]:
        """Next routable slot after round-robin order, or ``None``.

        ``breaker.allow()`` is the admission decision: an open breaker
        fast-fails the slot, a half-open one admits at most its probe
        quota — concurrent pickers lose and move on (the same
        single-probe semantics the shard path relies on).
        """
        with self._lock:
            start = self._rr
            self._rr += 1
            count = len(self._endpoints)
            down = set(self._down)
        for offset in range(count):
            index = (start + offset) % count
            if index in exclude or index in down:
                continue
            if self._breakers[index].allow():
                return index
        return None

    def _backoff(self, attempt: int, deadline: Deadline) -> float:
        delay = min(self.retry_backoff_max,
                    self.retry_backoff * (2 ** (attempt - 1)))
        if deadline.bounded:
            delay = min(delay, deadline.remaining())
        return max(0.0, delay)

    def request(self, method: str, path: str,
                body: Optional[dict] = None,
                deadline_ms: Optional[float] = None,
                headers: Optional[Dict[str, str]] = None
                ) -> BalancedResponse:
        """Route one idempotent request with failover and retries.

        The remaining budget rides the ``X-Deadline-Ms`` header and
        shrinks across attempts, so a retry never promises a replica
        more time than the client still has.  A replica that sheds
        (503) is retried elsewhere without punishing its breaker —
        overload is not death; connection errors and 5xx are failures
        and feed the breaker.
        """
        if self._closed:
            raise RuntimeError("balancer is closed")
        deadline = Deadline(None if deadline_ms is None
                            else deadline_ms / 1000.0)
        encoded = None if body is None else _json_bytes(body)
        attempts = 0
        tried: set = set()
        last: Optional[BalancedResponse] = None
        self.metrics.counter("balancer.requests").increment()
        while attempts <= self.retry_budget:
            if deadline.bounded and deadline.expired():
                self.metrics.counter("balancer.shed_deadline").increment()
                return BalancedResponse(
                    503, {"status": OVERLOADED,
                          "reason": "deadline exhausted at balancer"},
                    attempts=attempts or 1)
            index = self._pick(tried)
            if index is None and tried:
                # Every untried slot is excluded; widen to any
                # routable slot rather than failing early.
                tried = set()
                index = self._pick(tried)
            if index is None:
                self.metrics.counter("balancer.no_replicas").increment()
                raise NoHealthyReplicas(
                    f"no routable replica among {len(self._endpoints)}")
            endpoint = self.endpoints()[index]
            attempts += 1
            tried.add(index)
            send_headers = dict(headers or {})
            if deadline.bounded:
                send_headers[DEADLINE_HEADER] = \
                    f"{deadline.remaining() * 1000.0:.3f}"
            elif deadline_ms is not None:
                send_headers[DEADLINE_HEADER] = f"{deadline_ms:.3f}"
            timeout = self.request_timeout
            if deadline.bounded:
                timeout = min(timeout, deadline.remaining() + 1.0)
            try:
                code, response_headers, payload = self._http(
                    endpoint, method, path, encoded, send_headers,
                    timeout)
            except (OSError, http.client.HTTPException) as exc:
                # OSError covers refusal/reset; HTTPException covers a
                # replica dying mid-response (IncompleteRead, a torn
                # status line).  Both mean "this attempt is lost", and
                # the read is idempotent — replay it on a sibling.
                self._breakers[index].record_failure()
                self.metrics.counter("balancer.conn_failures").increment()
                last = BalancedResponse(
                    502, {"status": "error",
                          "error": f"{type(exc).__name__}: {exc}"},
                    endpoint=endpoint, attempts=attempts)
                self._sleep_before_retry(attempts, deadline)
                continue
            response = BalancedResponse(
                code, payload, endpoint=endpoint, attempts=attempts,
                etag=response_headers.get("etag"))
            if code in (200, 304) or 400 <= code < 500:
                # 4xx is the *client's* bug; replaying it elsewhere
                # cannot help and must not poison the breaker.
                self._breakers[index].record_success()
                return response
            if code == 503:
                # Shed, not dead: the replica is alive enough to
                # answer.  Try a sibling with what budget remains.
                self.metrics.counter("balancer.retried_shed").increment()
                last = response
                self._sleep_before_retry(attempts, deadline)
                continue
            self._breakers[index].record_failure()
            self.metrics.counter("balancer.upstream_errors").increment()
            last = response
            self._sleep_before_retry(attempts, deadline)
        self.metrics.counter("balancer.exhausted").increment()
        return last if last is not None else BalancedResponse(
            502, {"status": "error", "error": "retry budget exhausted"})

    def _sleep_before_retry(self, attempts: int,
                            deadline: Deadline) -> None:
        if attempts > self.retry_budget:
            return
        self.metrics.counter("balancer.retries").increment()
        delay = self._backoff(attempts, deadline)
        if delay > 0:
            time.sleep(delay)

    # -- the query surface ---------------------------------------------
    def query(self, sketch: Shape, k: int = 1,
              deadline_ms: Optional[float] = None,
              etag: Optional[str] = None) -> BalancedResponse:
        headers = {"If-None-Match": etag} if etag else None
        return self.request("POST", "/query",
                            {"sketch": shape_to_dict(sketch), "k": k},
                            deadline_ms=deadline_ms, headers=headers)

    def query_batch(self, sketches: Sequence[Shape], k: int = 1,
                    deadline_ms: Optional[float] = None
                    ) -> BalancedResponse:
        return self.request(
            "POST", "/query_batch",
            {"sketches": [shape_to_dict(s) for s in sketches], "k": k},
            deadline_ms=deadline_ms)

    def stats(self) -> dict:
        snap = self.metrics.as_dict()
        snap["endpoints"] = [list(e) for e in self.endpoints()]
        snap["healthy"] = self.healthy()
        snap["breakers"] = {str(i): b.snapshot()
                            for i, b in enumerate(self._breakers)}
        return snap

    def close(self) -> None:
        """Stop health checking; idempotent under concurrent callers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        self._health_thread.join(timeout=5.0)

    def __enter__(self) -> "Balancer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"Balancer(endpoints={len(self._endpoints)}, "
                f"healthy={self.healthy()})")


# ----------------------------------------------------------------------
# Single-address front door over the fleet
# ----------------------------------------------------------------------
class _FrontHandler(BaseHTTPRequestHandler):
    """Forwards the replica endpoint surface through the balancer."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-geosir-front"

    def log_message(self, *args) -> None:
        pass

    @property
    def front(self) -> "BalancerServer":
        return self.server.front              # type: ignore[attr-defined]

    def _respond(self, code: int, payload: Optional[dict],
                 headers: Optional[Dict[str, str]] = None) -> None:
        body = b"" if payload is None else _json_bytes(payload)
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _forward(self, method: str) -> None:
        balancer = self.front.balancer
        length = int(self.headers.get("Content-Length", 0) or 0)
        body = None
        if length:
            body = json.loads(self.rfile.read(length).decode("utf-8"))
        deadline_ms = parse_deadline_ms(
            self.headers.get(DEADLINE_HEADER))
        headers = {}
        etag = self.headers.get("If-None-Match")
        if etag:
            headers["If-None-Match"] = etag
        try:
            response = balancer.request(method, self.path, body,
                                        deadline_ms=deadline_ms,
                                        headers=headers)
        except NoHealthyReplicas as exc:
            self._respond(503, {"status": "error", "error": str(exc)},
                          {"Retry-After": str(RETRY_AFTER_SECONDS)})
            return
        out_headers: Dict[str, str] = {}
        if response.etag:
            out_headers["ETag"] = response.etag
        if response.status_code == 503:
            out_headers["Retry-After"] = str(RETRY_AFTER_SECONDS)
        self._respond(response.status_code,
                      None if response.not_modified else response.payload,
                      out_headers)

    def do_GET(self) -> None:                 # noqa: N802
        try:
            if self.path == "/healthz":
                self._respond(200, {"status": "alive", "role": "front"})
            elif self.path == "/readyz":
                healthy = self.front.balancer.healthy()
                code = 200 if healthy else 503
                self._respond(code, {"status": ("ready" if healthy
                                                else "unready"),
                                     "healthy_replicas": healthy})
            elif self.path == "/stats":
                self._respond(200, self.front.balancer.stats())
            else:
                self._respond(404, {"error": f"no route {self.path}"})
        except Exception as exc:
            self._respond(500, {"status": "error", "error": str(exc)})

    def do_POST(self) -> None:                # noqa: N802
        try:
            if self.path in ("/query", "/query_batch"):
                self._forward("POST")
            else:
                self._respond(404, {"error": f"no route {self.path}"})
        except (ValueError, KeyError, TypeError) as exc:
            self._respond(400, {"error": f"bad request: {exc}"})
        except Exception as exc:
            self._respond(500, {"status": "error", "error": str(exc)})


class BalancerServer:
    """The fleet behind one listening address.

    Clients speak the exact replica protocol to this port; the
    handler re-routes through the :class:`Balancer`, so failover,
    retry budgets, deadline decay and ETag validation all apply
    unchanged.  ``repro serve --http --replicas N`` mounts this.
    """

    def __init__(self, balancer: Balancer, host: str = "127.0.0.1",
                 port: int = 0):
        self.balancer = balancer
        self._httpd = _ThreadingServer((host, port), _FrontHandler)
        self._httpd.front = self              # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._lifecycle = threading.Lock()
        self._closed = False

    def start(self) -> "BalancerServer":
        with self._lifecycle:
            if self._closed:
                raise RuntimeError("server is closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._httpd.serve_forever,
                    kwargs={"poll_interval": 0.05},
                    name="repro-http-front", daemon=True)
                self._thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def close(self) -> None:
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
        if thread is not None:
            self._httpd.shutdown()
        self._httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "BalancerServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        host, port = self.address
        return f"BalancerServer({host}:{port}, {self.balancer!r})"
