"""repro.service — the concurrent, sharded retrieval service layer.

Turns the single-threaded GeoSIR facade into an embeddable service:
the corpus is partitioned into :class:`ShardSet` shards (each with its
own matcher and hashing retriever), queries fan out across shards on a
:class:`WorkerPool` and merge exactly, results are cached under
similarity-invariant sketch signatures, per-query :class:`Deadline`
budgets walk a three-rung degradation ladder (exact envelope →
LSH-pruned exact via :mod:`repro.ann` → hashing tier), and a bounded
:class:`AdmissionQueue` sheds load explicitly instead of queueing
without bound.  :class:`MetricsRegistry` instruments all of it.

Entry points: :meth:`RetrievalService.from_base` over an existing
:class:`~repro.core.ShapeBase`, or
:meth:`repro.geosir.GeoSIR.enable_service` to put the service behind
the familiar facade.  ``repro serve-bench`` exercises it from the CLI.

Fault tolerance lives in :mod:`~repro.service.breaker` (per-shard
circuit breakers) and :mod:`~repro.service.faults` (the deterministic
fault-injection harness behind ``serve-bench --chaos``); the service
isolates, retries and degrades per shard so a single-shard failure
costs answer quality, never availability.

The network tier lives in :mod:`~repro.service.http`: an
:class:`HttpRetrievalServer` front per replica (deadline propagation
via ``X-Deadline-Ms``, 503 load shedding, ETag/304 result caching), a
:class:`ReplicaSet` of processes warmed from one published snapshot,
and a health-checking :class:`Balancer` (plus
:class:`BalancerServer`, the single-address front door) that fails
queries over to surviving replicas — ``serve-bench --http`` and
``repro serve`` from the CLI.
"""

from .breaker import BreakerConfig, CircuitBreaker
from .cache import QueryResultCache, sketch_signature
from .deadline import Deadline
from .faults import (CorruptShardAnswer, FaultError, FaultPlan,
                     FaultSpec, FaultyShard, ShardTimeoutError)
from .http import (Balancer, BalancerServer, HttpRetrievalServer,
                   NoHealthyReplicas, ReplicaSet, ReplicaStartupError)
from .metrics import Counter, Histogram, MetricsRegistry
from .pool import AdmissionQueue, WorkerPool
from .procpool import (ProcessShardView, ProcessWorkerPool,
                       WorkerOperationError, WorkerUnavailableError)
from .service import (DEGRADED, OK, OVERLOADED, TIER_ANN, TIER_EXACT,
                      TIER_HASH, RetrievalService, ServiceConfig,
                      ServiceResult)
from .shards import Shard, ShardSet, merge_topk, shard_for

__all__ = [
    "AdmissionQueue", "Balancer", "BalancerServer", "BreakerConfig",
    "CircuitBreaker", "CorruptShardAnswer", "Counter", "DEGRADED",
    "Deadline", "FaultError", "FaultPlan", "FaultSpec", "FaultyShard",
    "Histogram", "HttpRetrievalServer", "MetricsRegistry",
    "NoHealthyReplicas", "OK", "OVERLOADED", "ProcessShardView",
    "ProcessWorkerPool", "QueryResultCache", "ReplicaSet",
    "ReplicaStartupError", "RetrievalService", "ServiceConfig",
    "ServiceResult", "Shard", "ShardSet", "ShardTimeoutError",
    "TIER_ANN", "TIER_EXACT", "TIER_HASH", "WorkerOperationError",
    "WorkerPool", "WorkerUnavailableError", "merge_topk", "shard_for",
    "sketch_signature",
]
