"""Per-query deadlines and the service's degradation vocabulary.

A :class:`Deadline` is a monotonic-clock budget handed to one query.
The envelope matcher polls it between fattening iterations (the
``abort`` hook of :meth:`GeometricSimilarityMatcher.query`); once it
expires, the exact search is abandoned and the service answers from
the geometric-hashing tier instead — the paper's own two-method
combination, repurposed as graceful degradation: the fallback is
approximate but its cost is (expected) constant, so a late query's
residual budget is always enough for *an* answer.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class Deadline:
    """A point on the monotonic clock after which work must stop.

    ``Deadline(None)`` never expires (the unlimited query);
    ``Deadline(0)`` is expired from birth — the first ``expired()``
    call returns True regardless of clock granularity.  The clock is
    injectable so tests can drive expiry deterministically.
    """

    __slots__ = ("_expires_at", "_clock", "_immediate")

    def __init__(self, seconds: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic):
        if seconds is not None and seconds < 0:
            raise ValueError("deadline must be non-negative")
        self._clock = clock
        self._immediate = seconds == 0
        self._expires_at = None if seconds is None \
            else clock() + float(seconds)

    @classmethod
    def unlimited(cls) -> "Deadline":
        return cls(None)

    @property
    def bounded(self) -> bool:
        return self._expires_at is not None

    def expired(self) -> bool:
        if self._expires_at is None:
            return False
        if self._immediate:
            return True
        return self._clock() >= self._expires_at

    def remaining(self) -> float:
        """Seconds left (``inf`` when unlimited, clamped at 0)."""
        if self._expires_at is None:
            return float("inf")
        if self._immediate:
            return 0.0
        return max(0.0, self._expires_at - self._clock())

    def __repr__(self) -> str:
        if self._expires_at is None:
            return "Deadline(unlimited)"
        return f"Deadline(remaining={self.remaining():.4f}s)"
