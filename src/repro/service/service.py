"""The embeddable retrieval service: admission → cache → shards → merge.

One query's path through :class:`RetrievalService`:

1. **admission** — take an in-flight slot from the bounded
   :class:`~repro.service.pool.AdmissionQueue`; saturation sheds the
   query with an explicit ``overloaded`` result (never blocks);
2. **cache** — probe the :class:`~repro.service.cache.QueryResultCache`
   under the sketch's canonical (similarity-invariant) signature;
3. **fan-out** — run the envelope matcher on every shard, in parallel
   on the worker pool, each with the query's deadline as its
   cooperative abort;
4. **merge** — per-shard top-k lists merge into the global top-k
   (exact, because shards are disjoint and measures base-independent);
5. **degrade** — if the deadline expired mid-search, or no match beat
   ``match_threshold``, answer from the geometric-hashing tier instead
   (the paper's fallback, repurposed as graceful degradation).

Every stage feeds the :class:`~repro.service.metrics.MetricsRegistry`;
``snapshot()`` returns the whole picture as a plain dict.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.matcher import Match, MatchStats
from ..core.shapebase import ShapeBase
from ..geometry.polyline import Shape
from .cache import QueryResultCache, sketch_signature
from .deadline import Deadline
from .metrics import MetricsRegistry
from .pool import AdmissionQueue, WorkerPool
from .shards import ShardSet, merge_topk

#: ``ServiceResult.status`` values.
OK = "ok"
OVERLOADED = "overloaded"


@dataclass
class ServiceConfig:
    """Knobs of one :class:`RetrievalService`.

    The geometric parameters (``alpha``, ``beta``, ``backend``,
    ``hash_curves``, ``match_threshold``) mirror
    :class:`~repro.geosir.GeoSIR`; the rest size the serving tier.
    ``deadline`` is the default per-query budget in seconds (``None``
    = unlimited); ``max_pending`` bounds admitted-but-unfinished
    queries (``None`` = unbounded).
    """

    num_shards: int = 4
    workers: int = 2
    cache_capacity: int = 256
    max_pending: Optional[int] = None
    deadline: Optional[float] = None
    alpha: float = 0.1
    beta: float = 0.25
    backend: str = "kdtree"
    hash_curves: int = 50
    neighbor_radius: int = 1
    match_threshold: float = 0.05


@dataclass
class ServiceResult:
    """Outcome of one service query.

    ``status`` is ``"ok"`` or ``"overloaded"`` (shed at admission —
    no retrieval was attempted).  ``method`` records which tier
    answered: ``"envelope"`` (exact search), ``"hashing"`` (degraded /
    fallback) or ``"none"`` (shed or empty corpus).
    """

    status: str
    matches: List[Match] = field(default_factory=list)
    method: str = "none"
    stats: MatchStats = field(default_factory=MatchStats)
    cached: bool = False
    degraded: bool = False       # deadline forced the hashing tier
    latency: float = 0.0         # seconds, as measured by the service

    @property
    def ok(self) -> bool:
        return self.status == OK

    @property
    def overloaded(self) -> bool:
        return self.status == OVERLOADED

    @property
    def best(self) -> Optional[Match]:
        return self.matches[0] if self.matches else None


def _merge_stats(per_shard: Sequence[MatchStats]) -> MatchStats:
    """Aggregate work accounting across shards (sums and flags)."""
    merged = MatchStats()
    for stats in per_shard:
        merged.iterations += stats.iterations
        merged.triangles_queried += stats.triangles_queried
        merged.vertices_reported += stats.vertices_reported
        merged.vertices_processed += stats.vertices_processed
        merged.candidates_evaluated += stats.candidates_evaluated
        merged.epsilons.extend(stats.epsilons)
        for key, seconds in stats.timings.items():
            merged.timings[key] = merged.timings.get(key, 0.0) + seconds
    merged.guaranteed = bool(per_shard) and \
        all(s.guaranteed for s in per_shard)
    merged.exhausted = any(s.exhausted for s in per_shard)
    return merged


class RetrievalService:
    """Concurrent, sharded, cached retrieval over a GeoSIR corpus."""

    def __init__(self, shards: ShardSet, config: Optional[ServiceConfig]
                 = None, metrics: Optional[MetricsRegistry] = None):
        self.config = config or ServiceConfig()
        self.shards = shards
        self.metrics = metrics or MetricsRegistry()
        self.cache = QueryResultCache(self.config.cache_capacity)
        self.admission = AdmissionQueue(self.config.max_pending)
        self.pool = WorkerPool(self.config.workers)
        # Single-flight: concurrent identical queries coalesce onto one
        # computation (thundering-herd protection for hot sketches).
        self._inflight: Dict[Tuple[str, int], threading.Event] = {}
        self._inflight_lock = threading.Lock()
        self.metrics.gauge("queue.pending", lambda: self.admission.pending)
        self.metrics.gauge("cache.size", lambda: len(self.cache))

    # ------------------------------------------------------------------
    # Construction / corpus management
    # ------------------------------------------------------------------
    @classmethod
    def from_base(cls, base: ShapeBase, config: Optional[ServiceConfig]
                  = None, metrics: Optional[MetricsRegistry] = None
                  ) -> "RetrievalService":
        """Shard an existing :class:`ShapeBase` and serve it.

        The base's ``alpha``/``backend`` win over the config's (the
        corpus was built with them); shapes keep their ids.
        """
        config = config or ServiceConfig()
        shard_set = ShardSet.from_base(
            base, num_shards=config.num_shards, beta=config.beta,
            hash_curves=config.hash_curves,
            neighbor_radius=config.neighbor_radius)
        service = cls(shard_set, config, metrics)
        service.warm()
        return service

    def reload(self, base: ShapeBase) -> None:
        """Re-shard from a mutated base; cache and metrics survive.

        The cache is version-keyed, so entries computed against the
        old corpus become unreachable the moment the new shard set's
        version differs; we also clear eagerly to free memory.
        """
        self.shards = ShardSet.from_base(
            base, num_shards=self.config.num_shards, beta=self.config.beta,
            hash_curves=self.config.hash_curves,
            neighbor_radius=self.config.neighbor_radius)
        self.cache.invalidate()
        self.warm()

    def ingest(self, shapes: Sequence[Shape],
               image_id: Optional[int] = None) -> List[int]:
        """Add shapes (routed to their shards); invalidates the cache."""
        ids = self.shards.add_shapes(shapes, image_id=image_id)
        self.cache.invalidate()
        self.metrics.counter("ingest.shapes").increment(len(ids))
        return ids

    def warm(self) -> None:
        """Build all shard structures before admitting traffic."""
        self.pool.map_over(lambda shard: shard.warm(), list(self.shards))

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def retrieve(self, sketch: Shape, k: int = 1,
                 deadline: Optional[float] = None) -> ServiceResult:
        """Serve one query end to end (admission included)."""
        self.metrics.counter("queries.total").increment()
        if not self.admission.try_admit():
            self.metrics.counter("queries.shed").increment()
            return ServiceResult(status=OVERLOADED)
        try:
            return self._admitted_retrieve(sketch, k, deadline)
        finally:
            self.admission.release()

    def retrieve_batch(self, sketches: Sequence[Shape], k: int = 1,
                       deadline: Optional[float] = None
                       ) -> List[ServiceResult]:
        """Serve many sketches through the amortized batch path.

        Admission happens at *submission* time — the bounded queue is
        the backlog, so a batch larger than the remaining slots sheds
        its tail immediately rather than queueing it invisibly; the
        admitted sketches hold their slots until the batch completes.
        Each admitted sketch gets one cache probe; identical misses
        coalesce onto one computation, and the remaining unique misses
        are answered by *batched* per-shard matcher calls pipelined on
        the worker pool (one scratch checkout per shard for the whole
        batch).  ``deadline`` budgets the batch as a whole.  Results
        come back in input order, identical to per-sketch
        :meth:`retrieve` calls.
        """
        sketches = list(sketches)
        results: List[Optional[ServiceResult]] = [None] * len(sketches)
        admitted: List[int] = []
        for position, _ in enumerate(sketches):
            self.metrics.counter("queries.total").increment()
            if not self.admission.try_admit():
                self.metrics.counter("queries.shed").increment()
                results[position] = ServiceResult(status=OVERLOADED)
            else:
                admitted.append(position)
        if not admitted:
            return results
        try:
            self._retrieve_admitted_batch(sketches, k, deadline,
                                          admitted, results)
        finally:
            for _ in admitted:
                self.admission.release()
        return results

    def _retrieve_admitted_batch(self, sketches: List[Shape], k: int,
                                 deadline: Optional[float],
                                 admitted: List[int],
                                 results: List[Optional[ServiceResult]]
                                 ) -> None:
        start = time.perf_counter()
        if deadline is None:
            deadline = self.config.deadline
        budget = Deadline(deadline)
        version = self.shards.version

        # -- cache probe + intra-batch coalescing -----------------------
        keys: Dict[int, str] = {}
        unique: List[int] = []
        followers: Dict[int, List[int]] = {}
        leader_of: Dict[str, int] = {}
        for position in admitted:
            if self.cache.enabled:
                stage = time.perf_counter()
                key = sketch_signature(sketches[position], kind="topk",
                                       parameter=k)
                hit = self.cache.get(key, version)
                self.metrics.histogram("latency.cache").observe(
                    time.perf_counter() - stage)
                keys[position] = key
                if hit is not None:
                    self.metrics.counter("queries.cache_hits").increment()
                    self.metrics.counter("queries.served").increment()
                    result = replace(hit, cached=True,
                                     latency=time.perf_counter() - start)
                    self._observe_total(result)
                    results[position] = result
                    continue
                leader = leader_of.get(key)
                if leader is not None:
                    followers.setdefault(leader, []).append(position)
                    continue
                leader_of[key] = position
            unique.append(position)
        if not unique:
            return

        # -- shard fan-out: one batched matcher call per shard ----------
        stage = time.perf_counter()
        miss_sketches = [sketches[position] for position in unique]
        shards = list(self.shards)
        per_shard = self.pool.map_over(
            lambda shard: shard.query_batch(miss_sketches, k,
                                            abort=budget.expired),
            shards)
        self.metrics.histogram("latency.envelope").observe(
            time.perf_counter() - stage)

        # -- per-sketch merge, degradation, caching ---------------------
        for offset, position in enumerate(unique):
            answers = [per_shard[s][offset] for s in range(len(shards))]
            stage = time.perf_counter()
            merged = merge_topk([matches for matches, _ in answers], k)
            stats = _merge_stats([s for _, s in answers])
            self.metrics.histogram("latency.merge").observe(
                time.perf_counter() - stage)
            degraded = budget.bounded and budget.expired() and \
                stats.exhausted
            good = [m for m in merged
                    if m.distance <= self.config.match_threshold]
            method = "envelope"
            if degraded or not good:
                stage = time.perf_counter()
                sketch = sketches[position]
                fallback = merge_topk(self.pool.map_over(
                    lambda shard: shard.hash_query(sketch, k), shards), k)
                self.metrics.histogram("latency.fallback").observe(
                    time.perf_counter() - stage)
                self.metrics.counter("queries.fallback").increment()
                if fallback:
                    merged = fallback
                    method = "hashing"
            result = ServiceResult(status=OK, matches=merged,
                                   method=method, stats=stats,
                                   degraded=degraded,
                                   latency=time.perf_counter() - start)
            key = keys.get(position)
            if key is not None and not degraded:
                self.cache.put(key, version, result)
            self.metrics.counter("queries.served").increment()
            self._observe_total(result)
            results[position] = result
            for follower in followers.get(position, ()):
                dup = replace(result, cached=True,
                              latency=time.perf_counter() - start)
                self.metrics.counter("queries.coalesced").increment()
                self.metrics.counter("queries.served").increment()
                self._observe_total(dup)
                results[follower] = dup

    # ------------------------------------------------------------------
    def _admitted_retrieve(self, sketch: Shape, k: int,
                           deadline_seconds: Optional[float]
                           ) -> ServiceResult:
        start = time.perf_counter()
        if deadline_seconds is None:
            deadline_seconds = self.config.deadline
        budget = Deadline(deadline_seconds)

        # -- cache probe (with single-flight coalescing) ----------------
        key = None
        flight = None
        flight_key = None
        if self.cache.enabled:
            stage = time.perf_counter()
            key = sketch_signature(sketch, kind="topk", parameter=k)
            hit = self.cache.get(key, self.shards.version)
            self.metrics.histogram("latency.cache").observe(
                time.perf_counter() - stage)
            if hit is not None:
                self.metrics.counter("queries.cache_hits").increment()
                self.metrics.counter("queries.served").increment()
                result = replace(hit, cached=True,
                                 latency=time.perf_counter() - start)
                self._observe_total(result)
                return result
            flight_key = (key, self.shards.version)
            with self._inflight_lock:
                leader_event = self._inflight.get(flight_key)
                if leader_event is None:
                    flight = threading.Event()
                    self._inflight[flight_key] = flight
            if flight is None and leader_event is not None:
                # Follower: an identical query is already being
                # computed — wait for it (within our own deadline) and
                # take its cached answer instead of repeating the work.
                leader_event.wait(timeout=budget.remaining()
                                  if budget.bounded else None)
                hit = self.cache.get(key, self.shards.version)
                if hit is not None:
                    self.metrics.counter("queries.coalesced").increment()
                    self.metrics.counter("queries.served").increment()
                    result = replace(hit, cached=True,
                                     latency=time.perf_counter() - start)
                    self._observe_total(result)
                    return result
                # Leader failed to cache (degraded) or we timed out:
                # fall through and compute for ourselves.

        try:
            return self._compute(sketch, k, budget, key, start)
        finally:
            if flight is not None:
                with self._inflight_lock:
                    self._inflight.pop(flight_key, None)
                flight.set()

    def _compute(self, sketch: Shape, k: int, budget: Deadline,
                 key: Optional[str], start: float) -> ServiceResult:
        # -- shard fan-out (envelope tier) ------------------------------
        stage = time.perf_counter()
        version = self.shards.version
        per_shard = self.pool.map_over(
            lambda shard: shard.query(sketch, k, abort=budget.expired),
            list(self.shards))
        self.metrics.histogram("latency.envelope").observe(
            time.perf_counter() - stage)

        # -- merge ------------------------------------------------------
        stage = time.perf_counter()
        merged = merge_topk([matches for matches, _ in per_shard], k)
        stats = _merge_stats([s for _, s in per_shard])
        self.metrics.histogram("latency.merge").observe(
            time.perf_counter() - stage)

        # -- degradation decision ---------------------------------------
        degraded = budget.bounded and budget.expired() and stats.exhausted
        good = [m for m in merged
                if m.distance <= self.config.match_threshold]
        method = "envelope"
        if degraded or not good:
            stage = time.perf_counter()
            fallback = merge_topk(self.pool.map_over(
                lambda shard: shard.hash_query(sketch, k),
                list(self.shards)), k)
            self.metrics.histogram("latency.fallback").observe(
                time.perf_counter() - stage)
            self.metrics.counter("queries.fallback").increment()
            if fallback:
                merged = fallback
                method = "hashing"

        result = ServiceResult(status=OK, matches=merged, method=method,
                               stats=stats, degraded=degraded,
                               latency=time.perf_counter() - start)
        # Deadline-truncated answers are degraded; caching them would
        # keep serving the degraded answer after load subsides.
        if key is not None and not degraded:
            self.cache.put(key, version, result)
        self.metrics.counter("queries.served").increment()
        self._observe_total(result)
        return result

    def _observe_total(self, result: ServiceResult) -> None:
        self.metrics.histogram("latency.total").observe(result.latency)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Metrics + derived rates + corpus stats, as one plain dict."""
        snap = self.metrics.as_dict()
        counters = snap["counters"]
        total = counters.get("queries.total", 0)
        snap["rates"] = {
            "cache_hit_ratio": self.cache.hit_ratio,
            "shed_ratio": (counters.get("queries.shed", 0) / total
                           if total else 0.0),
            "fallback_ratio": (counters.get("queries.fallback", 0) / total
                               if total else 0.0),
        }
        snap["corpus"] = {
            "shards": self.shards.num_shards,
            "shapes": self.shards.num_shapes,
            "entries": self.shards.num_entries,
            "per_shard_shapes": self.shards.shape_counts(),
        }
        return snap

    def close(self) -> None:
        self.pool.shutdown()

    def __enter__(self) -> "RetrievalService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"RetrievalService(shards={self.shards.num_shards}, "
                f"workers={self.config.workers}, "
                f"shapes={self.shards.num_shapes})")
