"""The embeddable retrieval service: admission → cache → shards → merge.

One query's path through :class:`RetrievalService`:

1. **admission** — take an in-flight slot from the bounded
   :class:`~repro.service.pool.AdmissionQueue`; saturation sheds the
   query with an explicit ``overloaded`` result (never blocks);
2. **cache** — probe the :class:`~repro.service.cache.QueryResultCache`
   under the sketch's canonical (similarity-invariant) signature;
3. **fan-out** — run the envelope matcher on every shard, in parallel
   on the worker pool, each with the query's deadline as its
   cooperative abort;
4. **merge** — per-shard top-k lists merge into the global top-k
   (exact, because shards are disjoint and measures base-independent);
5. **degrade** — if the deadline expired mid-search, or no match beat
   ``match_threshold``, answer from the geometric-hashing tier instead
   (the paper's fallback, repurposed as graceful degradation).

Every stage feeds the :class:`~repro.service.metrics.MetricsRegistry`;
``snapshot()`` returns the whole picture as a plain dict.

**Failure isolation.**  Each shard task runs behind a resilience
wrapper: an exception, a corrupted answer (non-finite distance /
foreign shape id) or a blown per-attempt budget is caught, retried
with capped exponential backoff + jitter, and — once a per-shard
:class:`~repro.service.breaker.CircuitBreaker` trips — skipped
outright until the cooldown's half-open probe succeeds.  A shard that
stays broken is *excluded*, not fatal: the query completes from the
surviving shards (exact over them, since shards are disjoint), the
broken shard contributes its constant-cost hashing tier when that
still works, and the result carries ``status="degraded"`` with the
failed shard ids.  The headline guarantee: any single-shard failure
mode degrades the answer, never the availability.
"""

from __future__ import annotations

import math
import random
import threading
import time
import weakref
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..ann import AnnConfig
from ..core.matcher import Match, MatchStats
from ..core.shapebase import ShapeBase
from ..geometry.polyline import Shape
from .breaker import BreakerConfig, CircuitBreaker
from .cache import QueryResultCache, sketch_signature
from .deadline import Deadline
from .faults import (CorruptShardAnswer, FaultPlan, FaultyShard,
                     ShardTimeoutError)
from .ingest import FoldScheduler
from .metrics import MetricsRegistry
from .pool import AdmissionQueue, WorkerPool
from .procpool import ProcessShardView, ProcessWorkerPool
from .shards import Shard, ShardSet, merge_topk

#: ``ServiceResult.status`` values.
OK = "ok"
OVERLOADED = "overloaded"
DEGRADED = "degraded"

#: The degradation ladder's rungs, cheapest last (tier names appear in
#: metrics counters as ``queries.tier_<name>``).
TIER_EXACT = "exact"
TIER_ANN = "ann"
TIER_HASH = "hash"


@dataclass
class ServiceConfig:
    """Knobs of one :class:`RetrievalService`.

    The geometric parameters (``alpha``, ``beta``, ``backend``,
    ``hash_curves``, ``match_threshold``) mirror
    :class:`~repro.geosir.GeoSIR`; the rest size the serving tier.
    ``deadline`` is the default per-query budget in seconds (``None``
    = unlimited); ``max_pending`` bounds admitted-but-unfinished
    queries (``None`` = unbounded).
    """

    num_shards: int = 4
    workers: int = 2
    cache_capacity: int = 256
    max_pending: Optional[int] = None
    deadline: Optional[float] = None
    alpha: float = 0.1
    beta: float = 0.25
    backend: str = "kdtree"
    hash_curves: int = 50
    neighbor_radius: int = 1
    match_threshold: float = 0.05
    #: -- fault tolerance ------------------------------------------------
    #: Attempts per shard per query (1 = no retry); backoff between
    #: attempts doubles from ``retry_backoff`` up to
    #: ``retry_backoff_max``, randomized by ``retry_jitter`` (the
    #: fraction of the delay that is uniform-random, decorrelating
    #: retry storms; ``retry_seed`` makes the jitter reproducible).
    retry_attempts: int = 2
    retry_backoff: float = 0.02
    retry_backoff_max: float = 0.25
    retry_jitter: float = 0.5
    retry_seed: Optional[int] = None
    #: Per-attempt time budget in seconds (cooperative — enforced via
    #: the matcher's abort hook and checked after the call returns);
    #: ``None`` leaves attempts bounded only by the query deadline.
    attempt_timeout: Optional[float] = None
    #: Answer a failed shard's slice from its hashing tier (approximate
    #: but constant-cost) instead of dropping it from the merge.
    shard_hash_fallback: bool = True
    #: Per-shard circuit breaker tuning; ``None`` disables breakers.
    breaker: Optional[BreakerConfig] = field(default_factory=BreakerConfig)
    #: Deterministic fault injection (chaos testing); see
    #: :mod:`repro.service.faults` and ``serve-bench --chaos``.
    fault_plan: Optional[FaultPlan] = None
    #: -- approximate tier ------------------------------------------------
    #: Enable the LSH-pruned middle rung of the degradation ladder by
    #: providing an :class:`repro.ann.AnnConfig`; ``None`` keeps the
    #: original two-tier behaviour (exact -> hashing).
    ann: Optional[AnnConfig] = None
    #: ``"auto"`` picks the tier per query from the deadline's
    #: remaining budget (exact above ``ann_exact_budget`` seconds, ANN
    #: above ``ann_hash_budget``, the hash tier below that);
    #: ``"always"`` routes every query through the ANN tier — the mode
    #: benchmarks and ``query --ann`` use.
    ann_mode: str = "auto"
    ann_exact_budget: float = 0.05
    ann_hash_budget: float = 0.002
    #: -- execution tier ---------------------------------------------------
    #: ``"thread"`` runs shard fan-out on the worker thread pool (the
    #: original mode — fine until the exact matcher saturates the
    #: GIL); ``"process"`` serves matcher/ANN ops from ``processes``
    #: worker processes attached zero-copy to published shard
    #: snapshots (see :mod:`repro.service.procpool`).
    execution: str = "thread"
    processes: int = 2
    #: Directory for published per-shard snapshot files in process
    #: mode; ``None`` publishes through anonymous shared-memory
    #: segments instead (no filesystem traffic).
    snapshot_dir: Optional[str] = None
    #: ``multiprocessing`` start method for the worker processes;
    #: ``None`` = ``REPRO_PROCPOOL_START`` env or the platform default
    #: (``fork`` on linux).
    start_method: Optional[str] = None
    #: -- streaming write path ---------------------------------------------
    #: ``streaming=True`` moves index folds off the ingest path onto a
    #: background :class:`~repro.service.ingest.FoldScheduler` (queries
    #: answer from the brute tails in the interim) and arms ingest
    #: backpressure: a batch waits (bounded by
    #: ``ingest_backpressure_timeout`` seconds) while the summed
    #: unfolded tail exceeds ``ingest_max_delta`` points or the
    #: admission queue is saturated, so a write burst cannot starve the
    #: read path of either index quality or admission slots.
    streaming: bool = False
    fold_interval: float = 0.05
    folds_per_cycle: int = 1
    ingest_max_delta: int = 4096
    ingest_backpressure_timeout: float = 1.0
    #: Process-mode publication cadence: pure-append version bumps ship
    #: as row deltas over the worker pipes; every N-th consecutive
    #: delta round (or any removal) triggers a compacting full
    #: republish instead.
    publish_compact_every: int = 16


@dataclass
class ServiceResult:
    """Outcome of one service query.

    ``status`` is ``"ok"``, ``"overloaded"`` (shed at admission — no
    retrieval was attempted) or ``"degraded"`` (one or more shards
    failed; the answer is exact over the surviving shards, listed-by-
    omission in ``failed_shards``, plus any hash-tier salvage from the
    broken ones).  ``method`` records which tier answered:
    ``"envelope"`` (exact search), ``"ann"`` (LSH-pruned exact),
    ``"hashing"`` (degraded / fallback) or ``"none"`` (shed or empty
    corpus).  The ``degraded`` *flag* keeps its original meaning — the
    deadline forced a cheaper tier than the config's best — independent
    of shard failures.
    """

    status: str
    matches: List[Match] = field(default_factory=list)
    method: str = "none"
    stats: MatchStats = field(default_factory=MatchStats)
    cached: bool = False
    degraded: bool = False       # deadline forced the hashing tier
    latency: float = 0.0         # seconds, as measured by the service
    failed_shards: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == OK

    @property
    def overloaded(self) -> bool:
        return self.status == OVERLOADED

    @property
    def partial(self) -> bool:
        """True when one or more shards failed to answer exactly."""
        return bool(self.failed_shards)

    @property
    def best(self) -> Optional[Match]:
        return self.matches[0] if self.matches else None


@dataclass
class SimilarResult:
    """Outcome of one ``shape_similar`` leaf served by the service.

    ``shape_ids`` is the union over the surviving shards (exact when
    ``failed_shards`` is empty, since shards are disjoint); the algebra
    engine consumes these through
    :meth:`RetrievalService.similar_shapes_batch`.
    """

    shape_ids: frozenset = frozenset()
    candidates_evaluated: int = 0
    cached: bool = False
    failed_shards: List[int] = field(default_factory=list)

    @property
    def partial(self) -> bool:
        return bool(self.failed_shards)


@dataclass
class _ShardOutcome:
    """What one shard's resilient call produced (never an exception)."""

    shard_index: int
    value: Any = None            # op result when the call succeeded
    failed: bool = False
    error: Optional[str] = None
    attempts: int = 0
    breaker_skipped: bool = False


def _merge_stats(per_shard: Sequence[MatchStats]) -> MatchStats:
    """Aggregate work accounting across shards (sums and flags)."""
    merged = MatchStats()
    for stats in per_shard:
        merged.iterations += stats.iterations
        merged.triangles_queried += stats.triangles_queried
        merged.vertices_reported += stats.vertices_reported
        merged.vertices_processed += stats.vertices_processed
        merged.candidates_evaluated += stats.candidates_evaluated
        merged.epsilons.extend(stats.epsilons)
        for key, seconds in stats.timings.items():
            merged.timings[key] = merged.timings.get(key, 0.0) + seconds
    merged.guaranteed = bool(per_shard) and \
        all(s.guaranteed for s in per_shard)
    merged.exhausted = any(s.exhausted for s in per_shard)
    return merged


class RetrievalService:
    """Concurrent, sharded, cached retrieval over a GeoSIR corpus."""

    def __init__(self, shards: ShardSet, config: Optional[ServiceConfig]
                 = None, metrics: Optional[MetricsRegistry] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.config = config or ServiceConfig()
        if self.config.ann_mode not in ("auto", "always"):
            raise ValueError("ann_mode must be 'auto' or 'always'")
        if self.config.execution not in ("thread", "process"):
            raise ValueError("execution must be 'thread' or 'process'")
        self.shards = shards
        self.metrics = metrics or MetricsRegistry()
        self.cache = QueryResultCache(self.config.cache_capacity)
        self.admission = AdmissionQueue(self.config.max_pending)
        self._procpool: Optional[ProcessWorkerPool] = None
        if self.config.execution == "process":
            self._procpool = ProcessWorkerPool(
                processes=self.config.processes,
                workers=self.config.workers,
                publish_dir=self.config.snapshot_dir,
                start_method=self.config.start_method,
                backend=self.config.backend, beta=self.config.beta,
                hash_curves=self.config.hash_curves,
                neighbor_radius=self.config.neighbor_radius,
                ann=self.config.ann,
                compact_every=self.config.publish_compact_every)
            self.pool: WorkerPool = self._procpool
        else:
            self.pool = WorkerPool(self.config.workers)
        # Single-flight: concurrent identical queries coalesce onto one
        # computation (thundering-herd protection for hot sketches).
        self._inflight: Dict[Tuple[str, int], threading.Event] = {}
        self._inflight_lock = threading.Lock()
        self._closed = False
        self._close_lock = threading.Lock()
        self._clock = clock
        self._started_at = clock()
        #: Where this corpus came from; ``from_snapshot`` records the
        #: file so ``/stats`` and ``/readyz`` can name it.
        self.snapshot_source: Optional[str] = None
        self._breakers: Dict[int, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        self._retry_rng = random.Random(self.config.retry_seed)
        self._retry_lock = threading.Lock()
        # Algebra engines mounted on this service (weakly held): their
        # work counters roll up into snapshot()["algebra"].
        self._engines: "weakref.WeakSet" = weakref.WeakSet()
        self._fold_scheduler: Optional[FoldScheduler] = None
        if self.config.streaming:
            self._fold_scheduler = FoldScheduler(
                self.shards, self.metrics,
                interval=self.config.fold_interval,
                folds_per_cycle=self.config.folds_per_cycle)
            self._fold_scheduler.start()
        self.metrics.gauge("queue.pending", lambda: self.admission.pending)
        self.metrics.gauge("cache.size", lambda: len(self.cache))
        self.metrics.gauge("ingest.pending_delta",
                           lambda: self.shards.delta_points)

    # ------------------------------------------------------------------
    # Construction / corpus management
    # ------------------------------------------------------------------
    @classmethod
    def from_base(cls, base: ShapeBase, config: Optional[ServiceConfig]
                  = None, metrics: Optional[MetricsRegistry] = None
                  ) -> "RetrievalService":
        """Shard an existing :class:`ShapeBase` and serve it.

        The base's ``alpha``/``backend`` win over the config's (the
        corpus was built with them); shapes keep their ids.
        """
        config = config or ServiceConfig()
        shard_set = ShardSet.from_base(
            base, num_shards=config.num_shards, beta=config.beta,
            hash_curves=config.hash_curves,
            neighbor_radius=config.neighbor_radius, ann=config.ann)
        service = cls(shard_set, config, metrics)
        service.warm()
        return service

    @classmethod
    def from_snapshot(cls, path, config: Optional[ServiceConfig] = None,
                      metrics: Optional[MetricsRegistry] = None, *,
                      mmap: bool = False) -> "RetrievalService":
        """Cold-start a service straight from a snapshot file.

        Loads the base (a v3 snapshot materializes with zero
        re-normalization), shards it, and warms every shard's kd-tree
        and hash table in parallel on the service's worker pool — the
        whole path from file to first answered query.  ``mmap=True``
        maps the snapshot read-only instead of copying it into the
        heap (v3/v4 files); with ``execution="process"`` the workers
        attach zero-copy regardless, through the pool's own
        publications.
        """
        from ..storage.persist import load_base
        config = config or ServiceConfig()
        base = load_base(path, backend=config.backend, mmap=mmap)
        service = cls.from_base(base, config, metrics)
        service.snapshot_source = str(path)
        return service

    def reload(self, base: ShapeBase) -> None:
        """Re-shard from a mutated base; cache and metrics survive.

        The cache is version-keyed, so entries computed against the
        old corpus become unreachable the moment the new shard set's
        version differs; we also clear eagerly to free memory.
        """
        self.shards = ShardSet.from_base(
            base, num_shards=self.config.num_shards, beta=self.config.beta,
            hash_curves=self.config.hash_curves,
            neighbor_radius=self.config.neighbor_radius,
            ann=self.config.ann)
        if self._fold_scheduler is not None:
            # Repoint the background folder at the fresh shard set (the
            # old one is garbage now) and keep folds off the write path.
            self._fold_scheduler.shards = self.shards
            self.shards.set_auto_fold(False)
        self.cache.invalidate()
        self.warm()

    def ingest(self, shapes: Sequence[Shape],
               image_id: Optional[int] = None) -> List[int]:
        """Add shapes (routed to their shards); invalidates the cache.

        With ``streaming`` on, the batch first clears backpressure
        (:meth:`_ingest_backpressure`): it waits while the unfolded
        delta exceeds the configured budget or the admission queue is
        saturated — the coupling that keeps a write burst from
        outrunning the background folds or starving readers of
        admission slots.  The wait is bounded; after
        ``ingest_backpressure_timeout`` seconds the batch proceeds
        anyway (ingest degrades to slower, never to stuck).
        """
        self._ingest_backpressure()
        ids = self.shards.add_shapes(shapes, image_id=image_id)
        self.cache.invalidate()
        self.metrics.counter("ingest.shapes").increment(len(ids))
        self.metrics.histogram("ingest.batch_size").observe(len(shapes))
        if self._fold_scheduler is not None:
            self._fold_scheduler.poke()
        return ids

    def _ingest_backpressure(self) -> None:
        """Bounded wait until the service can absorb another batch."""
        if not self.config.streaming:
            return
        deadline = self._clock() + self.config.ingest_backpressure_timeout
        waited = False
        while not self._closed:
            over_delta = self.shards.delta_points > \
                self.config.ingest_max_delta
            max_pending = self.config.max_pending
            saturated = max_pending is not None and \
                self.admission.pending >= max_pending
            if not over_delta and not saturated:
                return
            if not waited:
                waited = True
                self.metrics.counter(
                    "ingest.backpressure_waits").increment()
            if over_delta and self._fold_scheduler is not None:
                self._fold_scheduler.poke()
            if self._clock() >= deadline:
                return
            time.sleep(0.002)

    def remove(self, shape_id: int) -> None:
        """Remove one shape from its shard; invalidates the cache."""
        self.shards.remove_shape(shape_id)
        self.cache.invalidate()
        self.metrics.counter("ingest.removed").increment()

    def warm(self) -> None:
        """Build all shard structures before admitting traffic.

        In process mode this additionally publishes the shards and
        attaches every worker (their own warm-up), so the first query
        pays no snapshot-encode or index-build latency.
        """
        self.shards.warm(pool=self.pool,
                         execution=self.config.execution)

    @property
    def fold_scheduler(self) -> Optional[FoldScheduler]:
        """The background folder (``None`` unless ``streaming``)."""
        return self._fold_scheduler

    def quiesce_ingest(self) -> int:
        """Fold every overgrown tail now (checkpoint / shutdown aid).

        Returns the number of folds performed.  With the scheduler off
        this folds inline; with it on, this simply drives the same
        budgeted fold loop to completion from the caller's thread —
        safe because :meth:`Shard.fold` is idempotent and swap-guarded.
        """
        if self._fold_scheduler is not None:
            return self._fold_scheduler.drain()
        folded = 0
        for shard in self.shards:
            if shard.needs_fold() and shard.fold():
                folded += 1
        return folded

    # ------------------------------------------------------------------
    # Query algebra (paper Section 5 at the service tier)
    # ------------------------------------------------------------------
    def query_engine(self, similarity_threshold: Optional[float] = None,
                     angle_tolerance: float = 0.15, *,
                     planner: bool = True,
                     cache_capacity: Optional[int] = None):
        """A :class:`~repro.query.executor.QueryEngine` over the shards.

        The engine's similarity leaves run through
        :meth:`similar_shapes_batch` — resilient, batched, cached —
        and its work counters appear in ``snapshot()["algebra"]``.
        ``similarity_threshold`` defaults to the config's
        ``match_threshold``; ``cache_capacity`` to the config's.
        """
        from ..query.executor import QueryEngine
        if similarity_threshold is None:
            similarity_threshold = self.config.match_threshold
        if cache_capacity is None:
            cache_capacity = self.config.cache_capacity
        engine = QueryEngine(service=self,
                             similarity_threshold=similarity_threshold,
                             angle_tolerance=angle_tolerance,
                             planner=planner,
                             cache_capacity=cache_capacity)
        self._engines.add(engine)
        return engine

    def similar_shapes_batch(self, sketches: Sequence[Shape],
                             threshold: Optional[float] = None,
                             deadline: Optional[float] = None
                             ) -> List[SimilarResult]:
        """``shape_similar(Q)`` for many sketches across all shards.

        The algebra engine's leaf primitive: each sketch's similarity
        set is the union of per-shard threshold queries (exact, shards
        being disjoint).  Results are cached under the similarity-
        invariant signature at the current shard version, identical
        sketches within the batch coalesce, and the remaining misses
        fan out with one batched resilient call per shard — a failed
        shard drops out of the union (``failed_shards`` notes it) and
        the partial answer is *not* cached.
        """
        if self._closed:
            raise RuntimeError(
                "RetrievalService is closed; create a new service")
        if threshold is None:
            threshold = self.config.match_threshold
        self._ensure_processes()
        sketches = list(sketches)
        budget = Deadline(deadline)
        version = self.shards.version
        results: List[Optional[SimilarResult]] = [None] * len(sketches)
        self.metrics.counter("algebra.leaf_queries").increment(
            len(sketches))

        with self.metrics.timer("latency.algebra_leaf"):
            keys = [sketch_signature(sketch, kind="similar",
                                     parameter=f"{threshold:.12g}")
                    for sketch in sketches]
            unique: List[int] = []
            leader_of: Dict[str, int] = {}
            for position, key in enumerate(keys):
                if key in leader_of:
                    continue
                if self.cache.enabled:
                    hit = self.cache.get(key, version)
                    if hit is not None:
                        self.metrics.counter(
                            "algebra.leaf_cache_hits").increment()
                        results[position] = replace(hit, cached=True)
                        continue
                leader_of[key] = position
                unique.append(position)

            if unique:
                miss_sketches = [sketches[position]
                                 for position in unique]
                shards = self._shard_views()
                outcomes = self.pool.map_over(
                    lambda shard: self._resilient_call(
                        shard, budget,
                        lambda abort, shard=shard:
                            shard.query_threshold_batch(
                                miss_sketches, threshold, abort=abort),
                        lambda value, shard=shard: [
                            self._validate_matches(shard, matches)
                            for matches, _ in value]),
                    shards)
                survivors = [o for o in outcomes if not o.failed]
                failed_ids = sorted(o.shard_index for o in outcomes
                                    if o.failed)
                if failed_ids:
                    self.metrics.counter(
                        "algebra.leaf_degraded").increment(len(unique))
                for offset, position in enumerate(unique):
                    ids: set = set()
                    candidates = 0
                    for outcome in survivors:
                        matches, stats = outcome.value[offset]
                        ids.update(m.shape_id for m in matches)
                        candidates += stats.candidates_evaluated
                    leaf = SimilarResult(shape_ids=frozenset(ids),
                                         candidates_evaluated=candidates,
                                         failed_shards=list(failed_ids))
                    if not failed_ids and not budget.expired():
                        self.cache.put(keys[position], version, leaf)
                    results[position] = leaf

            for position, key in enumerate(keys):
                if results[position] is None:
                    leader = results[leader_of[key]]
                    results[position] = replace(leader, cached=True)
        return results

    # ------------------------------------------------------------------
    # Fault tolerance: shard views, breakers, resilient execution
    # ------------------------------------------------------------------
    def _shard_views(self) -> List[Shard]:
        """The shards as served — process proxies and fault wrappers.

        In process mode each shard becomes a
        :class:`~repro.service.procpool.ProcessShardView` forwarding
        matcher/ANN ops to its worker process; fault injection wraps
        *outside* the proxy so chaos plans haunt the same surface in
        both execution modes.
        """
        shards = list(self.shards)
        if self._procpool is not None:
            shards = [ProcessShardView(self._procpool, shard)
                      for shard in shards]
        if self.config.fault_plan is None:
            return shards
        return [FaultyShard(shard, self.config.fault_plan)
                for shard in shards]

    @property
    def procpool(self) -> Optional[ProcessWorkerPool]:
        """The process worker pool (``execution="process"`` only).

        ``None`` in thread mode.  Chaos hooks (``kill_worker``) and
        introspection (``alive_workers``, ``info``) live here.
        """
        return self._procpool

    def _ensure_processes(self) -> None:
        """Converge worker processes onto the current shard version.

        Publish + re-attach happens lazily before fan-out (not on
        every ingest) so a burst of mutations costs one republish;
        a no-op version check when already in sync.
        """
        if self._procpool is not None:
            self._procpool.sync(self.shards)

    def _breaker_for(self, index: int) -> Optional[CircuitBreaker]:
        if self.config.breaker is None:
            return None
        breaker = self._breakers.get(index)
        if breaker is None:
            with self._breakers_lock:
                breaker = self._breakers.get(index)
                if breaker is None:
                    breaker = CircuitBreaker(self.config.breaker,
                                             clock=self._clock)
                    self._breakers[index] = breaker
                    self.metrics.gauge(f"breaker.shard{index}.state",
                                       breaker.state_code)
        return breaker

    @staticmethod
    def _validate_matches(shard: Shard, matches: Sequence[Match]) -> None:
        """Reject corrupted shard answers before they reach the merge.

        A well-formed answer has finite non-negative distances and
        shape ids the shard actually owns; anything else means the
        shard's matcher is lying (bit rot, a bad index rebuild, an
        injected ``corrupt``/``wrong_shard`` fault) and must count as
        a shard failure, not poison the global top-k.
        """
        owned = shard.base.shapes
        for match in matches:
            if not math.isfinite(match.distance) or match.distance < 0:
                raise CorruptShardAnswer(
                    f"shard {shard.index} returned a non-finite "
                    f"distance for shape {match.shape_id}")
            if match.shape_id not in owned:
                raise CorruptShardAnswer(
                    f"shard {shard.index} returned foreign shape id "
                    f"{match.shape_id}")

    def _backoff_delay(self, attempt: int, budget: Deadline) -> float:
        """Capped exponential backoff with decorrelating jitter."""
        config = self.config
        delay = min(config.retry_backoff_max,
                    config.retry_backoff * (2 ** (attempt - 1)))
        if config.retry_jitter > 0:
            with self._retry_lock:
                draw = self._retry_rng.random()
            delay *= (1.0 - config.retry_jitter) + \
                config.retry_jitter * draw
        if budget.bounded:
            delay = min(delay, budget.remaining())
        return max(0.0, delay)

    def _resilient_call(self, shard: Shard, budget: Deadline,
                        op: Callable[[Callable[[], bool]], Any],
                        validate: Callable[[Any], None]) -> _ShardOutcome:
        """Run one shard operation with isolation, retries and breaker.

        ``op`` receives the attempt's abort callback (query deadline OR
        per-attempt budget) and returns the shard's answer; ``validate``
        raises :class:`CorruptShardAnswer` on a mangled one.  Whatever
        happens inside the shard — exception, corruption, timeout — the
        return is a :class:`_ShardOutcome`, never an exception: this is
        the failure-isolation boundary.
        """
        breaker = self._breaker_for(shard.index)
        attempts_allowed = max(1, self.config.retry_attempts)
        attempt_timeout = self.config.attempt_timeout
        outcome = _ShardOutcome(shard_index=shard.index)
        while True:
            if breaker is not None and not breaker.allow():
                outcome.failed = True
                outcome.breaker_skipped = True
                outcome.error = "circuit breaker open"
                self.metrics.counter("shards.breaker_skipped").increment()
                return outcome
            outcome.attempts += 1
            attempt = Deadline(attempt_timeout)

            def aborted() -> bool:
                return budget.expired() or attempt.expired()

            # Process-mode shard proxies read the remaining budget off
            # the abort callback to ship a cooperative deadline across
            # the pipe (inf = unbounded; the proxy maps it to None).
            aborted.remaining = lambda: min(budget.remaining(),
                                            attempt.remaining())

            try:
                value = op(aborted)
                validate(value)
                if attempt.bounded and attempt.expired() \
                        and not budget.expired():
                    raise ShardTimeoutError(
                        f"shard {shard.index} attempt exceeded "
                        f"{attempt_timeout}s")
            except Exception as exc:  # isolation boundary, not a bug trap
                if breaker is not None:
                    breaker.record_failure()
                self.metrics.counter("shards.failures").increment()
                outcome.error = f"{type(exc).__name__}: {exc}"
                if outcome.attempts >= attempts_allowed \
                        or budget.expired():
                    outcome.failed = True
                    return outcome
                self.metrics.counter("shards.retries").increment()
                delay = self._backoff_delay(outcome.attempts, budget)
                if delay > 0:
                    time.sleep(delay)
                continue
            if breaker is not None:
                breaker.record_success()
            outcome.value = value
            outcome.failed = False
            outcome.error = None
            return outcome

    def _guarded_hash(self, shard: Shard, sketch: Shape,
                      k: int) -> List[Match]:
        """The shard's hashing tier, degraded to [] on failure.

        Hash answers get the same validation as matcher answers —
        average distances are finite non-negative exact measures and
        the ids must be the shard's own — so a corrupted hash tier
        contributes nothing rather than poisoning the merge.
        """
        try:
            matches = shard.hash_query(sketch, k)
            self._validate_matches(shard, matches)
            return matches
        except Exception:
            self.metrics.counter("shards.hash_failures").increment()
            return []

    def _salvage_failed(self, failed: Sequence[_ShardOutcome],
                        shard_by_index: Dict[int, Shard], sketch: Shape,
                        k: int) -> List[List[Match]]:
        """Hash-tier answers for the failed shards' slices (maybe [])."""
        if not failed or not self.config.shard_hash_fallback:
            return []
        salvage: List[List[Match]] = []
        for outcome in failed:
            matches = self._guarded_hash(
                shard_by_index[outcome.shard_index], sketch, k)
            if matches:
                self.metrics.counter("shards.hash_salvage").increment()
                salvage.append(matches)
        return salvage

    def _guarded_exact(self, shard: Shard, sketch: Shape, k: int,
                       budget: Deadline) -> Optional[List[Match]]:
        """One shard's envelope tier as a salvage path (None on failure).

        Used when the *ANN* tier of a shard fails: the shard's exact
        matcher is still healthy structure-wise, so degrading the
        shard to exact scoring keeps its slice in the answer at full
        quality (just slower) — only if that fails too does the
        constant-cost hash tier take over.
        """
        try:
            matches, _ = shard.query(sketch, k, abort=budget.expired)
            self._validate_matches(shard, matches)
            return matches
        except Exception:
            self.metrics.counter("shards.exact_salvage_failures") \
                .increment()
            return None

    def _salvage_failed_ann(self, failed: Sequence[_ShardOutcome],
                            shard_by_index: Dict[int, Shard],
                            sketch: Shape, k: int, budget: Deadline
                            ) -> List[List[Match]]:
        """Failed-ANN shards degrade to exact, then hash-tier, scoring."""
        if not failed or not self.config.shard_hash_fallback:
            return []
        salvage: List[List[Match]] = []
        for outcome in failed:
            shard = shard_by_index[outcome.shard_index]
            matches = self._guarded_exact(shard, sketch, k, budget)
            if matches is not None:
                self.metrics.counter("shards.ann_exact_salvage") \
                    .increment()
            else:
                matches = self._guarded_hash(shard, sketch, k)
                if matches:
                    self.metrics.counter("shards.hash_salvage") \
                        .increment()
            if matches:
                salvage.append(matches)
        return salvage

    # ------------------------------------------------------------------
    # Tier selection (the degradation ladder)
    # ------------------------------------------------------------------
    def _select_tier(self, budget: Deadline) -> str:
        """Pick the ladder rung a query's remaining budget can afford.

        Without an ANN config the ladder has its original two rungs
        (exact now, hashing on expiry).  With one, ``"always"`` pins
        the ANN tier (measurement mode) while ``"auto"`` spends the
        budget greedily: exact when there is comfortably enough time
        (``>= ann_exact_budget``), the LSH-pruned tier when at least
        ``ann_hash_budget`` remains, and the constant-cost hash tier
        for whatever is left.
        """
        if self.config.ann is None:
            return TIER_EXACT
        if self.config.ann_mode == "always":
            return TIER_ANN
        if not budget.bounded:
            return TIER_EXACT
        remaining = budget.remaining()
        if remaining >= self.config.ann_exact_budget:
            return TIER_EXACT
        if remaining >= self.config.ann_hash_budget:
            return TIER_ANN
        return TIER_HASH

    def _hash_only(self, sketch: Shape, k: int, budget: Deadline,
                   start: float) -> ServiceResult:
        """Answer straight from the hash tier (the ladder's last rung).

        Taken when the remaining budget cannot even fund candidate
        scoring: constant-cost per shard, always approximate, flagged
        ``degraded`` and never cached (the next, better-funded query
        should recompute).
        """
        shards = self._shard_views()
        stage = time.perf_counter()
        fallback = merge_topk(self.pool.map_over(
            lambda shard: self._guarded_hash(shard, sketch, k),
            shards), k)
        self.metrics.histogram("latency.fallback").observe(
            time.perf_counter() - stage)
        self.metrics.counter("queries.fallback").increment()
        self.metrics.counter("queries.served").increment()
        result = ServiceResult(
            status=OK, matches=fallback,
            method="hashing" if fallback else "none",
            degraded=True, latency=time.perf_counter() - start)
        self._observe_total(result)
        return result

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def retrieve(self, sketch: Shape, k: int = 1,
                 deadline: Optional[float] = None) -> ServiceResult:
        """Serve one query end to end (admission included)."""
        if self._closed:
            raise RuntimeError(
                "RetrievalService is closed; create a new service")
        self._ensure_processes()
        self.metrics.counter("queries.total").increment()
        if not self.admission.try_admit():
            self.metrics.counter("queries.shed").increment()
            return ServiceResult(status=OVERLOADED)
        try:
            return self._admitted_retrieve(sketch, k, deadline)
        finally:
            self.admission.release()

    def retrieve_batch(self, sketches: Sequence[Shape], k: int = 1,
                       deadline: Optional[float] = None
                       ) -> List[ServiceResult]:
        """Serve many sketches through the amortized batch path.

        Admission happens at *submission* time — the bounded queue is
        the backlog, so a batch larger than the remaining slots sheds
        its tail immediately rather than queueing it invisibly; the
        admitted sketches hold their slots until the batch completes.
        Each admitted sketch gets one cache probe; identical misses
        coalesce onto one computation, and the remaining unique misses
        are answered by *batched* per-shard matcher calls pipelined on
        the worker pool (one scratch checkout per shard for the whole
        batch).  ``deadline`` budgets the batch as a whole.  Results
        come back in input order, identical to per-sketch
        :meth:`retrieve` calls.
        """
        if self._closed:
            raise RuntimeError(
                "RetrievalService is closed; create a new service")
        self._ensure_processes()
        sketches = list(sketches)
        results: List[Optional[ServiceResult]] = [None] * len(sketches)
        admitted: List[int] = []
        for position, _ in enumerate(sketches):
            self.metrics.counter("queries.total").increment()
            if not self.admission.try_admit():
                self.metrics.counter("queries.shed").increment()
                results[position] = ServiceResult(status=OVERLOADED)
            else:
                admitted.append(position)
        if not admitted:
            return results
        try:
            self._retrieve_admitted_batch(sketches, k, deadline,
                                          admitted, results)
        finally:
            for _ in admitted:
                self.admission.release()
        return results

    def _retrieve_admitted_batch(self, sketches: List[Shape], k: int,
                                 deadline: Optional[float],
                                 admitted: List[int],
                                 results: List[Optional[ServiceResult]]
                                 ) -> None:
        start = time.perf_counter()
        if deadline is None:
            deadline = self.config.deadline
        budget = Deadline(deadline)
        version = self.shards.version

        # -- tier selection (one rung for the whole batch) --------------
        tier = self._select_tier(budget)
        self.metrics.counter(f"queries.tier_{tier}").increment(
            len(admitted))
        if tier == TIER_HASH:
            for position in admitted:
                results[position] = self._hash_only(
                    sketches[position], k, budget, start)
            return
        cache_kind = "topk" if tier == TIER_EXACT else "topk-ann"

        # -- cache probe + intra-batch coalescing -----------------------
        keys: Dict[int, str] = {}
        unique: List[int] = []
        followers: Dict[int, List[int]] = {}
        leader_of: Dict[str, int] = {}
        for position in admitted:
            if self.cache.enabled:
                stage = time.perf_counter()
                key = sketch_signature(sketches[position],
                                       kind=cache_kind, parameter=k)
                hit = self.cache.get(key, version)
                self.metrics.histogram("latency.cache").observe(
                    time.perf_counter() - stage)
                keys[position] = key
                if hit is not None:
                    self.metrics.counter("queries.cache_hits").increment()
                    self.metrics.counter("queries.served").increment()
                    result = replace(hit, cached=True,
                                     latency=time.perf_counter() - start)
                    self._observe_total(result)
                    results[position] = result
                    continue
                leader = leader_of.get(key)
                if leader is not None:
                    followers.setdefault(leader, []).append(position)
                    continue
                leader_of[key] = position
            unique.append(position)
        if not unique:
            return

        # -- shard fan-out: one batched resilient call per shard --------
        stage = time.perf_counter()
        miss_sketches = [sketches[position] for position in unique]
        shards = self._shard_views()
        shard_by_index = {shard.index: shard for shard in shards}
        if tier == TIER_ANN:
            def shard_op(shard):
                return lambda abort: shard.ann_query_batch(
                    miss_sketches, k, abort=abort)
        else:
            def shard_op(shard):
                return lambda abort: shard.query_batch(
                    miss_sketches, k, abort=abort)
        outcomes = self.pool.map_over(
            lambda shard: self._resilient_call(
                shard, budget, shard_op(shard),
                lambda value, shard=shard: [
                    self._validate_matches(shard, matches)
                    for matches, _ in value]),
            shards)
        self.metrics.histogram(
            "latency.ann" if tier == TIER_ANN else "latency.envelope"
        ).observe(time.perf_counter() - stage)
        survivors = [o for o in outcomes if not o.failed]
        failed = [o for o in outcomes if o.failed]
        failed_ids = sorted(o.shard_index for o in failed)
        if failed_ids:
            self.metrics.counter("queries.degraded").increment(
                len(unique))
        if tier == TIER_ANN:
            for outcome in survivors:
                for _, per_stats in outcome.value:
                    self.metrics.histogram("ann.candidates").observe(
                        per_stats.candidates_evaluated)

        # -- per-sketch merge, degradation, caching ---------------------
        for offset, position in enumerate(unique):
            answers = [o.value[offset] for o in survivors]
            stage = time.perf_counter()
            if tier == TIER_ANN:
                salvage = self._salvage_failed_ann(
                    failed, shard_by_index, sketches[position], k,
                    budget)
            else:
                salvage = self._salvage_failed(failed, shard_by_index,
                                               sketches[position], k)
            merged = merge_topk([matches for matches, _ in answers]
                                + salvage, k)
            stats = _merge_stats([s for _, s in answers])
            self.metrics.histogram("latency.merge").observe(
                time.perf_counter() - stage)
            degraded = budget.bounded and budget.expired() and \
                stats.exhausted
            good = [m for m in merged
                    if m.distance <= self.config.match_threshold]
            method = "envelope" if tier == TIER_EXACT else "ann"
            if degraded or not good:
                stage = time.perf_counter()
                sketch = sketches[position]
                fallback = merge_topk(self.pool.map_over(
                    lambda shard: self._guarded_hash(shard, sketch, k),
                    shards), k)
                self.metrics.histogram("latency.fallback").observe(
                    time.perf_counter() - stage)
                self.metrics.counter("queries.fallback").increment()
                if fallback:
                    merged = fallback
                    method = "hashing"
            result = ServiceResult(status=DEGRADED if failed_ids else OK,
                                   matches=merged,
                                   method=method, stats=stats,
                                   degraded=degraded,
                                   failed_shards=list(failed_ids),
                                   latency=time.perf_counter() - start)
            key = keys.get(position)
            if key is not None and not degraded and not failed_ids:
                self.cache.put(key, version, result)
            self.metrics.counter("queries.served").increment()
            self._observe_total(result)
            results[position] = result
            for follower in followers.get(position, ()):
                dup = replace(result, cached=True,
                              latency=time.perf_counter() - start)
                self.metrics.counter("queries.coalesced").increment()
                self.metrics.counter("queries.served").increment()
                self._observe_total(dup)
                results[follower] = dup

    # ------------------------------------------------------------------
    def _admitted_retrieve(self, sketch: Shape, k: int,
                           deadline_seconds: Optional[float]
                           ) -> ServiceResult:
        start = time.perf_counter()
        if deadline_seconds is None:
            deadline_seconds = self.config.deadline
        budget = Deadline(deadline_seconds)

        # -- tier selection (degradation ladder) ------------------------
        tier = self._select_tier(budget)
        self.metrics.counter(f"queries.tier_{tier}").increment()
        if tier == TIER_HASH:
            return self._hash_only(sketch, k, budget, start)

        # -- cache probe (with single-flight coalescing) ----------------
        # ANN answers are cached under their own signature kind: they
        # are *not* interchangeable with exact answers, so the two
        # tiers must never alias in the cache.
        cache_kind = "topk" if tier == TIER_EXACT else "topk-ann"
        key = None
        flight = None
        flight_key = None
        if self.cache.enabled:
            stage = time.perf_counter()
            key = sketch_signature(sketch, kind=cache_kind, parameter=k)
            hit = self.cache.get(key, self.shards.version)
            self.metrics.histogram("latency.cache").observe(
                time.perf_counter() - stage)
            if hit is not None:
                self.metrics.counter("queries.cache_hits").increment()
                self.metrics.counter("queries.served").increment()
                result = replace(hit, cached=True,
                                 latency=time.perf_counter() - start)
                self._observe_total(result)
                return result
            flight_key = (key, self.shards.version)
            with self._inflight_lock:
                leader_event = self._inflight.get(flight_key)
                if leader_event is None:
                    flight = threading.Event()
                    self._inflight[flight_key] = flight
            if flight is None and leader_event is not None:
                # Follower: an identical query is already being
                # computed — wait for it (within our own deadline) and
                # take its cached answer instead of repeating the work.
                leader_event.wait(timeout=budget.remaining()
                                  if budget.bounded else None)
                hit = self.cache.get(key, self.shards.version)
                if hit is not None:
                    self.metrics.counter("queries.coalesced").increment()
                    self.metrics.counter("queries.served").increment()
                    result = replace(hit, cached=True,
                                     latency=time.perf_counter() - start)
                    self._observe_total(result)
                    return result
                # Leader failed to cache (degraded) or we timed out:
                # fall through and compute for ourselves.

        try:
            return self._compute(sketch, k, budget, key, start, tier)
        finally:
            if flight is not None:
                with self._inflight_lock:
                    self._inflight.pop(flight_key, None)
                flight.set()

    def _compute(self, sketch: Shape, k: int, budget: Deadline,
                 key: Optional[str], start: float,
                 tier: str = TIER_EXACT) -> ServiceResult:
        # -- shard fan-out (selected tier, isolated per shard) ----------
        stage = time.perf_counter()
        version = self.shards.version
        shards = self._shard_views()
        shard_by_index = {shard.index: shard for shard in shards}
        if tier == TIER_ANN:
            def shard_op(shard):
                return lambda abort: shard.ann_query(sketch, k,
                                                     abort=abort)
        else:
            def shard_op(shard):
                return lambda abort: shard.query(sketch, k, abort=abort)
        outcomes = self.pool.map_over(
            lambda shard: self._resilient_call(
                shard, budget, shard_op(shard),
                lambda value, shard=shard: self._validate_matches(
                    shard, value[0])),
            shards)
        self.metrics.histogram(
            "latency.ann" if tier == TIER_ANN else "latency.envelope"
        ).observe(time.perf_counter() - stage)
        survivors = [o for o in outcomes if not o.failed]
        failed = [o for o in outcomes if o.failed]
        failed_ids = sorted(o.shard_index for o in failed)
        if failed_ids:
            self.metrics.counter("queries.degraded").increment()
        if tier == TIER_ANN:
            for outcome in survivors:
                self.metrics.histogram("ann.candidates").observe(
                    outcome.value[1].candidates_evaluated)

        # -- merge (plus salvage for failed shards) ---------------------
        stage = time.perf_counter()
        if tier == TIER_ANN:
            salvage = self._salvage_failed_ann(failed, shard_by_index,
                                               sketch, k, budget)
        else:
            salvage = self._salvage_failed(failed, shard_by_index,
                                           sketch, k)
        merged = merge_topk([o.value[0] for o in survivors] + salvage, k)
        stats = _merge_stats([o.value[1] for o in survivors])
        self.metrics.histogram("latency.merge").observe(
            time.perf_counter() - stage)

        # -- degradation decision ---------------------------------------
        degraded = budget.bounded and budget.expired() and stats.exhausted
        good = [m for m in merged
                if m.distance <= self.config.match_threshold]
        method = "envelope" if tier == TIER_EXACT else "ann"
        if degraded or not good:
            stage = time.perf_counter()
            fallback = merge_topk(self.pool.map_over(
                lambda shard: self._guarded_hash(shard, sketch, k),
                shards), k)
            self.metrics.histogram("latency.fallback").observe(
                time.perf_counter() - stage)
            self.metrics.counter("queries.fallback").increment()
            if fallback:
                merged = fallback
                method = "hashing"

        result = ServiceResult(status=DEGRADED if failed_ids else OK,
                               matches=merged, method=method,
                               stats=stats, degraded=degraded,
                               failed_shards=list(failed_ids),
                               latency=time.perf_counter() - start)
        # Deadline-truncated and shard-degraded answers would keep
        # serving the degraded answer after the trouble subsides.
        if key is not None and not degraded and not failed_ids:
            self.cache.put(key, version, result)
        self.metrics.counter("queries.served").increment()
        self._observe_total(result)
        return result

    def _observe_total(self, result: ServiceResult) -> None:
        self.metrics.histogram("latency.total").observe(result.latency)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Metrics + derived rates + corpus stats, as one plain dict."""
        snap = self.metrics.as_dict()
        counters = snap["counters"]
        total = counters.get("queries.total", 0)
        snap["rates"] = {
            "cache_hit_ratio": self.cache.hit_ratio,
            "shed_ratio": (counters.get("queries.shed", 0) / total
                           if total else 0.0),
            "fallback_ratio": (counters.get("queries.fallback", 0) / total
                               if total else 0.0),
            "degraded_ratio": (counters.get("queries.degraded", 0) / total
                               if total else 0.0),
        }
        # Degradation-ladder accounting: how many queries each rung
        # answered, plus the ANN tier's candidate-set-size summary.
        tiers = self.metrics.counters_with_prefix("queries.tier_")
        snap["tiers"] = {
            "counts": {tier: tiers.get(tier, 0)
                       for tier in (TIER_EXACT, TIER_ANN, TIER_HASH)},
            "ann_candidates": snap["histograms"].get("ann.candidates"),
        }
        # Query-algebra accounting: per-operator work counters summed
        # over every engine mounted via query_engine(), plus the leaf
        # traffic the service itself served.
        engines = list(self._engines)
        algebra: Dict[str, int] = {}
        for engine in engines:
            for name, value in engine.counters.as_dict().items():
                algebra[name] = algebra.get(name, 0) + value
        snap["algebra"] = {
            "engines": len(engines),
            "counters": algebra,
            "leaf_queries": counters.get("algebra.leaf_queries", 0),
            "leaf_cache_hits": counters.get("algebra.leaf_cache_hits", 0),
        }
        snap["corpus"] = {
            "shards": self.shards.num_shards,
            "shapes": self.shards.num_shapes,
            "entries": self.shards.num_entries,
            "per_shard_shapes": self.shards.shape_counts(),
        }
        with self._breakers_lock:
            snap["breakers"] = {str(index): breaker.snapshot()
                                for index, breaker
                                in sorted(self._breakers.items())}
        # Streaming write-path accounting: batch sizes, fold costs,
        # backpressure events and the live unfolded-tail size — the
        # numbers `serve-bench --stream` and the HTTP `/stats` endpoint
        # watch to see ingest/query interference.
        snap["ingest"] = {
            "streaming": self.config.streaming,
            "shapes": counters.get("ingest.shapes", 0),
            "removed": counters.get("ingest.removed", 0),
            "folds": counters.get("ingest.folds", 0),
            "backpressure_waits":
                counters.get("ingest.backpressure_waits", 0),
            "pending_delta": self.shards.delta_points,
            "batch_size": snap["histograms"].get("ingest.batch_size"),
            "fold_ms": snap["histograms"].get("ingest.fold_ms"),
        }
        snap["execution"] = self.config.execution
        if self._procpool is not None:
            snap["procpool"] = self._procpool.info()
        snap["uptime_s"] = round(self.uptime(), 3)
        snap["snapshot"] = {"version": self.shards.version,
                            "source": self.snapshot_source}
        return snap

    def uptime(self) -> float:
        """Seconds since this service was constructed."""
        return self._clock() - self._started_at

    def ready(self) -> bool:
        """Readiness: open, corpus attached, every shard warm.

        The HTTP tier's ``/readyz`` answer — true only once every
        shard can serve its best configured tier without build latency
        (in process mode, once the worker pool has attached the
        current shard-set version), so a balancer routing on it never
        sends traffic into a cold or half-built replica.
        """
        if self._closed:
            return False
        if self._procpool is not None:
            info = self._procpool.info()
            if info.get("synced_version") != self.shards.version:
                return False
            if not self._procpool.alive_workers():
                return False
            # Parent side serves only the hash tier in process mode.
            return all(shard.warmed_hash for shard in self.shards)
        return all(shard.warmed for shard in self.shards)

    def close(self) -> None:
        """Shut the worker pool down; idempotent under concurrent
        callers (first caller shuts down, the rest return at once)."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if self._fold_scheduler is not None:
            self._fold_scheduler.stop()
        self.pool.shutdown()

    def __enter__(self) -> "RetrievalService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"RetrievalService(shards={self.shards.num_shards}, "
                f"workers={self.config.workers}, "
                f"shapes={self.shards.num_shapes})")
