"""Deterministic fault injection for the retrieval service.

Chaos testing only pays off when a failing run can be *replayed*: the
same seed must produce the same fault schedule, so a bug found in CI is
reproducible at a desk.  The harness here is therefore built around a
seeded :class:`FaultPlan` whose decisions are a pure function of
``(seed, shard index, per-shard call index)`` — thread interleaving
across shards cannot perturb any shard's schedule, because each shard
consumes its own independent random stream, one draw per faultable
call.

Vocabulary:

* :class:`FaultSpec` — one fault source: a shard index, a fault kind
  (``exception`` / ``latency`` / ``corrupt`` / ``wrong_shard``), a
  per-call probability, and the operations it applies to (by default
  the matcher ops only, so the hashing tier stays healthy and the
  service's per-shard hash fallback is exercised);
* :class:`FaultPlan` — a seeded set of specs with the per-shard
  decision streams and injection counters;
* :class:`FaultyShard` — a transparent proxy wrapping any
  :class:`~repro.service.shards.Shard`; the service wraps its shards
  in these when ``ServiceConfig.fault_plan`` is set (see
  ``repro serve-bench --chaos SEED``).

The exception types double as the service's failure vocabulary:
:class:`FaultError` is what injected exceptions raise,
:class:`CorruptShardAnswer` is what the service's answer validator
raises on non-finite distances or foreign shape ids, and
:class:`ShardTimeoutError` marks an attempt that exceeded its
per-attempt budget.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Fault kinds.
EXCEPTION = "exception"
LATENCY = "latency"
CORRUPT = "corrupt"
WRONG_SHARD = "wrong_shard"
KINDS = (EXCEPTION, LATENCY, CORRUPT, WRONG_SHARD)

#: Operation groups a spec can target.  ``MATCHER_OPS`` covers the
#: exact envelope tier, ``ANN_OPS`` the LSH-pruned tier; the default
#: chaos plan targets both (everything except the hash tier, which is
#: each shard's last-resort fallback).
MATCHER_OPS = ("query", "query_batch")
ANN_OPS = ("ann_query", "ann_query_batch")
ALL_OPS = MATCHER_OPS + ANN_OPS + ("hash_query",)

#: Shape-id offset used by ``wrong_shard`` faults — far outside any
#: real id space, so validation always catches the forgery.
FOREIGN_ID_OFFSET = 1 << 40

#: Injected latency sleeps in slices this long, polling the abort
#: callback, so per-attempt timeouts observe a "slow shard" promptly.
_SLEEP_SLICE = 0.005


class FaultError(RuntimeError):
    """The exception an ``exception`` fault raises inside a shard op."""


class CorruptShardAnswer(RuntimeError):
    """A shard answer failed validation (non-finite / foreign ids)."""


class ShardTimeoutError(RuntimeError):
    """A shard attempt exceeded its per-attempt time budget."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault source targeting one shard.

    ``probability`` is per faultable call; ``latency`` (seconds) only
    matters for ``latency`` faults; ``ops`` restricts which shard
    operations the spec can fire on.
    """

    shard: int
    kind: str
    probability: float = 1.0
    latency: float = 0.05
    ops: Tuple[str, ...] = MATCHER_OPS

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        unknown = set(self.ops) - set(ALL_OPS)
        if unknown:
            raise ValueError(f"unknown ops {sorted(unknown)}; "
                             f"expected a subset of {ALL_OPS}")


class FaultPlan:
    """A seeded, replayable schedule of shard faults.

    For shard *s*, the *i*-th faultable call draws the *i*-th value of
    a ``random.Random`` stream seeded from ``(seed, s)`` and walks the
    shard's specs cumulatively: the first spec whose probability band
    contains the draw (and whose ``ops`` include the operation) fires.
    Decisions therefore depend only on the per-shard call index — two
    runs issuing the same per-shard call sequences inject identical
    faults, regardless of thread interleaving across shards.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0):
        self.specs = tuple(specs)
        self.seed = int(seed)
        self._by_shard: Dict[int, List[FaultSpec]] = {}
        for spec in self.specs:
            self._by_shard.setdefault(spec.shard, []).append(spec)
        self._streams: Dict[int, random.Random] = {}
        self._calls: Dict[int, int] = {}
        self._injected: Dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def default(cls, seed: int, num_shards: int,
                matcher_only: bool = True) -> "FaultPlan":
        """The ``serve-bench --chaos SEED`` plan: one haunted shard.

        The seed picks the target shard and drives every per-call
        decision; the mix covers all four fault kinds at moderate
        rates.  With ``matcher_only`` (the default) both matching
        tiers — envelope and ANN — are haunted but the hashing tier
        stays healthy, so the per-shard fallbacks are exercised.
        (Schedules stay reproducible across this op-set change:
        :meth:`decide` draws one value per faultable call whether or
        not any spec's ``ops`` match it.)
        """
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        target = random.Random(seed).randrange(num_shards)
        ops = MATCHER_OPS + ANN_OPS if matcher_only else ALL_OPS
        specs = [
            FaultSpec(target, EXCEPTION, probability=0.15, ops=ops),
            FaultSpec(target, LATENCY, probability=0.15, latency=0.02,
                      ops=ops),
            FaultSpec(target, CORRUPT, probability=0.10, ops=ops),
            FaultSpec(target, WRONG_SHARD, probability=0.05, ops=ops),
        ]
        return cls(specs, seed=seed)

    def replay(self) -> "FaultPlan":
        """A fresh plan with the same specs and seed (schedule reset)."""
        return FaultPlan(self.specs, seed=self.seed)

    # ------------------------------------------------------------------
    def decide(self, shard_index: int, op: str) -> Optional[FaultSpec]:
        """The fault (if any) for this shard's next faultable call."""
        specs = self._by_shard.get(shard_index)
        if not specs:
            return None
        with self._lock:
            stream = self._streams.get(shard_index)
            if stream is None:
                stream = random.Random(self.seed * 1_000_003
                                       + shard_index)
                self._streams[shard_index] = stream
            self._calls[shard_index] = \
                self._calls.get(shard_index, 0) + 1
            draw = stream.random()
            cumulative = 0.0
            for spec in specs:
                if op not in spec.ops:
                    continue
                cumulative += spec.probability
                if draw < cumulative:
                    self._injected[spec.kind] = \
                        self._injected.get(spec.kind, 0) + 1
                    return spec
            return None

    def counts(self) -> Dict[str, int]:
        """Injected-fault counts by kind (for chaos-run reporting)."""
        with self._lock:
            return dict(self._injected)

    @property
    def total_injected(self) -> int:
        with self._lock:
            return sum(self._injected.values())

    def __repr__(self) -> str:
        shards = sorted(self._by_shard)
        return (f"FaultPlan(seed={self.seed}, shards={shards}, "
                f"specs={len(self.specs)})")


def _mangle_matches(spec: FaultSpec, matches):
    """Apply a result-mangling fault to one top-k list.

    ``corrupt`` poisons every distance with NaN; ``wrong_shard``
    relabels every match with an id no shard owns.  Empty lists pass
    through unchanged — there is nothing to corrupt.
    """
    if spec.kind == CORRUPT:
        return [replace(m, distance=float("nan")) for m in matches]
    if spec.kind == WRONG_SHARD:
        return [replace(m, shape_id=m.shape_id + FOREIGN_ID_OFFSET)
                for m in matches]
    return matches


class FaultyShard:
    """A shard proxy that injects the plan's faults into its operations.

    Everything not overridden here (``index``, ``base``, ``warm``,
    ``num_shapes``, ...) delegates to the wrapped shard, so the proxy
    drops into any code path a real :class:`Shard` serves.
    """

    def __init__(self, shard, plan: FaultPlan):
        self._shard = shard
        self._plan = plan

    def __getattr__(self, name):
        return getattr(self._shard, name)

    # ------------------------------------------------------------------
    def _pre(self, spec: Optional[FaultSpec],
             abort: Optional[Callable[[], bool]]) -> None:
        """Apply call-entry faults (exception, latency)."""
        if spec is None:
            return
        if spec.kind == EXCEPTION:
            raise FaultError(
                f"injected failure on shard {self._shard.index}")
        if spec.kind == LATENCY:
            remaining = spec.latency
            while remaining > 0:
                if abort is not None and abort():
                    break
                step = min(_SLEEP_SLICE, remaining)
                time.sleep(step)
                remaining -= step

    # ------------------------------------------------------------------
    def query(self, sketch, k, abort=None):
        spec = self._plan.decide(self._shard.index, "query")
        self._pre(spec, abort)
        matches, stats = self._shard.query(sketch, k, abort=abort)
        if spec is not None:
            matches = _mangle_matches(spec, matches)
        return matches, stats

    def query_batch(self, sketches, k, abort=None):
        spec = self._plan.decide(self._shard.index, "query_batch")
        self._pre(spec, abort)
        results = self._shard.query_batch(sketches, k, abort=abort)
        if spec is None:
            return results
        return [(_mangle_matches(spec, matches), stats)
                for matches, stats in results]

    def ann_query(self, sketch, k, abort=None):
        spec = self._plan.decide(self._shard.index, "ann_query")
        self._pre(spec, abort)
        matches, stats = self._shard.ann_query(sketch, k, abort=abort)
        if spec is not None:
            matches = _mangle_matches(spec, matches)
        return matches, stats

    def ann_query_batch(self, sketches, k, abort=None):
        spec = self._plan.decide(self._shard.index, "ann_query_batch")
        self._pre(spec, abort)
        results = self._shard.ann_query_batch(sketches, k, abort=abort)
        if spec is None:
            return results
        return [(_mangle_matches(spec, matches), stats)
                for matches, stats in results]

    def hash_query(self, sketch, k):
        spec = self._plan.decide(self._shard.index, "hash_query")
        self._pre(spec, None)
        matches = self._shard.hash_query(sketch, k)
        if spec is not None:
            matches = _mangle_matches(spec, matches)
        return matches

    def __repr__(self) -> str:
        return f"FaultyShard({self._shard!r}, plan={self._plan!r})"
