"""Process-level execution tier: shard workers over zero-copy snapshots.

The thread-mode service tops out once the exact matcher's Python-side
bookkeeping saturates the GIL; this module moves shard *query
execution* into worker processes while leaving every serving-layer
decision (admission, cache, retries, breakers, merge, degradation
ladder) in the parent.  The design follows the one-writer /
many-searcher model of production retrieval engines:

* **Publish.**  The parent serializes each shard's base to the v3/v4
  columnar snapshot format — to per-shard files under ``publish_dir``
  when one is configured, otherwise into
  :mod:`multiprocessing.shared_memory` segments — and hands workers
  nothing but small *attach specs* (a path or a segment name plus a
  byte count).
* **Attach.**  Every worker maps every shard zero-copy:
  :func:`~repro.storage.persist.load_base` with ``mmap=True`` for
  files (the kernel page cache backs all workers with one physical
  copy) or :func:`~repro.storage.persist.load_base_buffer` over the
  shared segment.  A mutation in the parent bumps the shard-set
  version; :meth:`ProcessWorkerPool.sync` republishes and workers
  re-attach, so serving state converges without restarts.
* **Dispatch.**  :class:`ProcessShardView` is a shard-shaped proxy:
  matcher/ANN operations become pickle-light task envelopes (query
  vertex arrays + parameters in, top-k id/score arrays out) sent over
  a per-worker pipe; the constant-cost ``hash_query`` tier stays in
  the parent so a dead worker's shard can still contribute fallback
  answers.  Shards map to workers by fixed affinity
  (``shard_index % processes``): failure domains are deterministic —
  killing a worker degrades exactly its shard slice, which the
  PR 4 breaker/degradation ladder already knows how to route around —
  and each worker's hot set stays page-local.

Deadlines stay cooperative across the process boundary: the parent
sends the attempt's *remaining seconds* with each envelope and the
worker rebuilds a local :class:`~repro.service.deadline.Deadline` as
the matcher's abort hook.  Dead workers are detected both in-band
(broken pipe on send/recv) and by liveness checks while awaiting a
reply; either way the shard call raises
:class:`WorkerUnavailableError`, which the service's resilient-call
boundary converts into a degraded (never failed) answer.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import time
import weakref
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.matcher import Match, MatchStats
from ..geometry.polyline import Shape
from .deadline import Deadline
from .faults import ShardTimeoutError
from .pool import WorkerPool
from .shards import Shard, ShardSet

#: Pipe poll granularity while awaiting a reply: liveness of the
#: worker process is re-checked every slice, so a SIGKILLed worker is
#: detected within one slice instead of hanging until the timeout.
_POLL_SLICE = 0.05

#: Grace added on top of a cooperative deadline before the parent
#: declares the attempt timed out (covers serialization + pipe hops).
_DEADLINE_GRACE = 0.5

#: Upper bound for calls with no deadline at all — a liveness
#: backstop, not a latency target.
_DEFAULT_CALL_TIMEOUT = 120.0

#: Attach (publish + load + warm) budget per worker.
_ATTACH_TIMEOUT = 300.0


class WorkerUnavailableError(RuntimeError):
    """The shard's worker process is dead or unreachable."""


class WorkerOperationError(RuntimeError):
    """The worker executed the op and reported an exception."""


# ----------------------------------------------------------------------
# Wire formats: pickle-light envelopes
# ----------------------------------------------------------------------
def _shape_to_wire(shape: Shape) -> Tuple[np.ndarray, bool]:
    """A sketch as ``(float64 (n,2) array, closed)`` — no Shape pickle."""
    return (np.ascontiguousarray(shape.vertices, dtype=np.float64),
            bool(shape.closed))


def _shape_from_wire(wire: Tuple[np.ndarray, bool]) -> Shape:
    vertices, closed = wire
    array = np.asarray(vertices, dtype=np.float64)
    array.setflags(write=False)
    # The parent serialized an already-constructed Shape, so the
    # constructor's invariants hold; _trusted skips re-validation.
    return Shape._trusted(array, closed)


def _matches_to_wire(matches: Sequence[Match]) -> Tuple[np.ndarray, ...]:
    """Top-k lists as parallel columns (ids/images/scores/entries/flags)."""
    n = len(matches)
    ids = np.fromiter((m.shape_id for m in matches),
                      dtype=np.int64, count=n)
    images = np.fromiter(
        (-1 if m.image_id is None else m.image_id for m in matches),
        dtype=np.int64, count=n)
    distances = np.fromiter((m.distance for m in matches),
                            dtype=np.float64, count=n)
    entries = np.fromiter((m.entry_id for m in matches),
                          dtype=np.int64, count=n)
    approx = np.fromiter((m.approximate for m in matches),
                         dtype=np.bool_, count=n)
    return (ids, images, distances, entries, approx)


def _matches_from_wire(wire: Tuple[np.ndarray, ...]) -> List[Match]:
    ids, images, distances, entries, approx = wire
    return [Match(shape_id=int(ids[i]),
                  image_id=None if images[i] < 0 else int(images[i]),
                  distance=float(distances[i]),
                  entry_id=int(entries[i]),
                  approximate=bool(approx[i]))
            for i in range(len(ids))]


def _stats_to_wire(stats: MatchStats) -> Dict[str, Any]:
    return {"iterations": stats.iterations,
            "epsilons": list(stats.epsilons),
            "triangles_queried": stats.triangles_queried,
            "vertices_reported": stats.vertices_reported,
            "vertices_processed": stats.vertices_processed,
            "candidates_evaluated": stats.candidates_evaluated,
            "guaranteed": stats.guaranteed,
            "exhausted": stats.exhausted,
            "timings": dict(stats.timings)}


def _stats_from_wire(wire: Dict[str, Any]) -> MatchStats:
    return MatchStats(**wire)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _attach_base(spec: Dict[str, Any]):
    """Load one shard base zero-copy from its attach spec.

    Returns ``(base, keepalive)`` — ``keepalive`` holds whatever must
    outlive the base's array views (the shared-memory segment).
    """
    from ..storage.persist import load_base, load_base_buffer
    backend = spec.get("backend", "kdtree")
    if spec["kind"] == "file":
        base = load_base(spec["path"], backend=backend, mmap=True)
        return base, None
    if spec["kind"] == "shm":
        from multiprocessing import resource_tracker, shared_memory
        # Attaching would register the segment with the resource
        # tracker (track=False lands only in 3.13+): the tracker would
        # then unlink a segment the parent still owns when this worker
        # exits, while an unregister-after-attach erases the *parent's*
        # registration instead (one shared tracker, set semantics).
        # Suppress registration around the attach; the parent is the
        # single owner.
        original_register = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None
        try:
            segment = shared_memory.SharedMemory(name=spec["name"])
        finally:
            resource_tracker.register = original_register
        # Segments are page-rounded: slice to the payload size or the
        # snapshot's body-length check sees trailing garbage.
        view = memoryview(segment.buf)[:spec["size"]]
        base = load_base_buffer(view, backend=backend, backing="shm")
        return base, (segment, view)
    raise ValueError(f"unknown attach spec kind {spec['kind']!r}")


def _release_attachments(shards: Dict[int, Shard],
                         keepalive: Dict[int, Any]) -> None:
    """Tear down attached bases in dependency order.

    The base's arrays are views over the segment buffer; they must be
    collected before the memoryview is released and the segment
    closed, or ``SharedMemory.__del__`` trips over exported pointers
    at an arbitrary later GC point (noisy, though harmless).
    """
    import gc
    shards.clear()
    gc.collect()
    for keep in keepalive.values():
        if keep is None:
            continue
        segment, view = keep
        try:
            view.release()
            segment.close()
        except BufferError:     # a view is still referenced somewhere
            pass
    keepalive.clear()


def _build_attachments(specs: Sequence[Dict[str, Any]],
                       params: Dict[str, Any]
                       ) -> Tuple[Dict[int, Shard], Dict[int, Any]]:
    """Attach + warm every published shard (runs inside the worker).

    A separate function so no local reference to a shard or its base
    outlives the attach round — :func:`_release_attachments` relies on
    the bases being collectable before it releases the buffers their
    arrays view.
    """
    fresh: Dict[int, Shard] = {}
    fresh_keep: Dict[int, Any] = {}
    for spec in specs:
        index = spec["index"]
        base, keep = _attach_base(spec)
        shard = Shard(index, base, beta=params["beta"],
                      hash_curves=params["hash_curves"],
                      neighbor_radius=params["neighbor_radius"],
                      ann=params["ann"])
        # Warm the tiers this worker serves (index, matcher, ANN);
        # the hash tier stays parent-side.
        if base.num_entries:
            base.index
        shard.matcher
        if params["ann"] is not None:
            shard.ann
        fresh[index] = shard
        fresh_keep[index] = keep
    return fresh, fresh_keep


def _worker_main(conn, worker_index: int, params: Dict[str, Any]) -> None:
    """One shard worker: attach to published shards, serve query ops.

    The loop is strictly request/reply over one pipe; every reply
    echoes the request id so the parent can discard replies to
    requests it already abandoned (timed-out attempts).
    """
    shards: Dict[int, Shard] = {}
    keepalive: Dict[int, Any] = {}
    parent = os.getppid()
    while True:
        try:
            # Parent death cannot be trusted to surface as EOF: with
            # the fork start method, sibling workers inherit copies of
            # this pipe's parent end and keep the socket open after
            # the parent is gone (SIGKILLed, in chaos runs).  Poll
            # with a timeout and watch for reparenting explicitly.
            while not conn.poll(2.0):
                if os.getppid() != parent:
                    _release_attachments(shards, keepalive)
                    return
            message = conn.recv()
        except (EOFError, OSError):
            _release_attachments(shards, keepalive)
            return
        kind = message[0]
        if kind == "stop":
            _release_attachments(shards, keepalive)
            return
        req_id = message[1]
        try:
            if kind == "attach":
                fresh, fresh_keep = _build_attachments(message[2],
                                                       params)
                stale, stale_keep = shards, keepalive
                shards, keepalive = fresh, fresh_keep
                del fresh, fresh_keep
                _release_attachments(stale, stale_keep)
                conn.send((req_id, "ok", {
                    "worker": worker_index,
                    "pid": os.getpid(),
                    "shards": sorted(shards),
                    "shapes": {i: s.num_shapes
                               for i, s in shards.items()}}))
            elif kind == "delta":
                conn.send((req_id, "ok",
                           _apply_deltas(shards, worker_index, message)))
            elif kind == "run":
                conn.send((req_id, "ok",
                           _serve_run(shards, worker_index, message)))
            elif kind == "ping":
                conn.send((req_id, "ok", os.getpid()))
            else:
                raise ValueError(f"unknown message kind {kind!r}")
        except Exception as exc:   # isolation boundary: report, don't die
            try:
                conn.send((req_id, "err", type(exc).__name__, str(exc)))
            except (OSError, ValueError):
                return


def _apply_deltas(shards: Dict[int, Shard], worker_index: int,
                  message: tuple) -> Dict[str, Any]:
    """Absorb per-shard append deltas into the attached bases.

    The streaming publication fast path: instead of re-attaching a
    full republished snapshot on every version bump, the parent ships
    only the appended rows (:func:`~repro.storage.persist.
    encode_base_delta`) and the worker extends its live bases in
    place — index tails, warm caches and the ANN tier are all patched
    through the same incremental machinery the parent's ingest path
    uses.  ``apply_base_delta`` verifies the worker sits at exactly
    the prior state each delta was cut against, so a missed window
    raises (and the parent degrades the worker) instead of serving
    silently diverged answers.
    """
    from ..rangesearch.dynamic import _TAIL_MIN
    from ..storage.persist import apply_base_delta
    applied: Dict[int, int] = {}
    for shard_index, payload in message[2]:
        shard = shards.get(shard_index)
        if shard is None:
            raise RuntimeError(f"worker {worker_index} has no shard "
                               f"{shard_index} attached")
        first_entry = apply_base_delta(shard.base, payload)
        shard._patch_added(first_entry)
        # Serve-side tails are priced differently than they are on
        # the parent: a retrieve makes hundreds of range probes, and
        # each one pays a brute scan over the unfolded tail, so a
        # tail that is cheap to *carry* through ingest is expensive
        # to *serve*.  Fold past the flat floor — one small rebuild
        # per apply round (between requests, single-threaded) bounds
        # every query's tail cost at ~_TAIL_MIN points instead of
        # letting it grow toward the 0.25*core scheduler threshold.
        if shard.delta_points > _TAIL_MIN:
            shard.fold()
        applied[shard_index] = shard.base.num_entries
    return {"worker": worker_index, "entries": applied}


def _serve_run(shards: Dict[int, Shard], worker_index: int,
               message: tuple) -> list:
    """Dispatch one run envelope (keeps shard refs out of the loop)."""
    shard_index, op, payload = message[2:5]
    shard = shards.get(shard_index)
    if shard is None:
        raise RuntimeError(f"worker {worker_index} has no shard "
                           f"{shard_index} attached")
    return _run_op(shard, op, payload)


def _run_op(shard: Shard, op: str, payload: Dict[str, Any]) -> list:
    """Execute one query op; results as wire pairs (matches, stats)."""
    sketches = [_shape_from_wire(w) for w in payload["sketches"]]
    remaining = payload.get("remaining")
    abort = None
    if remaining is not None:
        abort = Deadline(max(0.0, remaining)).expired
    k = payload.get("k")
    threshold = payload.get("threshold")
    if op == "query":
        pairs = [shard.query(sketches[0], k, abort=abort)]
    elif op == "query_batch":
        pairs = shard.query_batch(sketches, k, abort=abort)
    elif op == "query_threshold":
        pairs = [shard.query_threshold(sketches[0], threshold,
                                       abort=abort)]
    elif op == "query_threshold_batch":
        pairs = shard.query_threshold_batch(sketches, threshold,
                                            abort=abort)
    elif op == "ann_query":
        pairs = [shard.ann_query(sketches[0], k, abort=abort)]
    elif op == "ann_query_batch":
        pairs = shard.ann_query_batch(sketches, k, abort=abort)
    else:
        raise ValueError(f"unknown op {op!r}")
    return [(_matches_to_wire(matches), _stats_to_wire(stats))
            for matches, stats in pairs]


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _Worker:
    """Parent-side handle on one worker process (pipe + liveness)."""

    __slots__ = ("index", "process", "conn", "lock", "alive")

    def __init__(self, index, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()
        self.alive = True

    def is_alive(self) -> bool:
        return self.alive and self.process.is_alive()


class _Publication:
    """One published shard snapshot (file or shared-memory segment)."""

    __slots__ = ("spec", "_segment", "_path")

    def __init__(self, spec, segment=None, path=None):
        self.spec = spec
        self._segment = segment
        self._path = path

    def release(self) -> None:
        if self._segment is not None:
            try:
                self._segment.close()
                self._segment.unlink()
            except Exception:
                pass
            self._segment = None
        if self._path is not None:
            try:
                os.unlink(self._path)
            except OSError:
                pass
            self._path = None


class ProcessWorkerPool(WorkerPool):
    """A :class:`WorkerPool` whose shard work runs in worker processes.

    Presents the same ``map_over``/``submit``/``shutdown`` surface —
    the inherited *thread* pool still drives per-shard fan-out in the
    parent, but each shard callable now crosses a pipe into the
    worker process that owns the shard (``shard_index % processes``)
    instead of running the matcher under the parent's GIL.

    ``publish_dir`` selects the publish transport: a directory means
    per-shard snapshot *files* that workers mmap (zero-copy through
    the kernel page cache, survives for post-mortem inspection);
    ``None`` means anonymous :mod:`multiprocessing.shared_memory`
    segments (snapshotless bases, nothing touches the filesystem).
    """

    def __init__(self, processes: int = 2, workers: Optional[int] = None,
                 publish_dir: Optional[str] = None,
                 start_method: Optional[str] = None,
                 backend: str = "kdtree", beta: float = 0.25,
                 hash_curves: int = 50, neighbor_radius: int = 1,
                 ann=None, compact_every: int = 16):
        if processes < 1:
            raise ValueError("processes must be at least 1")
        if compact_every < 1:
            raise ValueError("compact_every must be at least 1")
        # Parent threads must be able to occupy every worker process
        # at once, or fan-out serializes behind the thread pool.
        super().__init__(workers=max(processes,
                                     workers if workers else 1))
        self.processes = int(processes)
        self.publish_dir = publish_dir
        if start_method is None:
            start_method = os.environ.get("REPRO_PROCPOOL_START") or \
                ("fork" if sys.platform.startswith("linux") else "spawn")
        self.start_method = start_method
        self._params = {"backend": backend, "beta": beta,
                        "hash_curves": hash_curves,
                        "neighbor_radius": neighbor_radius, "ann": ann}
        self._ctx = multiprocessing.get_context(self.start_method)
        self._proc_workers: List[_Worker] = []
        self._req_counter = 0
        self._req_lock = threading.Lock()
        self._sync_lock = threading.Lock()
        # Synced state is the *pair* (shard set identity, version):
        # versions restart at 1 for every fresh ShardSet (reload swaps
        # in a new set via from_base), so the version alone cannot
        # distinguish "already attached" from "different corpus at the
        # same count".  A weakref keeps the pool from pinning a
        # replaced shard set alive; a dead ref simply forces a resync.
        self._synced_set: Optional["weakref.ref"] = None
        self._synced_version: Optional[int] = None
        self._publish_round = 0
        self._publications: List[_Publication] = []
        # Delta-publication state: per shard index, the (mutation-log
        # cursor, shape count, entry count) the workers hold — the
        # prior state the next delta is cut against.  ``None`` forces
        # a full republish (fresh pool, revive, or an append window
        # broken by a removal).  Every ``compact_every`` consecutive
        # delta rounds a full republish runs anyway, so worker heaps
        # re-converge onto one compact zero-copy snapshot.
        self.compact_every = int(compact_every)
        self._delta_state: Optional[Dict[int, Tuple[int, int, int]]] = None
        self._delta_rounds = 0
        self._sync_stats = {"full_rounds": 0, "delta_rounds": 0,
                            "full_bytes": 0, "delta_bytes": 0,
                            "last_kind": None, "last_bytes": 0}
        self._start_workers()

    # -- lifecycle ------------------------------------------------------
    def _start_workers(self) -> None:
        for index in range(self.processes):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            process = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, index, self._params),
                name=f"repro-shard-worker-{index}", daemon=True)
            process.start()
            child_conn.close()
            self._proc_workers.append(
                _Worker(index, process, parent_conn))

    def _next_req_id(self) -> int:
        with self._req_lock:
            self._req_counter += 1
            return self._req_counter

    # -- publishing -----------------------------------------------------
    def _publish_shard(self, shard: Shard, version: int,
                       round_id: int) -> _Publication:
        from ..storage.persist import encode_base, save_base
        ann = self._params["ann"]
        sketch = ann.sketch if ann is not None else None
        spec: Dict[str, Any] = {"index": shard.index,
                                "backend": shard.base.backend}
        if self.publish_dir is not None:
            directory = Path(self.publish_dir)
            directory.mkdir(parents=True, exist_ok=True)
            # The round id keeps paths unique across shard-set swaps:
            # a reloaded set restarts its version counter, and reusing
            # a live publication's path would let the stale-release
            # below unlink the file just published.
            path = directory / (f"shard-{shard.index:02d}"
                                f"-v{version:08d}"
                                f"-r{round_id:04d}.gsb")
            save_base(shard.base, path,
                      version=4 if sketch is not None else 3,
                      ann_sketch=sketch)
            spec.update(kind="file", path=str(path))
            return _Publication(spec, path=str(path))
        from multiprocessing import shared_memory
        payload = encode_base(shard.base, ann_sketch=sketch)
        segment = shared_memory.SharedMemory(create=True,
                                             size=len(payload))
        segment.buf[:len(payload)] = payload
        spec.update(kind="shm", name=segment.name, size=len(payload))
        return _Publication(spec, segment=segment)

    def sync(self, shard_set: ShardSet, force: bool = False) -> bool:
        """Converge every live worker onto the shard set's current state.

        No-op when the workers already hold *this* shard set at its
        current version.  On a version bump the pool first tries the
        cheap path: when the change since the last sync is pure append
        (per-shard mutation logs show only ``add`` events), it ships
        each changed shard's *delta* — just the appended rows, via
        :func:`~repro.storage.persist.encode_base_delta` — over the
        worker pipes, typically orders of magnitude less data than a
        republish.  Removals, a swapped shard set (service reload), a
        trimmed log, or ``compact_every`` consecutive delta rounds
        fall back to the full publish + re-attach round (which also
        compacts worker heaps back onto one zero-copy snapshot).  A
        worker that fails either path is taken out of rotation rather
        than left serving stale answers; on any error new publications
        are released, never leaked.  Returns True when any round ran.
        """
        with self._sync_lock:
            # Version is captured *before* the per-shard state walk:
            # shard mutations publish their rows and log events before
            # bumping the set version, so everything implied by this
            # version is visible to the walk below.  Rows landing
            # mid-walk may ship early — harmless, the cursors keep the
            # next round from double-applying them.
            version = shard_set.version
            synced = (self._synced_set()
                      if self._synced_set is not None else None)
            if not force and synced is shard_set \
                    and version == self._synced_version:
                return False
            if not force and synced is shard_set \
                    and self._delta_state is not None \
                    and self._delta_rounds < self.compact_every:
                if self._delta_sync(shard_set, version):
                    return True
            return self._full_sync(shard_set, version)

    def _delta_sync(self, shard_set: ShardSet, version: int) -> bool:
        """Ship append-only deltas to the workers; False = ineligible.

        Eligibility is per-window: every shard's mutation log since
        the last sync must be complete (not trimmed past our cursor)
        and contain only ``add`` events.  Each shard's delta is
        encoded under its write lock, so the payload and the new
        cursor describe the same instant.
        """
        assert self._delta_state is not None
        deltas: List[Tuple[int, bytes]] = []
        new_state: Dict[int, Tuple[int, int, int]] = {}
        from ..storage.persist import encode_base_delta
        for shard in shard_set:
            state = self._delta_state.get(shard.index)
            if state is None:
                return False
            cursor, prior_shapes, prior_entries = state
            with shard.write_lock:
                events, complete = shard.events_since(cursor)
                if not complete or \
                        any(kind != "add" for _, kind, _ in events):
                    return False
                num_shapes = len(shard.base.shapes)
                num_entries = shard.base.num_entries
                if num_shapes < prior_shapes or \
                        num_entries < prior_entries:
                    return False     # shrunk without a logged remove?
                if (num_shapes, num_entries) != (prior_shapes,
                                                 prior_entries):
                    deltas.append((shard.index, encode_base_delta(
                        shard.base, prior_shapes, prior_entries)))
                new_state[shard.index] = (shard.log_seq, num_shapes,
                                          num_entries)
        if deltas:
            for worker in self._proc_workers:
                if not worker.is_alive():
                    continue
                try:
                    self._call_worker(worker, ("delta", None, deltas),
                                      timeout=_ATTACH_TIMEOUT)
                except (WorkerUnavailableError, ShardTimeoutError,
                        WorkerOperationError):
                    # A worker that missed a window (or died) cannot
                    # serve the new version; degrade it until a revive
                    # + full sync brings it back.
                    worker.alive = False
        shipped = sum(len(payload) for _, payload in deltas)
        self._delta_state = new_state
        self._delta_rounds += 1
        self._synced_version = version
        stats = self._sync_stats
        stats["delta_rounds"] += 1
        stats["delta_bytes"] += shipped
        stats["last_kind"] = "delta"
        stats["last_bytes"] = shipped
        return True

    def _full_sync(self, shard_set: ShardSet, version: int) -> bool:
        """Publish every shard and (re-)attach every live worker."""
        publications: List[_Publication] = []
        state: Dict[int, Tuple[int, int, int]] = {}
        installed = False
        self._publish_round += 1
        try:
            for shard in shard_set:
                # The write lock holds the base still across the
                # encode *and* the cursor capture, so the published
                # snapshot and the delta baseline agree exactly.
                with shard.write_lock:
                    publications.append(
                        self._publish_shard(shard, version,
                                            self._publish_round))
                    state[shard.index] = (shard.log_seq,
                                          len(shard.base.shapes),
                                          shard.base.num_entries)
            specs = [pub.spec for pub in publications]
            for worker in self._proc_workers:
                if not worker.is_alive():
                    continue
                try:
                    self._call_worker(worker,
                                      ("attach", None, specs),
                                      timeout=_ATTACH_TIMEOUT)
                except (WorkerUnavailableError, ShardTimeoutError):
                    worker.alive = False
                except WorkerOperationError:
                    # The worker survived but could not attach
                    # (missing snapshot file, shm attach failure):
                    # it still holds the previous corpus and would
                    # silently serve stale answers — take it out
                    # of rotation so its shards degrade instead.
                    worker.alive = False
            stale, self._publications = (self._publications,
                                         publications)
            installed = True
            self._synced_set = weakref.ref(shard_set)
            self._synced_version = version
            self._delta_state = state
            self._delta_rounds = 0
            published = sum(
                pub.spec.get("size") or
                (os.path.getsize(pub.spec["path"])
                 if pub.spec.get("kind") == "file" else 0)
                for pub in publications)
            stats = self._sync_stats
            stats["full_rounds"] += 1
            stats["full_bytes"] += published
            stats["last_kind"] = "full"
            stats["last_bytes"] = published
            for publication in stale:
                publication.release()
            return True
        finally:
            if not installed:
                for publication in publications:
                    publication.release()

    # -- dispatch -------------------------------------------------------
    def _worker_for(self, shard_index: int) -> _Worker:
        return self._proc_workers[shard_index % len(self._proc_workers)]

    def _call_worker(self, worker: _Worker, message: tuple,
                     timeout: Optional[float]) -> Any:
        """One request/reply on a worker's pipe (serialized per worker).

        Replies carrying a stale request id (a previous attempt the
        parent abandoned on timeout) are drained and discarded, so
        one slow call cannot desynchronize the pipe for the next.
        """
        if not worker.is_alive():
            worker.alive = False
            raise WorkerUnavailableError(
                f"worker {worker.index} (pid "
                f"{worker.process.pid}) is dead")
        req_id = self._next_req_id()
        message = (message[0], req_id) + message[2:]
        deadline = Deadline(timeout if timeout is not None
                            else _DEFAULT_CALL_TIMEOUT)
        with worker.lock:
            try:
                while worker.conn.poll(0):       # drain stale replies
                    worker.conn.recv()
                worker.conn.send(message)
                while True:
                    if worker.conn.poll(_POLL_SLICE):
                        reply = worker.conn.recv()
                        if reply[0] != req_id:
                            continue             # stale; keep waiting
                        if reply[1] == "ok":
                            return reply[2]
                        raise WorkerOperationError(
                            f"worker {worker.index}: "
                            f"{reply[2]}: {reply[3]}")
                    if not worker.process.is_alive():
                        worker.alive = False
                        raise WorkerUnavailableError(
                            f"worker {worker.index} died mid-call")
                    if deadline.expired():
                        raise ShardTimeoutError(
                            f"worker {worker.index} reply exceeded "
                            f"{timeout if timeout is not None else _DEFAULT_CALL_TIMEOUT}s")
            except (BrokenPipeError, EOFError, OSError) as exc:
                worker.alive = False
                raise WorkerUnavailableError(
                    f"worker {worker.index} pipe failed: {exc}") \
                    from exc

    def call(self, shard_index: int, op: str, payload: Dict[str, Any],
             timeout: Optional[float] = None) -> list:
        """Run one shard op on its affinity worker; wire pairs back."""
        worker = self._worker_for(shard_index)
        return self._call_worker(
            worker, ("run", None, shard_index, op, payload), timeout)

    # -- chaos / introspection ------------------------------------------
    def kill_worker(self, index: int) -> int:
        """SIGKILL one worker (chaos hook); returns its pid.

        Deliberately does *not* mark the worker dead — detection is
        the service's job (liveness checks, broken pipes, breakers).
        """
        worker = self._proc_workers[index % len(self._proc_workers)]
        pid = worker.process.pid
        worker.process.kill()
        return pid

    def revive_workers(self) -> List[int]:
        """Respawn every dead worker; returns the revived indexes.

        The recovery half of the chaos story: a SIGKILLed worker's
        shard slice degrades (breakers route around it) until this
        respawns the process.  Fresh workers hold nothing, so the
        synced state is reset — the next :meth:`sync` call runs a full
        publish + attach round and re-converges the whole pool.
        """
        revived: List[int] = []
        with self._sync_lock:
            if self.closed:
                return revived
            for slot, worker in enumerate(self._proc_workers):
                if worker.is_alive():
                    continue
                with worker.lock:
                    try:
                        worker.conn.close()
                    except OSError:
                        pass
                worker.process.join(timeout=1.0)
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                process = self._ctx.Process(
                    target=_worker_main,
                    args=(child_conn, worker.index, self._params),
                    name=f"repro-shard-worker-{worker.index}",
                    daemon=True)
                process.start()
                child_conn.close()
                self._proc_workers[slot] = _Worker(worker.index, process,
                                                   parent_conn)
                revived.append(worker.index)
            if revived:
                self._synced_set = None
                self._synced_version = None
                self._delta_state = None
        return revived

    def alive_workers(self) -> List[int]:
        return [w.index for w in self._proc_workers if w.is_alive()]

    def worker_pids(self) -> List[Optional[int]]:
        return [w.process.pid for w in self._proc_workers]

    def info(self) -> Dict[str, Any]:
        return {"processes": self.processes,
                "alive": self.alive_workers(),
                "start_method": self.start_method,
                "publish": ("file" if self.publish_dir is not None
                            else "shm"),
                "synced_version": self._synced_version,
                "sync": dict(self._sync_stats),
                "compact_every": self.compact_every}

    def shutdown(self) -> None:
        """Stop workers, release publications, then the thread pool."""
        if self.closed:
            return
        for worker in self._proc_workers:
            # Fail-fast any new query dispatch, then take the pipe
            # lock so the stop message never interleaves with an
            # in-flight _call_worker send (Connection is not
            # thread-safe for concurrent sends).  A worker wedged in
            # a long call keeps the lock past the timeout; skip the
            # polite stop — the join/kill below reaps it regardless.
            worker.alive = False
            if worker.lock.acquire(timeout=2.0):
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError, ValueError):
                    pass
                finally:
                    worker.lock.release()
        for worker in self._proc_workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.alive = False
        for publication in self._publications:
            publication.release()
        self._publications = []
        super().shutdown()

    def __repr__(self) -> str:
        return (f"ProcessWorkerPool(processes={self.processes}, "
                f"alive={len(self.alive_workers())}, "
                f"publish={'file' if self.publish_dir else 'shm'})")


# ----------------------------------------------------------------------
# Shard proxy
# ----------------------------------------------------------------------
def _abort_remaining(abort: Optional[Callable[[], bool]]
                     ) -> Optional[float]:
    """Extract the cooperative budget (seconds) from an abort callback.

    The service's resilient-call wrapper annotates its abort closure
    with a ``remaining`` thunk; a bare ``Deadline.expired`` bound
    method is also understood.  ``None`` means unbounded.
    """
    if abort is None:
        return None
    remaining = getattr(abort, "remaining", None)
    if callable(remaining):
        value = remaining()
    else:
        owner = getattr(abort, "__self__", None)
        if isinstance(owner, Deadline):
            value = owner.remaining()
        else:
            return None
    if value is None or value == float("inf"):
        return None
    return max(0.0, float(value))


class ProcessShardView:
    """A shard-shaped proxy that executes query ops in a worker process.

    Drops into every code path a real :class:`Shard` serves (the
    resilient call, answer validation via ``.base``, fault-injection
    wrappers): matcher and ANN operations cross the pipe to the
    shard's affinity worker, while ``hash_query`` — the constant-cost
    last rung of the degradation ladder — runs on the parent's copy,
    so a shard whose worker died still contributes salvage answers.
    """

    def __init__(self, pool: ProcessWorkerPool, shard: Shard):
        self._pool = pool
        self._shard = shard
        self.index = shard.index

    # -- parent-side surface -------------------------------------------
    @property
    def base(self):
        return self._shard.base

    @property
    def num_shapes(self) -> int:
        return self._shard.num_shapes

    def warm(self) -> None:
        self._shard.warm()

    def hash_query(self, sketch: Shape, k: int) -> List[Match]:
        return self._shard.hash_query(sketch, k)

    # -- remote ops -----------------------------------------------------
    def _remote(self, op: str, sketches: Sequence[Shape],
                abort: Optional[Callable[[], bool]],
                **parameters) -> List[Tuple[List[Match], MatchStats]]:
        remaining = _abort_remaining(abort)
        payload = {"sketches": [_shape_to_wire(s) for s in sketches],
                   "remaining": remaining, **parameters}
        timeout = None if remaining is None \
            else remaining + _DEADLINE_GRACE
        pairs = self._pool.call(self.index, op, payload,
                                timeout=timeout)
        return [(_matches_from_wire(matches), _stats_from_wire(stats))
                for matches, stats in pairs]

    def query(self, sketch, k, abort=None):
        return self._remote("query", [sketch], abort, k=k)[0]

    def query_batch(self, sketches, k, abort=None):
        return self._remote("query_batch", sketches, abort, k=k)

    def query_threshold(self, sketch, threshold, abort=None):
        return self._remote("query_threshold", [sketch], abort,
                            threshold=threshold)[0]

    def query_threshold_batch(self, sketches, threshold, abort=None):
        return self._remote("query_threshold_batch", sketches, abort,
                            threshold=threshold)

    def ann_query(self, sketch, k, abort=None):
        return self._remote("ann_query", [sketch], abort, k=k)[0]

    def ann_query_batch(self, sketches, k, abort=None):
        return self._remote("ann_query_batch", sketches, abort, k=k)

    def __repr__(self) -> str:
        return (f"ProcessShardView({self.index}, "
                f"worker={self.index % self._pool.processes})")
