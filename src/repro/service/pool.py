"""Worker pool and admission control for the retrieval service.

Two small pieces of machinery:

* :class:`WorkerPool` — a thin wrapper over
  :class:`concurrent.futures.ThreadPoolExecutor` (threads, not
  processes: the matcher's hot loops are numpy kernels that release
  the GIL, and shards share large read-only index structures that
  would be expensive to pickle across processes).  It knows how to fan
  one callable across all shards and gather the results in shard
  order, and it degrades to inline execution for ``workers=1`` or when
  called from one of its own threads (nested fan-out from a batch task
  would otherwise deadlock a saturated pool).

* :class:`AdmissionQueue` — a bounded in-flight counter.  Admission is
  *non-blocking*: a query that cannot be admitted is shed immediately
  with an explicit overload signal instead of queueing without bound —
  under saturation a served-fast subset beats an ever-growing backlog
  (the service returns ``Overloaded`` results; callers retry or back
  off).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class AdmissionQueue:
    """Bounded count of in-flight queries with non-blocking admission.

    ``max_pending`` is the bound; :meth:`try_admit` either takes a slot
    (True) or reports saturation (False) without blocking.  ``None``
    disables the bound (every query is admitted).
    """

    def __init__(self, max_pending: Optional[int] = None):
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be at least 1 (or None)")
        self.max_pending = max_pending
        self._pending = 0
        self._lock = threading.Lock()

    def try_admit(self) -> bool:
        """Take an in-flight slot if one is free; never blocks."""
        if self.max_pending is None:
            with self._lock:
                self._pending += 1
            return True
        with self._lock:
            if self._pending >= self.max_pending:
                return False
            self._pending += 1
            return True

    def release(self) -> None:
        """Return one slot; a double release is a caller bug.

        The guard keeps ``_pending`` from going negative — an
        underflowed counter would silently raise the effective
        admission bound for the rest of the process's life.
        """
        with self._lock:
            if self._pending <= 0:
                raise RuntimeError("release without a matching admit")
            self._pending -= 1

    @property
    def pending(self) -> int:
        return self._pending

    def __repr__(self) -> str:
        bound = self.max_pending if self.max_pending is not None else "inf"
        return f"AdmissionQueue(pending={self._pending}, max={bound})"


class WorkerPool:
    """Shard fan-out and batch execution over a thread pool."""

    def __init__(self, workers: int = 2):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = int(workers)
        self._executor: Optional[ThreadPoolExecutor] = None
        if self.workers > 1:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-service")
        self._pool_threads: set = set()
        self._threads_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def _in_pool_thread(self) -> bool:
        return threading.current_thread().ident in self._pool_threads

    def _run_tracked(self, fn: Callable[..., R], *args) -> R:
        ident = threading.get_ident()
        with self._threads_lock:
            self._pool_threads.add(ident)
        return fn(*args)

    # ------------------------------------------------------------------
    def map_over(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, preserving order.

        Runs on the pool when it exists and we are not already inside
        one of its threads; otherwise inline (sequentially) — nested
        fan-out must not wait on the pool that is running it.
        """
        if self._executor is None or self._in_pool_thread() \
                or len(items) <= 1:
            return [fn(item) for item in items]
        futures = [self._executor.submit(self._run_tracked, fn, item)
                   for item in items]
        return [future.result() for future in futures]

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        """Submit one task; inline-executed future when pool-less."""
        if self._executor is None or self._in_pool_thread():
            future: "Future[R]" = Future()
            try:
                future.set_result(fn(*args))
            except BaseException as exc:   # pragma: no cover - passthrough
                future.set_exception(exc)
            return future
        return self._executor.submit(self._run_tracked, fn, *args)

    @property
    def closed(self) -> bool:
        return self._closed

    def shutdown(self) -> None:
        """Stop the executor; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"WorkerPool(workers={self.workers})"
