"""Sharding: the shape base partitioned into independent retrieval units.

A *shard* is a self-contained slice of the corpus: its own
:class:`~repro.core.ShapeBase` (a disjoint subset of the shapes, ids
preserved) plus the two retrieval structures built over it — the
envelope-fattening matcher and the geometric-hashing retriever.  Since
every shape lives in exactly one shard and the exact measure of a
(query, shape) pair does not depend on what else is in the base,
merging per-shard top-k lists by distance reproduces the unsharded
answer exactly; that equivalence is the service layer's core
correctness invariant (``tests/test_service.py``).

Shape ids are routed to shards by :func:`shard_for`, a deterministic
multiplicative hash — the same ids land on the same shards across
processes and runs, which keeps persisted bases, caches and replicas
in agreement without coordination.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence, Tuple

from ..ann import AnnConfig, AnnPrunedMatcher, compute_entry_sketches
from ..core.matcher import GeometricSimilarityMatcher, Match, MatchStats
from ..core.shapebase import ShapeBase, validate_shape
from ..geometry.polyline import Shape
from ..hashing.hashtable import ApproximateRetriever
from ..rangesearch import IncrementalIndex

#: Mutation-log events retained per shard.  A delta consumer whose
#: cursor falls behind the retained window gets ``complete=False`` from
#: :meth:`Shard.events_since` and must republish in full.
_LOG_KEEP = 512

_MASK64 = (1 << 64) - 1
_SPLITMIX = 0x9E3779B97F4A7C15


def shard_for(shape_id: int, num_shards: int) -> int:
    """Deterministic shard index for a shape id (splitmix-style mix).

    Pure integer arithmetic — no process-seeded hashing — so the
    assignment is stable across runs, machines and Python versions.
    The bit mix decorrelates the index from arithmetic structure in
    the ids (sequential ids, per-image strides) so shards stay
    balanced.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    # splitmix64 finalizer: two multiply-xorshift rounds are needed to
    # decorrelate the low bits (a single round leaves sequential ids
    # nearly constant modulo small shard counts).
    x = (shape_id + _SPLITMIX) & _MASK64
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK64
    x ^= x >> 31
    return x % num_shards


class Shard:
    """One partition of the corpus with its own retrieval structures.

    The matcher and hashing retriever are built lazily (ingest streams
    should not pay index builds per shape); :meth:`warm` forces the
    builds, which the service does once before admitting concurrent
    traffic.

    Writes follow a copy-on-write epoch discipline so queries never
    block behind ingest:

    * **Appends** mutate the live base in place but only ever *replace*
      arrays (old contents as a prefix) and publish the range index
      last; warm structures are patched incrementally (hash table
      inserts, LSH adds, cache-row appends) instead of dropped.  A
      reader's consistent capture (``ShapeBase.reader_view``, the
      matcher's scratch checkout) stays valid through any interleaving.
    * **Removals** — the id-compacting mutation no prefix property can
      cover — build a :meth:`ShapeBase.clone_cow`, remove on the clone
      and swap it in as a new epoch; in-flight readers finish against
      the old base, new structures rebuild lazily from the compacted
      caches.
    * **Folds** of the incremental index tail run off the write path
      (:meth:`fold`): the static rebuild happens without the lock and
      the swap is a single guarded reference assignment.

    ``write_lock`` serializes mutations, structure builds and delta
    publication; the query path never acquires it.  Every mutation is
    appended to a bounded per-shard log the process tier consumes to
    ship deltas instead of full snapshots.
    """

    def __init__(self, index: int, base: ShapeBase, beta: float = 0.25,
                 hash_curves: int = 50, neighbor_radius: int = 1,
                 ann: Optional[AnnConfig] = None):
        self.index = index
        self.base = base
        self.beta = float(beta)
        self.hash_curves = int(hash_curves)
        self.neighbor_radius = int(neighbor_radius)
        self.ann_config = ann
        self._matcher: Optional[GeometricSimilarityMatcher] = None
        self._retriever: Optional[ApproximateRetriever] = None
        self._ann: Optional[AnnPrunedMatcher] = None
        self.write_lock = threading.RLock()
        #: Bumped on every mutation *and* every fold/epoch swap (unlike
        #: ``base.version``, which folds leave alone).
        self.epoch = 0
        self._delta_log: List[Tuple[int, str, object]] = []
        self._log_seq = 0
        self._log_floor = 0

    # -- structures -----------------------------------------------------
    @property
    def matcher(self) -> GeometricSimilarityMatcher:
        if self._matcher is None:
            with self.write_lock:
                if self._matcher is None:
                    self._matcher = GeometricSimilarityMatcher(
                        self.base, beta=self.beta)
        return self._matcher

    @property
    def retriever(self) -> ApproximateRetriever:
        if self._retriever is None:
            with self.write_lock:
                if self._retriever is None:
                    self._retriever = ApproximateRetriever(
                        self.base, k_curves=self.hash_curves,
                        neighbor_radius=self.neighbor_radius)
        return self._retriever

    @property
    def ann(self) -> AnnPrunedMatcher:
        """The approximate tier's pruned matcher (requires config)."""
        if self.ann_config is None:
            raise RuntimeError(
                f"shard {self.index} has no ANN tier configured")
        if self._ann is None:
            with self.write_lock:
                if self._ann is None:
                    self._ann = AnnPrunedMatcher(self.base,
                                                 self.ann_config)
        return self._ann

    def warm(self) -> None:
        """Build every lazy structure now (index, hash table, ANN)."""
        if self.base.num_entries:
            self.base.index
        self.matcher
        self.retriever
        if self.ann_config is not None:
            self.ann

    @property
    def warmed(self) -> bool:
        """All lazy structures built — no build latency left to pay.

        Readiness probes poll this (never :meth:`warm`): checking must
        not trigger the builds it reports on.
        """
        if self._matcher is None or self._retriever is None:
            return False
        return self.ann_config is None or self._ann is not None

    @property
    def warmed_hash(self) -> bool:
        """The hash (salvage) tier alone is built — process mode's
        parent-side readiness, where workers own the other tiers."""
        return self._retriever is not None

    def invalidate(self) -> None:
        """Drop derived structures (base replaced wholesale, e.g. a
        re-split or snapshot reload — *not* the ingest path, which
        patches instead)."""
        self._matcher = None
        self._retriever = None
        self._ann = None

    # -- ingest ---------------------------------------------------------
    def add_shape(self, shape: Shape, image_id: Optional[int],
                  shape_id: int) -> int:
        with self.write_lock:
            first_entry = self.base.num_entries
            self.base.add_shape(shape, image_id=image_id,
                                shape_id=shape_id)
            self._patch_added(first_entry)
            self._log_event("add", (shape_id,))
            self.epoch += 1
        return shape_id

    def add_shapes(self, shapes: Sequence[Shape],
                   image_ids: Sequence[Optional[int]],
                   shape_ids: Sequence[int]) -> List[int]:
        """Bulk-ingest pre-routed shapes through the vectorized path."""
        with self.write_lock:
            first_entry = self.base.num_entries
            ids = self.base.add_shapes(shapes, image_ids=image_ids,
                                       shape_ids=shape_ids)
            self._patch_added(first_entry)
            self._log_event("add", tuple(ids))
            self.epoch += 1
        return ids

    def _patch_added(self, first_entry: int) -> None:
        """Patch warm structures with the entries appended past
        ``first_entry`` (matcher needs nothing: it reads through the
        base and its scratch pool re-keys on the version)."""
        new_ids = range(first_entry, self.base.num_entries)
        if self._retriever is not None:
            self._retriever.add_entries(new_ids)
        if self._ann is not None:
            self._ann.add_entries(new_ids)

    def remove_shape(self, shape_id: int) -> None:
        """Remove a shape by swapping in a copy-on-write epoch.

        Entry-id compaction breaks the append-only prefix contract the
        lock-free readers rely on, so removal is the slow path: clone
        the base (structure-shared), remove on the clone, swap.  Derived
        structures rebuild lazily — cheaply, since the clone carries the
        compacted signature/sketch caches.
        """
        with self.write_lock:
            clone = self.base.clone_cow()
            clone.remove_shape(shape_id)        # KeyError leaves us intact
            self.base = clone
            self._matcher = None
            self._retriever = None
            self._ann = None
            self._log_event("remove", shape_id)
            self.epoch += 1

    # -- folds (amortized off the write path) ---------------------------
    @property
    def delta_points(self) -> int:
        """Unfolded points in the incremental index tail."""
        return self.base.index_delta_size

    def needs_fold(self) -> bool:
        index = self.base._index
        return (isinstance(index, IncrementalIndex) and
                index.needs_fold())

    def fold(self) -> bool:
        """Fold the incremental tail into a fresh static build.

        The expensive rebuild runs *without* the write lock (ingest and
        queries proceed meanwhile); the swap is a guarded atomic
        reference assignment.  Returns False — fold skipped — when a
        concurrent mutation landed first; the scheduler just retries
        next cycle.  Query answers are identical before and after
        (``IncrementalIndex`` reports exactly what a fresh build over
        the same points reports).
        """
        base = self.base
        index = base._index
        if not isinstance(index, IncrementalIndex) or \
                index.tail_size == 0:
            return False
        folded = index.fold(base.backend)
        with self.write_lock:
            if self.base is base and base._index is index:
                base._index = folded
                self.epoch += 1
                return True
        return False

    # -- mutation log (delta publication feed) --------------------------
    def _log_event(self, kind: str, payload) -> None:
        self._delta_log.append((self._log_seq, kind, payload))
        self._log_seq += 1
        overflow = len(self._delta_log) - _LOG_KEEP
        if overflow > 0:
            del self._delta_log[:overflow]
            self._log_floor = self._delta_log[0][0]

    @property
    def log_seq(self) -> int:
        """Sequence number the next mutation event will get."""
        return self._log_seq

    def events_since(self, cursor: int
                     ) -> Tuple[List[Tuple[int, str, object]], bool]:
        """Mutation events with seq >= ``cursor``.

        Returns ``(events, complete)``; ``complete=False`` means the
        log has been trimmed past the cursor and the consumer must fall
        back to a full republish.
        """
        with self.write_lock:
            if cursor < self._log_floor:
                return [], False
            return [e for e in self._delta_log if e[0] >= cursor], True

    # -- retrieval ------------------------------------------------------
    def query(self, sketch: Shape, k: int,
              abort: Optional[Callable[[], bool]] = None
              ) -> Tuple[List[Match], MatchStats]:
        """Envelope-matcher top-k within this shard."""
        return self.matcher.query(sketch, k=k, abort=abort)

    def query_batch(self, sketches: Sequence[Shape], k: int,
                    abort: Optional[Callable[[], bool]] = None
                    ) -> List[Tuple[List[Match], MatchStats]]:
        """Envelope-matcher top-k for many sketches in one call.

        Delegates to the matcher's amortized multi-query path (one
        scratch checkout for the whole batch); results are in input
        order and identical to per-sketch :meth:`query` calls.
        """
        return self.matcher.query_batch(sketches, k=k, abort=abort)

    def query_threshold(self, sketch: Shape, threshold: float,
                        abort: Optional[Callable[[], bool]] = None
                        ) -> Tuple[List[Match], MatchStats]:
        """All shard shapes within ``threshold`` of the sketch."""
        return self.matcher.query_threshold(sketch, threshold, abort=abort)

    def query_threshold_batch(self, sketches: Sequence[Shape],
                              threshold: float,
                              abort: Optional[Callable[[], bool]] = None
                              ) -> List[Tuple[List[Match], MatchStats]]:
        """Threshold queries for many sketches in one scratch checkout.

        The algebra engine's ``similar`` leaves arrive through this
        path; results are in input order and identical to per-sketch
        :meth:`query_threshold` calls.
        """
        return self.matcher.query_threshold_batch(sketches, threshold,
                                                  abort=abort)

    def ann_query(self, sketch: Shape, k: int,
                  abort: Optional[Callable[[], bool]] = None
                  ) -> Tuple[List[Match], MatchStats]:
        """LSH-pruned exact top-k within this shard (middle tier)."""
        return self.ann.query(sketch, k=k, abort=abort)

    def ann_query_batch(self, sketches: Sequence[Shape], k: int,
                        abort: Optional[Callable[[], bool]] = None
                        ) -> List[Tuple[List[Match], MatchStats]]:
        """LSH-pruned top-k for many sketches in one call."""
        return self.ann.query_batch(sketches, k=k, abort=abort)

    def hash_query(self, sketch: Shape, k: int) -> List[Match]:
        """Hashing-fallback top-k within this shard."""
        if self.base.num_entries == 0:
            return []
        return self.retriever.query(sketch, k=k)

    @property
    def num_shapes(self) -> int:
        return self.base.num_shapes

    def __repr__(self) -> str:
        return (f"Shard({self.index}, shapes={self.base.num_shapes}, "
                f"entries={self.base.num_entries})")


def merge_topk(per_shard: Sequence[Sequence[Match]], k: int) -> List[Match]:
    """Merge per-shard top-k lists into the global top-k.

    Shards are disjoint (a shape id appears in at most one list) and
    distances are base-independent exact measures, so a sort by
    ``(distance, shape_id)`` — the id as a deterministic tie-break —
    reproduces the unsharded ranking.
    """
    merged = [match for matches in per_shard for match in matches]
    merged.sort(key=lambda m: (m.distance, m.shape_id))
    return merged[:k]


class ShardSet:
    """All shards of one corpus plus the deterministic router.

    Build either empty (``ShardSet(num_shards=4)``) and stream shapes
    in, or from an existing base (:meth:`from_base`), which routes the
    base's shapes through the same partitioner so both construction
    paths yield identical shards.  ``version`` counts mutations; the
    query cache keys its entries on it.
    """

    def __init__(self, num_shards: int = 4, alpha: float = 0.1,
                 backend: str = "kdtree", beta: float = 0.25,
                 hash_curves: int = 50, neighbor_radius: int = 1,
                 ann: Optional[AnnConfig] = None):
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_shards = int(num_shards)
        self.shards = [Shard(i, ShapeBase(alpha=alpha, backend=backend),
                             beta=beta, hash_curves=hash_curves,
                             neighbor_radius=neighbor_radius, ann=ann)
                       for i in range(self.num_shards)]
        self.version = 0
        self._next_shape_id = 0
        self._lock = threading.Lock()

    @classmethod
    def from_base(cls, base: ShapeBase, num_shards: int = 4,
                  beta: float = 0.25, hash_curves: int = 50,
                  neighbor_radius: int = 1,
                  ann: Optional[AnnConfig] = None) -> "ShardSet":
        """Partition an existing base (shape ids preserved)."""
        shard_set = cls(num_shards=num_shards, alpha=base.alpha,
                        backend=base.backend, beta=beta,
                        hash_curves=hash_curves,
                        neighbor_radius=neighbor_radius, ann=ann)
        if ann is not None and base.num_entries:
            # Sketch the whole base once before splitting: subsets
            # carry the cache rows, so shards (and later re-splits of
            # the same base) never recompute.  A v4 snapshot arrives
            # with this cache pre-filled — zero sketching on warm-up.
            compute_entry_sketches(base, ann.sketch)
        for part_index, part in enumerate(base.split(num_shards)):
            shard = shard_set.shards[part_index]
            shard.base = part
            shard.invalidate()
        with shard_set._lock:
            shard_set._next_shape_id = (max(base.shapes) + 1
                                        if base.shapes else 0)
            shard_set.version += 1
        return shard_set

    # -- ingest ---------------------------------------------------------
    def add_shape(self, shape: Shape, image_id: Optional[int] = None,
                  shape_id: Optional[int] = None) -> int:
        """Route one shape to its shard; returns the assigned id.

        Validation runs *before* the version bump so a rejected shape
        leaves no torn state (no consumed id, no cache invalidation).
        """
        validate_shape(shape)
        with self._lock:
            if shape_id is None:
                shape_id = self._next_shape_id
            self._next_shape_id = max(self._next_shape_id, shape_id + 1)
        shard = self.shards[shard_for(shape_id, self.num_shards)]
        shard.add_shape(shape, image_id, shape_id)
        # Version bumps *after* the shard mutation: an observer that
        # sees the new version (cache keys, process-tier sync) is
        # guaranteed the rows — and the shard's mutation-log events —
        # are already in place.
        with self._lock:
            self.version += 1
        return shape_id

    def add_shapes(self, shapes: Sequence[Shape],
                   image_id: Optional[int] = None, *,
                   image_ids: Optional[Sequence[Optional[int]]] = None
                   ) -> List[int]:
        """Bulk ingest: one id block, one vectorized add per shard.

        Shapes are validated up front, ids assigned in one locked
        block, then each shard receives its whole slice through
        :meth:`ShapeBase.add_shapes` — per-shard work is one batched
        normalization instead of a Python loop of scalar adds.  The
        resulting shards are identical to a loop of :meth:`add_shape`
        calls in the same order.
        """
        shapes = list(shapes)
        if not shapes:
            return []
        if image_ids is None:
            per_image: List[Optional[int]] = [image_id] * len(shapes)
        else:
            per_image = list(image_ids)
            if len(per_image) != len(shapes):
                raise ValueError("image_ids must match shapes in length")
        for shape in shapes:
            validate_shape(shape)
        with self._lock:
            first = self._next_shape_id
            ids = list(range(first, first + len(shapes)))
            self._next_shape_id = first + len(shapes)
        by_shard: dict = {}
        for shape, sid, iid in zip(shapes, ids, per_image):
            by_shard.setdefault(shard_for(sid, self.num_shards),
                                ([], [], []))
            group = by_shard[shard_for(sid, self.num_shards)]
            group[0].append(shape)
            group[1].append(iid)
            group[2].append(sid)
        for shard_index, (group_shapes, group_images, group_ids) \
                in sorted(by_shard.items()):
            self.shards[shard_index].add_shapes(group_shapes, group_images,
                                                group_ids)
        # After the mutations, so version-keyed observers never see the
        # new version with old rows (see add_shape).
        with self._lock:
            self.version += 1
        return ids

    def remove_shape(self, shape_id: int) -> None:
        """Remove one shape from its shard (version bump included).

        Raises ``KeyError`` (from the shard's base) when the id is
        unknown; nothing mutates in that case.  The shard applies the
        removal as a copy-on-write epoch swap, so concurrent readers
        are never exposed to the id compaction mid-flight.
        """
        shard = self.shard_of(shape_id)
        shard.remove_shape(shape_id)
        with self._lock:
            self.version += 1

    @property
    def delta_points(self) -> int:
        """Unfolded index-tail points summed over all shards — the
        backpressure signal the streaming ingest path watches."""
        return sum(shard.delta_points for shard in self.shards)

    def shard_of(self, shape_id: int) -> Shard:
        return self.shards[shard_for(shape_id, self.num_shards)]

    def set_auto_fold(self, enabled: bool) -> None:
        """Toggle inline fold-at-threshold on every shard base.

        A service running a background fold scheduler turns this off so
        ingest never pays a rebuild inline; standalone shard sets keep
        the default inline behaviour.
        """
        for shard in self.shards:
            shard.base.auto_fold = bool(enabled)

    def warm(self, pool=None, execution: str = "thread") -> None:
        """Build every shard's structures; in parallel when given a
        :class:`~repro.service.pool.WorkerPool`.

        With ``execution="process"`` and a
        :class:`~repro.service.procpool.ProcessWorkerPool`, the warm
        publishes the shards and attaches every worker process, which
        build their own index/matcher/ANN structures; the parent only
        builds the constant-cost hash tier it actually serves (the
        degradation ladder's salvage rung) — duplicating the full
        builds parent-side would roughly double warm-up CPU time and
        resident memory for structures the parent never queries.
        """
        if execution == "process" and hasattr(pool, "sync"):
            build = self._warm_hash_tier
        else:
            build = lambda shard: shard.warm()
        if pool is not None:
            pool.map_over(build, list(self.shards))
        else:
            for shard in self.shards:
                build(shard)
        if execution == "process" and hasattr(pool, "sync"):
            pool.sync(self)

    @staticmethod
    def _warm_hash_tier(shard: Shard) -> None:
        """Parent-side warm for process mode: hash tables only."""
        shard.retriever

    # -- statistics -----------------------------------------------------
    @property
    def num_shapes(self) -> int:
        return sum(s.num_shapes for s in self.shards)

    @property
    def num_entries(self) -> int:
        return sum(s.base.num_entries for s in self.shards)

    def shape_counts(self) -> List[int]:
        """Per-shard shape counts (balance diagnostics)."""
        return [s.num_shapes for s in self.shards]

    def __iter__(self):
        return iter(self.shards)

    def __len__(self) -> int:
        return self.num_shards

    def __repr__(self) -> str:
        return (f"ShardSet(shards={self.num_shards}, "
                f"shapes={self.shape_counts()})")
