"""Background fold scheduling for the streaming write path.

Inline fold-at-threshold (`IncrementalIndex.extended`'s default) puts
an O(n log n) rebuild on whichever ingest batch happens to cross the
threshold — exactly the latency spike a live service cannot afford.
The :class:`FoldScheduler` moves that work off the write path: a
daemon thread scans the shards, rebuilds the static index for the
most overgrown tails *without holding any lock*, and swaps each result
in as an atomic epoch bump (:meth:`Shard.fold`).  Ingest, meanwhile,
extends tails unconditionally (``auto_fold`` off).

Per-cycle budget: at most ``folds_per_cycle`` shards fold per scan, so
a burst that overgrows every shard at once amortizes its rebuilds
across cycles instead of stalling the process on all of them —
queries answer from the (slightly slower, still exact) brute tails in
the interim.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from .metrics import MetricsRegistry


class FoldScheduler:
    """Daemon that folds overgrown incremental-index tails.

    Parameters
    ----------
    shards:
        The :class:`~repro.service.shards.ShardSet` to watch.
    metrics:
        Fold durations land in the ``ingest.fold_ms`` histogram and
        completed folds in the ``ingest.folds`` counter.
    interval:
        Seconds between scans while idle.
    folds_per_cycle:
        Per-cycle budget: the most overgrown shards fold first.
    """

    def __init__(self, shards, metrics: Optional[MetricsRegistry] = None,
                 interval: float = 0.05, folds_per_cycle: int = 1):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if folds_per_cycle < 1:
            raise ValueError("folds_per_cycle must be at least 1")
        self.shards = shards
        self.metrics = metrics
        self.interval = float(interval)
        self.folds_per_cycle = int(folds_per_cycle)
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self.shards.set_auto_fold(False)
        self._thread = threading.Thread(target=self._run,
                                        name="fold-scheduler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._wake.set()
        self._thread.join()
        self._thread = None
        self.shards.set_auto_fold(True)

    def poke(self) -> None:
        """Nudge the scheduler out of its idle wait (ingest calls this
        after a batch so folds start promptly under load)."""
        self._wake.set()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    def pending(self) -> List[int]:
        """Shard indexes whose tails currently exceed the threshold."""
        return [shard.index for shard in self.shards
                if shard.needs_fold()]

    def fold_cycle(self) -> int:
        """One budgeted pass: fold the most overgrown shards.

        Returns the number of folds that landed.  Public so tests and
        quiesce points can drive the scheduler deterministically.
        """
        ranked = sorted((shard for shard in self.shards
                         if shard.needs_fold()),
                        key=lambda s: s.delta_points, reverse=True)
        folded = 0
        for shard in ranked[:self.folds_per_cycle]:
            started = time.perf_counter()
            if shard.fold():
                folded += 1
                if self.metrics is not None:
                    self.metrics.histogram("ingest.fold_ms").observe(
                        (time.perf_counter() - started) * 1e3)
                    self.metrics.counter("ingest.folds").increment()
        return folded

    def drain(self, max_passes: int = 64) -> int:
        """Fold until no shard needs it (checkpoint quiesce helper).

        Bounded: a fold can lose its swap race against concurrent
        ingest, so a pass that lands nothing backs off briefly and the
        loop gives up after ``max_passes`` rather than spinning.
        """
        total = 0
        for _ in range(max_passes):
            ranked = [shard for shard in self.shards if shard.needs_fold()]
            if not ranked:
                break
            landed = 0
            for shard in ranked:
                started = time.perf_counter()
                if shard.fold():
                    landed += 1
                    if self.metrics is not None:
                        self.metrics.histogram("ingest.fold_ms").observe(
                            (time.perf_counter() - started) * 1e3)
                        self.metrics.counter("ingest.folds").increment()
            total += landed
            if not landed:
                time.sleep(0.001)
        return total

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                folded = self.fold_cycle()
            except Exception:       # pragma: no cover - defensive: a
                folded = 0          # poisoned shard must not kill folds
            if folded:
                continue            # more may be pending; no idle wait
            self._wake.wait(self.interval)
            self._wake.clear()
