"""Video retrieval — the paper's stated future work (Section 7:
"We are currently incorporating our method in a video retrieval
system").

A video clip is a sequence of frames, each carrying object-boundary
shapes (vector input, or rasters run through the Section 6 extraction
pipeline).  Every frame becomes one "image" of the underlying shape
base, so all of GeoSIR's machinery applies unchanged; on top of it this
module adds the two video-specific operations:

* ``query``   — rank clips by their best-matching frame for a sketch;
* ``track``   — the appearance intervals of a sketched object within
  each clip (consecutive frames containing a similar shape, with small
  gaps bridged), i.e. shape tracking by retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.matcher import GeometricSimilarityMatcher
from ..core.shapebase import ShapeBase
from ..geometry.polyline import Shape
from ..imaging.decompose import decompose_all


@dataclass
class FrameHit:
    """One frame in which a similar shape was found."""

    clip_id: int
    frame_index: int
    shape_id: int
    distance: float


@dataclass
class ClipMatch:
    """A clip ranked by its best frame for a query."""

    clip_id: int
    best: FrameHit
    hits: List[FrameHit] = field(default_factory=list)


@dataclass
class TrackInterval:
    """A maximal run of frames containing the queried object."""

    clip_id: int
    start_frame: int
    end_frame: int
    mean_distance: float

    @property
    def length(self) -> int:
        return self.end_frame - self.start_frame + 1


class VideoIndex:
    """Frame-level shape retrieval over a collection of clips."""

    def __init__(self, alpha: float = 0.1, beta: float = 0.25,
                 backend: str = "kdtree"):
        self.base = ShapeBase(alpha=alpha, backend=backend)
        self.beta = beta
        self._matcher: Optional[GeometricSimilarityMatcher] = None
        #: image id -> (clip id, frame index)
        self._frame_of_image: Dict[int, Tuple[int, int]] = {}
        self._frames_per_clip: Dict[int, int] = {}
        self._next_image_id = 0

    # ------------------------------------------------------------------
    def add_clip(self, clip_id: int,
                 frames: Sequence[Sequence[Shape]]) -> None:
        """Register one clip given per-frame shape lists.

        Frames with no shapes are allowed (the object may be absent).
        """
        if clip_id in self._frames_per_clip:
            raise ValueError(f"clip {clip_id} already indexed")
        if not frames:
            raise ValueError("a clip needs at least one frame")
        for frame_index, shapes in enumerate(frames):
            simple = decompose_all(list(shapes))
            if simple:
                image_id = self._next_image_id
                self._next_image_id += 1
                self.base.add_shapes(simple, image_id=image_id)
                self._frame_of_image[image_id] = (clip_id, frame_index)
        self._frames_per_clip[clip_id] = len(frames)
        self._matcher = None

    @property
    def matcher(self) -> GeometricSimilarityMatcher:
        if self._matcher is None:
            self._matcher = GeometricSimilarityMatcher(self.base,
                                                       beta=self.beta)
        return self._matcher

    @property
    def num_clips(self) -> int:
        return len(self._frames_per_clip)

    @property
    def num_frames(self) -> int:
        return sum(self._frames_per_clip.values())

    # ------------------------------------------------------------------
    def _frame_hits_batch(self, sketches: Sequence[Shape],
                          threshold: float) -> List[List[FrameHit]]:
        """``_frame_hits`` for many sketches through one matcher
        scratch checkout (:meth:`query_threshold_batch`)."""
        answers = self.matcher.query_threshold_batch(list(sketches),
                                                     threshold)
        per_sketch: List[List[FrameHit]] = []
        for matches, _ in answers:
            hits = []
            for match in matches:
                clip_id, frame_index = self._frame_of_image[match.image_id]
                hits.append(FrameHit(clip_id=clip_id,
                                     frame_index=frame_index,
                                     shape_id=match.shape_id,
                                     distance=match.distance))
            per_sketch.append(hits)
        return per_sketch

    def _frame_hits(self, sketch: Shape, threshold: float) -> List[FrameHit]:
        return self._frame_hits_batch([sketch], threshold)[0]

    def _rank_clips(self, hits: List[FrameHit], k: int) -> List[ClipMatch]:
        by_clip: Dict[int, List[FrameHit]] = {}
        for hit in hits:
            by_clip.setdefault(hit.clip_id, []).append(hit)
        ranked = []
        for clip_id, clip_hits in by_clip.items():
            clip_hits.sort(key=lambda h: (h.distance, h.frame_index))
            ranked.append(ClipMatch(clip_id=clip_id, best=clip_hits[0],
                                    hits=sorted(clip_hits,
                                                key=lambda h: h.frame_index)))
        ranked.sort(key=lambda c: c.best.distance)
        return ranked[:k]

    def query(self, sketch: Shape, k: int = 1,
              threshold: float = 0.05) -> List[ClipMatch]:
        """The ``k`` clips best matching a sketch, ranked by their best
        frame; each result carries every qualifying frame hit."""
        return self.query_batch([sketch], k=k, threshold=threshold)[0]

    def query_batch(self, sketches: Sequence[Shape], k: int = 1,
                    threshold: float = 0.05) -> List[List[ClipMatch]]:
        """``[query(s) for s in sketches]`` through one scratch.

        A live panel of sketches (every object being tracked across
        the stream) amortizes the matcher's scratch checkout and array
        pinning exactly like the service tier's batch misses.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        return [self._rank_clips(hits, k)
                for hits in self._frame_hits_batch(sketches, threshold)]

    def track(self, sketch: Shape, threshold: float = 0.05,
              max_gap: int = 1) -> List[TrackInterval]:
        """Appearance intervals of the sketched object per clip.

        Consecutive hit frames (allowing gaps of up to ``max_gap``
        missed frames — extraction may drop the object briefly) are
        merged into intervals, sorted by clip then start frame.
        """
        if max_gap < 0:
            raise ValueError("max_gap must be non-negative")
        by_clip: Dict[int, List[FrameHit]] = {}
        for hit in self._frame_hits(sketch, threshold):
            by_clip.setdefault(hit.clip_id, []).append(hit)
        intervals: List[TrackInterval] = []
        for clip_id in sorted(by_clip):
            hits = sorted(by_clip[clip_id], key=lambda h: h.frame_index)
            run: List[FrameHit] = []
            last_frame = None
            for hit in hits:
                if last_frame is not None and \
                        hit.frame_index - last_frame > max_gap + 1:
                    intervals.append(self._interval(clip_id, run))
                    run = []
                if not run or hit.frame_index != last_frame:
                    run.append(hit)
                last_frame = hit.frame_index
            if run:
                intervals.append(self._interval(clip_id, run))
        return intervals

    @staticmethod
    def _interval(clip_id: int, run: List[FrameHit]) -> TrackInterval:
        return TrackInterval(
            clip_id=clip_id,
            start_frame=run[0].frame_index,
            end_frame=run[-1].frame_index,
            mean_distance=float(np.mean([h.distance for h in run])))

    def __repr__(self) -> str:
        return (f"VideoIndex(clips={self.num_clips}, "
                f"frames={self.num_frames}, "
                f"shapes={self.base.num_shapes})")


def synthesize_clip(prototype: Shape, num_frames: int,
                    rng: np.random.Generator,
                    present: Optional[Sequence[bool]] = None,
                    noise: float = 0.01,
                    distractors: int = 1) -> List[List[Shape]]:
    """A synthetic clip: the prototype drifting through the frame.

    The object rotates, rescales and translates smoothly frame to
    frame, with per-frame boundary noise; ``present`` masks frames in
    which the object is absent (cuts/occlusion).  Each frame also gets
    ``distractors`` unrelated background shapes.
    """
    if num_frames < 1:
        raise ValueError("need at least one frame")
    if present is None:
        present = [True] * num_frames
    if len(present) != num_frames:
        raise ValueError("present mask must have one entry per frame")
    from ..imaging.synthesis import distort, random_blob
    frames: List[List[Shape]] = []
    angle = float(rng.uniform(0, 2 * np.pi))
    scale = float(rng.uniform(3.0, 6.0))
    x, y = float(rng.uniform(30, 70)), float(rng.uniform(30, 70))
    for frame_index in range(num_frames):
        angle += float(rng.normal(0.0, 0.1))
        scale *= float(np.exp(rng.normal(0.0, 0.03)))
        x += float(rng.normal(0.0, 2.0))
        y += float(rng.normal(0.0, 2.0))
        shapes: List[Shape] = []
        if present[frame_index]:
            instance = distort(prototype, noise, rng)
            shapes.append(instance.rotated(angle).scaled(scale)
                          .translated(x, y))
        for _ in range(distractors):
            blob = random_blob(rng, int(rng.integers(8, 14)))
            shapes.append(blob.scaled(float(rng.uniform(2, 5)))
                          .translated(float(rng.uniform(0, 100)),
                                      float(rng.uniform(0, 100))))
        frames.append(shapes)
    return frames
