"""GeoSIR: the end-to-end prototype system (paper Section 6).

One facade over the whole stack:

* **ingestion** — images arrive either as vector shape lists or as
  binary rasters; rasters go through boundary extraction and segment
  approximation, and every polyline is decomposed into simple pieces
  before entering the shape base;
* **retrieval** — a sketch query first runs the incremental-fattening
  matcher; when that exhausts its epsilon budget without a
  sufficiently close match, the geometric-hashing retriever supplies
  approximate answers (the paper's two-method combination);
* **query processing** — topological queries, either composed
  explicitly through :mod:`repro.query.algebra` or derived from a
  multi-shape sketch whose own pairwise relations become the
  predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Set

from ..core.matcher import GeometricSimilarityMatcher, Match, MatchStats
from ..core.shapebase import ShapeBase
from ..geometry.polyline import Shape
from ..hashing.hashtable import ApproximateRetriever
from ..imaging.contours import extract_contour_shapes
from ..imaging.decompose import decompose_all
from ..imaging.raster import BinaryImage
from ..query.algebra import QueryNode, Similar, Topological
from ..query.executor import QueryEngine
from ..query.graph import DISJOINT, diameter_angle, relation_between

if TYPE_CHECKING:                  # pragma: no cover - import cycle guard
    from ..ann import AnnConfig
    from ..service import RetrievalService


@dataclass
class RetrievalResult:
    """Outcome of one sketch retrieval."""

    matches: List[Match]
    stats: MatchStats
    method: str          # "envelope" or "hashing"

    @property
    def best(self) -> Optional[Match]:
        return self.matches[0] if self.matches else None


class GeoSIR:
    """The interactive prototype, as a library object.

    Parameters mirror the knobs of the underlying stages; see
    :class:`~repro.core.ShapeBase`,
    :class:`~repro.core.GeometricSimilarityMatcher`,
    :class:`~repro.hashing.ApproximateRetriever` and
    :class:`~repro.query.QueryEngine`.

    ``match_threshold`` decides when the envelope matcher's answer is
    "good enough": a best distance above it (or no answer at all)
    triggers the hashing fallback.
    """

    def __init__(self, alpha: float = 0.1, beta: float = 0.25,
                 backend: str = "kdtree", hash_curves: int = 50,
                 match_threshold: float = 0.05,
                 similarity_threshold: float = 0.05,
                 extraction_tolerance: float = 1.2):
        self.base = ShapeBase(alpha=alpha, backend=backend)
        self.beta = beta
        self.hash_curves = hash_curves
        self.match_threshold = float(match_threshold)
        self.similarity_threshold = float(similarity_threshold)
        self.extraction_tolerance = float(extraction_tolerance)
        self._matcher: Optional[GeometricSimilarityMatcher] = None
        self._retriever: Optional[ApproximateRetriever] = None
        self._engine: Optional[QueryEngine] = None
        self._service: Optional["RetrievalService"] = None
        self._next_image_id = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add_image(self, shapes: Optional[Sequence[Shape]] = None,
                  raster: Optional[BinaryImage] = None,
                  image_id: Optional[int] = None) -> int:
        """Register one image given its shapes and/or raster.

        Raster input runs the extraction pipeline (boundary tracing +
        Douglas-Peucker); all shapes, wherever they came from, are
        decomposed into simple polylines before storage, per
        Section 2.4.
        """
        if shapes is None and raster is None:
            raise ValueError("provide shapes, a raster, or both")
        collected: List[Shape] = list(shapes) if shapes else []
        if raster is not None:
            collected.extend(extract_contour_shapes(
                raster, tolerance=self.extraction_tolerance))
        if not collected:
            raise ValueError("no shapes could be extracted for this image")
        simple = decompose_all(collected)
        if image_id is None:
            image_id = self._next_image_id
        self._next_image_id = max(self._next_image_id, image_id + 1)
        self.base.add_shapes(simple, image_id=image_id)
        self._invalidate()
        return image_id

    def remove_image(self, image_id: int) -> int:
        """Remove an image and all its shapes; returns shapes removed.

        Rebuilds the derived structures lazily, like :meth:`add_image`.
        """
        shape_ids = self.base.shapes_of_image(image_id)
        if not shape_ids:
            raise KeyError(f"image {image_id} not in the base")
        for shape_id in shape_ids:
            self.base.remove_shape(shape_id)
        self._invalidate()
        return len(shape_ids)

    def _invalidate(self) -> None:
        self._matcher = None
        self._retriever = None
        self._engine = None
        if self._service is not None:
            self._service.reload(self.base)

    # ------------------------------------------------------------------
    # Lazily-built stages
    # ------------------------------------------------------------------
    @property
    def matcher(self) -> GeometricSimilarityMatcher:
        if self._matcher is None:
            self._matcher = GeometricSimilarityMatcher(self.base,
                                                       beta=self.beta)
        return self._matcher

    @property
    def retriever(self) -> ApproximateRetriever:
        if self._retriever is None:
            self._retriever = ApproximateRetriever(self.base,
                                                   k_curves=self.hash_curves)
        return self._retriever

    @property
    def engine(self) -> QueryEngine:
        if self._engine is None:
            self._engine = QueryEngine(
                self.base, similarity_threshold=self.similarity_threshold,
                matcher=self.matcher)
        return self._engine

    # ------------------------------------------------------------------
    # Service delegation (repro.service)
    # ------------------------------------------------------------------
    @property
    def service(self) -> Optional["RetrievalService"]:
        """The attached retrieval service, if one is enabled."""
        return self._service

    def enable_service(self, num_shards: int = 4, workers: int = 2,
                       cache_capacity: int = 256,
                       max_pending: Optional[int] = None,
                       deadline: Optional[float] = None,
                       ann: Optional["AnnConfig"] = None,
                       ann_mode: str = "auto") -> "RetrievalService":
        """Serve retrievals through a sharded, cached, concurrent tier.

        Builds a :class:`repro.service.RetrievalService` over the
        current base (geometric knobs inherited from this facade) and
        delegates :meth:`retrieve` to it from now on.  Ingest keeps
        working through this facade; the service is re-sharded on every
        mutation, exactly as the matcher and retriever are rebuilt.

        ``ann`` (an :class:`repro.ann.AnnConfig`) adds the LSH-pruned
        approximate tier as the middle rung of the service's
        degradation ladder; ``ann_mode="always"`` routes every query
        through it.
        """
        from ..service import RetrievalService, ServiceConfig
        config = ServiceConfig(
            num_shards=num_shards, workers=workers,
            cache_capacity=cache_capacity, max_pending=max_pending,
            deadline=deadline, alpha=self.base.alpha, beta=self.beta,
            backend=self.base.backend, hash_curves=self.hash_curves,
            match_threshold=self.match_threshold, ann=ann,
            ann_mode=ann_mode)
        self._service = RetrievalService.from_base(self.base, config)
        return self._service

    def disable_service(self) -> None:
        """Back to direct (unsharded, single-threaded) retrieval."""
        if self._service is not None:
            self._service.close()
            self._service = None

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def retrieve(self, sketch: Shape, k: int = 1) -> RetrievalResult:
        """Best-match retrieval with automatic hashing fallback.

        With a service enabled (:meth:`enable_service`) the query goes
        through the sharded concurrent tier — same answers (shard
        merging is exact), plus caching and graceful degradation.
        """
        if self._service is not None:
            result = self._service.retrieve(sketch, k=k)
            if result.overloaded:
                raise RuntimeError("retrieval service overloaded; "
                                   "retry or raise max_pending")
            return RetrievalResult(matches=result.matches,
                                   stats=result.stats,
                                   method=result.method)
        matches, stats = self.matcher.query(sketch, k=k)
        good = [m for m in matches if m.distance <= self.match_threshold]
        if good:
            return RetrievalResult(matches=matches, stats=stats,
                                   method="envelope")
        approx = self.retriever.query(sketch, k=k)
        if not approx:
            # Nothing hashed either; return whatever the matcher had.
            return RetrievalResult(matches=matches, stats=stats,
                                   method="envelope")
        return RetrievalResult(matches=approx, stats=stats, method="hashing")

    def retrieve_batch(self, sketches: Sequence[Shape], k: int = 1
                       ) -> List[RetrievalResult]:
        """Batched best-match retrieval; equals per-sketch `retrieve`.

        With a service enabled the batch goes through its amortized
        multi-query path (cache probes, coalescing, per-shard batched
        matcher calls); without one, the matcher's ``query_batch``
        amortizes the per-query scratch, with the same per-sketch
        hashing fallback as :meth:`retrieve`.
        """
        sketches = list(sketches)
        if self._service is not None:
            service_results = self._service.retrieve_batch(sketches, k=k)
            results: List[RetrievalResult] = []
            for result in service_results:
                if result.overloaded:
                    raise RuntimeError("retrieval service overloaded; "
                                       "retry or raise max_pending")
                results.append(RetrievalResult(matches=result.matches,
                                               stats=result.stats,
                                               method=result.method))
            return results
        results = []
        for sketch, (matches, stats) in zip(
                sketches, self.matcher.query_batch(sketches, k=k)):
            good = [m for m in matches
                    if m.distance <= self.match_threshold]
            if good:
                results.append(RetrievalResult(matches=matches,
                                               stats=stats,
                                               method="envelope"))
                continue
            approx = self.retriever.query(sketch, k=k)
            if not approx:
                results.append(RetrievalResult(matches=matches,
                                               stats=stats,
                                               method="envelope"))
            else:
                results.append(RetrievalResult(matches=approx,
                                               stats=stats,
                                               method="hashing"))
        return results

    def retrieve_similar(self, sketch: Shape,
                         threshold: Optional[float] = None) -> List[Match]:
        """All shapes within a distance threshold of the sketch."""
        if threshold is None:
            threshold = self.similarity_threshold
        matches, _ = self.matcher.query_threshold(sketch, threshold)
        return matches

    # ------------------------------------------------------------------
    # Query processing
    # ------------------------------------------------------------------
    def query(self, node: QueryNode) -> Set[int]:
        """Execute a composed topological query; returns image ids."""
        return self.engine.execute(node)

    def sketch_query(self, sketch_shapes: Sequence[Shape],
                     use_angles: bool = False) -> QueryNode:
        """Build the topological query a multi-shape sketch implies.

        Per Section 6, a drafted sketch is decomposed into simple
        polylines; the query then asks for images containing shapes
        similar to every component, with the components' own pairwise
        relations (contain/overlap, and their diameter angles when
        ``use_angles``) as predicates.  Disjoint sketch pairs add no
        constraint — two shapes drawn apart usually means "both appear",
        not "they must not touch".
        """
        parts = decompose_all(list(sketch_shapes))
        if not parts:
            raise ValueError("the sketch contains no usable shapes")
        node: QueryNode = Similar(parts[0])
        for shape in parts[1:]:
            node = node & Similar(shape)
        for i, s1 in enumerate(parts):
            for s2 in parts[i + 1:]:
                relation = relation_between(s1, s2)
                if relation == DISJOINT:
                    continue
                theta = diameter_angle(s1, s2) if use_angles else "any"
                if relation == "contained_by":
                    node = node & Topological("contain", s2, s1, theta)
                else:
                    node = node & Topological(relation, s1, s2, theta)
        return node

    # ------------------------------------------------------------------
    def statistics(self) -> dict:
        """A snapshot of base/system statistics (diagnostics, README)."""
        return {
            "images": self.base.num_images,
            "shapes": self.base.num_shapes,
            "entries": self.base.num_entries,
            "vertices": self.base.total_vertices,
            "copies_per_shape": (self.base.num_entries /
                                 max(1, self.base.num_shapes)),
            "alpha": self.base.alpha,
            "beta": self.beta,
        }

    def __repr__(self) -> str:
        stats = self.statistics()
        return (f"GeoSIR(images={stats['images']}, shapes={stats['shapes']}, "
                f"entries={stats['entries']})")
