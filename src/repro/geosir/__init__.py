"""The GeoSIR prototype facade (paper Section 6) and the video
retrieval extension (the future work of Section 7)."""

from .engine import GeoSIR, RetrievalResult
from .video import (ClipMatch, FrameHit, TrackInterval, VideoIndex,
                    synthesize_clip)

__all__ = ["ClipMatch", "FrameHit", "GeoSIR", "RetrievalResult",
           "TrackInterval", "VideoIndex", "synthesize_clip"]
