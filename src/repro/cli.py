"""Command-line interface: build, inspect and query shape bases.

Usage (``python -m repro ...``)::

    repro demo                                   # synthetic walkthrough
    repro build  --images imgs.json --out b.gsir [--alpha 0.1]
                 [--snapshot out.gsb] [--sign-curves 50] [--ann]
    repro stats  --base b.gsir
    repro query  --base b.gsir --sketch sk.json [-k 3] [--threshold T]
                 [--json] [--profile] [--ann]
    repro serve-bench [--workers 1,2,4] [--processes 2,4] [--shards 4]
                      [--no-cache] [--batch N] [--profile]
                      [--snapshot b.gsb] [--mmap]
                      [--ann] [--ann-mode auto|always]
                      [--http] [--replicas N] [--chaos SEED]
    repro serve  --http [--port 8787] [--replicas 2]
                 [--snapshot b.gsb | --images N]

``--ann`` flags select the polygon-LSH approximate tier
(:mod:`repro.ann`): ``build --ann`` embeds MinHash sketches in a v4
snapshot, ``query --ann`` answers from the LSH candidate set only, and
``serve-bench --ann`` serves the three-rung degradation ladder with
per-tier counters.

``imgs.json`` / ``sk.json`` use the format of
:mod:`repro.geometry.io`; a query sketch file should contain exactly
one shape (extra shapes are ignored with a warning).  ``serve-bench``
drives the :mod:`repro.service` tier with a closed-loop load generator
and reports throughput, latency percentiles and the service metrics.
``--processes N[,N...]`` adds process-execution sweeps: shard workers
run as separate processes attached zero-copy to published snapshots
(mmap'd files or shared memory), sidestepping the GIL; the run ends
with a thread-vs-process answer verification pass, and ``--chaos``
SIGKILLs one worker mid-bench to prove degraded-not-failed service.

``serve`` mounts the HTTP/JSON network tier
(:mod:`repro.service.http`): N replica processes warmed from one
snapshot behind a health-checking balancer on a single port.
``serve-bench --http`` drives the same fleet with a closed-loop
client fleet over the wire; ``--chaos`` there SIGKILLs a whole
replica (and, with ``--processes``, one worker inside a surviving
replica) mid-bench and fails unless every client response completes
``ok`` or ``degraded``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, List, Optional

from .core.matcher import GeometricSimilarityMatcher
from .core.shapebase import ShapeBase
from .geometry.io import load_images, load_shapes
from .storage.persist import load_base, save_base


def _ann_config(args: argparse.Namespace):
    """The :class:`repro.ann.AnnConfig` the ``--ann-*`` flags describe."""
    from .ann import AnnConfig
    return AnnConfig(tables=args.ann_tables, band_width=args.ann_band,
                     candidate_cap=args.ann_cap, grid=args.ann_grid,
                     seed=args.ann_seed)


def _add_ann_args(parser: argparse.ArgumentParser, ann_help: str) -> None:
    """The shared ``--ann`` flag family (build / query / serve-bench)."""
    group = parser.add_argument_group("approximate (LSH) tier")
    group.add_argument("--ann", action="store_true", help=ann_help)
    group.add_argument("--ann-tables", type=int, default=16,
                       dest="ann_tables",
                       help="LSH tables (default 16)")
    group.add_argument("--ann-band", type=int, default=2, dest="ann_band",
                       help="MinHash rows per LSH band (default 2)")
    group.add_argument("--ann-grid", type=int, default=32, dest="ann_grid",
                       help="area-grid resolution per axis (default 32)")
    group.add_argument("--ann-seed", type=int, default=0, dest="ann_seed",
                       help="MinHash family seed (default 0)")
    group.add_argument("--ann-cap", type=int, default=512, dest="ann_cap",
                       help="candidate-set cap per query (default 512)")


def _cmd_build(args: argparse.Namespace) -> int:
    import time

    if args.out is None and args.snapshot is None:
        print("error: build needs --out and/or --snapshot",
              file=sys.stderr)
        return 2
    ann_sketch = _ann_config(args).sketch if args.ann else None
    base = ShapeBase(alpha=args.alpha)
    images = load_images(args.images)
    all_shapes = []
    all_images = []
    next_id = 0
    for image_id, shapes in images:
        if image_id is None:
            image_id = next_id
        next_id = max(next_id, image_id + 1)
        all_shapes.extend(shapes)
        all_images.extend([image_id] * len(shapes))
    start = time.perf_counter()
    if all_shapes:
        base.add_shapes(all_shapes, image_ids=all_images)
    ingest_s = time.perf_counter() - start
    print(f"built base: {base.num_shapes} shapes over "
          f"{base.num_images} images -> {base.num_entries} copies "
          f"({ingest_s * 1e3:.1f} ms bulk ingest)")
    fmt = "v4" if ann_sketch is not None else "v3"
    if args.out is not None:
        written = save_base(base, args.out, ann_sketch=ann_sketch)
        print(f"wrote {written} bytes at {args.out} ({fmt})")
    if args.snapshot is not None:
        start = time.perf_counter()
        written = save_base(base, args.snapshot,
                            hash_curves=args.sign_curves,
                            ann_sketch=ann_sketch)
        snap_s = time.perf_counter() - start
        extras = f"signatures for {args.sign_curves} curves"
        if ann_sketch is not None:
            extras += (f" + {ann_sketch.num_hashes}-hash ANN sketches "
                       f"(grid {ann_sketch.grid})")
        print(f"wrote {fmt} snapshot: {written} bytes at {args.snapshot} "
              f"({snap_s * 1e3:.1f} ms, {extras} embedded)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .storage.persist import snapshot_info
    info = snapshot_info(args.base)
    base = load_base(args.base)
    print(f"format version:   v{info['version']}" +
          (f" ({info.get('signature_curves')}-curve signatures embedded)"
           if info.get("signature_curves") else ""))
    print(f"shapes:           {base.num_shapes}")
    print(f"images:           {base.num_images}")
    print(f"normalized copies: {base.num_entries}")
    print(f"indexed vertices: {base.total_vertices}")
    print(f"alpha:            {base.alpha}")
    if base.num_shapes:
        print(f"copies per shape: "
              f"{base.num_entries / base.num_shapes:.1f}")
    ann_hashes = info.get("ann_hashes")
    if ann_hashes:
        sketch_bytes = base.num_entries * int(ann_hashes) * 8
        print(f"ann sketches:     {ann_hashes} hashes/entry "
              f"(grid {info['ann_grid']}, seed {info['ann_seed']}), "
              f"{sketch_bytes} bytes embedded")
    else:
        print("ann sketches:     none (write them with "
              "`repro build --ann`)")
    return 0


def _load_sketch(path: str):
    shapes = load_shapes(path)
    if not shapes:
        raise ValueError("sketch file contains no shapes")
    if len(shapes) > 1:
        print(f"warning: sketch file has {len(shapes)} shapes; "
              f"using the first", file=sys.stderr)
    return shapes[0]


def _cmd_query(args: argparse.Namespace) -> int:
    try:
        base = load_base(args.base)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load base {args.base!r}: {exc}",
              file=sys.stderr)
        return 2
    if base.num_shapes == 0:
        print("the base is empty", file=sys.stderr)
        return 1
    try:
        sketch = _load_sketch(args.sketch)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load sketch {args.sketch!r}: {exc}",
              file=sys.stderr)
        return 2
    if args.ann:
        if args.threshold is not None:
            print("error: --ann is top-k only; it cannot honor "
                  "--threshold", file=sys.stderr)
            return 2
        from .ann import AnnPrunedMatcher
        config = _ann_config(args)
        if base.cached_sketches(config.sketch.key) is None:
            print(f"error: {args.base!r} has no embedded ANN sketches "
                  f"for (hashes={config.num_hashes}, "
                  f"grid={config.grid}, seed={config.seed}); "
                  f"rebuild the base with `repro build --ann` "
                  f"(matching --ann-* parameters)", file=sys.stderr)
            return 2
        matcher = AnnPrunedMatcher(base, config)
        matches, stats = matcher.query(sketch, k=args.k)
        method = "ann-topk"
    else:
        matcher = GeometricSimilarityMatcher(base)
        if args.threshold is not None:
            matches, stats = matcher.query_threshold(sketch,
                                                     args.threshold)
            method = "envelope-threshold"
        else:
            matches, stats = matcher.query(sketch, k=args.k)
            method = "envelope-topk"
    if args.json:
        print(json.dumps({
            "method": method,
            "matches": [{"rank": rank,
                         "shape_id": match.shape_id,
                         "image_id": match.image_id,
                         "distance": match.distance,
                         "approximate": match.approximate}
                        for rank, match in enumerate(matches, start=1)],
            "stats": {"iterations": stats.iterations,
                      "triangles_queried": stats.triangles_queried,
                      "vertices_reported": stats.vertices_reported,
                      "vertices_processed": stats.vertices_processed,
                      "candidates_evaluated": stats.candidates_evaluated,
                      "guaranteed": stats.guaranteed,
                      "exhausted": stats.exhausted,
                      "timings": stats.timings},
        }, indent=1))
        return 0
    print(f"{len(matches)} match(es) "
          f"({stats.iterations} envelope iterations, "
          f"{stats.candidates_evaluated} candidates evaluated)")
    for rank, match in enumerate(matches, start=1):
        print(f"  #{rank}: shape {match.shape_id} "
              f"(image {match.image_id}) distance {match.distance:.6f}")
    if args.profile:
        _print_profile(stats.timings)
    return 0


def _print_profile(timings: dict, indent: str = "  ") -> None:
    """Per-stage wall-time breakdown from ``MatchStats.timings``."""
    total = sum(timings.values())
    print("per-stage wall time:")
    for key, seconds in sorted(timings.items(), key=lambda kv: -kv[1]):
        share = 100.0 * seconds / total if total else 0.0
        print(f"{indent}{key:<15s} {seconds * 1e3:9.3f} ms  "
              f"({share:5.1f}%)")


def _cmd_demo(args: argparse.Namespace) -> int:
    import numpy as np

    from .imaging.synthesis import generate_workload, make_query_set
    rng = np.random.default_rng(args.seed)
    workload = generate_workload(args.images, rng, shapes_per_image=4.0,
                                 noise=0.01)
    base = ShapeBase(alpha=0.1)
    for image in workload.images:
        for shape in image.shapes:
            base.add_shape(shape, image_id=image.image_id)
    print(f"demo base: {base.num_shapes} shapes, "
          f"{base.num_entries} copies")
    matcher = GeometricSimilarityMatcher(base)
    for query, label in make_query_set(workload, 3, rng, noise=0.01):
        matches, stats = matcher.query(query, k=1)
        best = matches[0]
        print(f"query (prototype {label}) -> shape {best.shape_id} "
              f"in image {best.image_id}, distance {best.distance:.5f} "
              f"[{stats.iterations} iterations]")
    return 0


def _serve_bench_algebra(args: argparse.Namespace) -> int:
    """Mixed algebra workload against the service-tier query engine.

    Builds a base with planted selectivity skew, serves composite
    algebra queries through ``service.query_engine()`` interleaved with
    plain top-k retrieves, prints the service's per-operator algebra
    counters, then runs the planner mode comparison
    (:func:`repro.query.workload.compare_planner`) over the same
    workload.  With ``REPRO_BENCH_LABEL`` set the comparison rows are
    appended to ``BENCH_algebra.json``.
    """
    import os
    import time

    import numpy as np

    from .imaging.synthesis import distort
    from .query.workload import (ALGEBRA_THRESHOLD, algebra_base,
                                 compare_planner, composite_queries,
                                 record_trajectory)
    from .service import RetrievalService, ServiceConfig

    if args.snapshot is not None:
        print("error: --algebra builds its own skewed base; "
              "--snapshot is not supported", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    base, protos = algebra_base(args.images, rng)
    queries = composite_queries(protos, args.queries,
                                np.random.default_rng(args.seed + 1))
    sketches = [distort(proto, 0.008, rng)
                for name, proto in protos.items() if name != "absent"]
    print(f"algebra base: {base.num_shapes} shapes over "
          f"{base.num_images} images; {len(queries)} composite queries "
          f"+ {len(queries)} plain retrieves, threshold "
          f"{ALGEBRA_THRESHOLD}")

    config = ServiceConfig(
        num_shards=args.shards, workers=1,
        cache_capacity=0 if args.no_cache else args.cache_capacity,
        match_threshold=ALGEBRA_THRESHOLD)
    with RetrievalService.from_base(base, config) as service:
        engine = service.query_engine()
        engine.graphs                  # warm the shared relation graphs
        start = time.perf_counter()
        for index, query in enumerate(queries):
            service.retrieve(sketches[index % len(sketches)], k=args.k)
            engine.execute(query)
        wall = time.perf_counter() - start
        algebra = service.snapshot()["algebra"]
        print(f"mixed workload: {2 * len(queries)} requests in "
              f"{wall * 1e3:.1f} ms")
        print(json.dumps({"algebra": algebra}, indent=1, sort_keys=True))

    rows = compare_planner(base, queries)
    for row in rows:
        row["images"] = base.num_images
        row["shapes"] = base.num_shapes
    print()
    print(f"{'mode':<14} {'ms/query':>9} {'sim_checks':>11} "
          f"{'thresholdq':>11} {'pairs':>7} {'reordered':>10}")
    for row in rows:
        print(f"{row['mode']:<14} {row['ms_per_query']:>9.2f} "
              f"{row['sim_checks']:>11d} {row['threshold_queries']:>11d} "
              f"{row['pairs_checked']:>7d} {row['seeds_reordered']:>10d}")
    if args.json:
        print()
        for row in rows:
            print(json.dumps(row))
    label = os.environ.get("REPRO_BENCH_LABEL")
    if label:
        record_trajectory(rows, label, "BENCH_algebra.json")
    return 0


def _bench_exit(escaped: list, failures: list) -> int:
    """The shared serve-bench verdict across thread/process/http modes.

    Degraded answers under chaos are the mechanism working — they
    exit 0.  An escaped exception or a failed invariant (a kill that
    never landed, an errored client response, diverging answers)
    exits 1.  Every mode routes through here so the exit-code contract
    cannot drift between transports.
    """
    if escaped:
        print(f"error: {len(escaped)} exception(s) escaped the service "
              f"under load:", file=sys.stderr)
        for message in escaped[:5]:
            print(f"  {message}", file=sys.stderr)
    for reason in failures:
        print(f"error: {reason}", file=sys.stderr)
    return 1 if (escaped or failures) else 0


def _pctl(sorted_values: list, q: float) -> float:
    """Interpolated percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    position = (len(sorted_values) - 1) * (q / 100.0)
    lo = int(position)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = position - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def _kill_worker_over_http(endpoint, index: int = 0):
    """Ask a replica's admin surface to SIGKILL one of its workers."""
    import http.client

    host, port = endpoint
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("POST", "/admin/kill_worker",
                     body=json.dumps({"index": index}).encode(),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return payload.get("killed_worker")
    finally:
        conn.close()


def _serve_bench_http(args: argparse.Namespace, base, sketches,
                      ann_config, worker_counts: list,
                      process_counts: list) -> int:
    """Closed-loop clients against the replicated HTTP front door.

    The chaos mode here is fleet-level: at the half-way query one
    whole replica is SIGKILLed (and, in process mode, one worker
    inside a *surviving* replica — composing both failure domains over
    the wire).  The invariant is the PR's acceptance bar: every client
    response completes ``ok`` or ``degraded``, never errored, while
    the balancer evicts the corpse within its health-check interval;
    the bench then restarts the replica from the same published
    snapshot and proves it serves again.
    """
    import os
    import tempfile
    import threading
    import time

    from .service import ServiceConfig
    from .service.http import Balancer, NoHealthyReplicas, ReplicaSet

    if args.replicas < 2 and args.chaos is not None:
        print("error: --http --chaos needs --replicas >= 2 (someone "
              "must survive the kill)", file=sys.stderr)
        return 2
    clients = worker_counts[-1]
    execution = "process" if process_counts else "thread"
    processes = process_counts[0] if process_counts else 0
    replica_workers = processes if process_counts else max(2, clients)

    tempdir = None
    snapshot_path = args.snapshot
    if snapshot_path is None:
        tempdir = tempfile.TemporaryDirectory(prefix="repro-http-bench-")
        snapshot_path = os.path.join(tempdir.name, "bench.gsb")
        written = save_base(
            base, snapshot_path,
            ann_sketch=ann_config.sketch if ann_config else None)
        print(f"published fleet snapshot: {written} bytes "
              f"at {snapshot_path}")

    config = ServiceConfig(
        num_shards=args.shards, workers=replica_workers,
        cache_capacity=0 if args.no_cache else args.cache_capacity,
        max_pending=args.max_pending, deadline=args.deadline,
        ann=ann_config, ann_mode=args.ann_mode,
        execution=execution, processes=processes)

    kill_at = args.queries // 2 if args.chaos is not None else None
    victim = (args.chaos % args.replicas) if kill_at is not None else None
    during_until = (kill_at + max(args.queries // 6, 5)
                    if kill_at is not None else None)
    deadline_ms = args.deadline * 1000.0 if args.deadline else None

    outcomes: list = []          # (index, phase, class, seconds, attempts)
    escaped: list = []
    failures: list = []
    position = {"next": 0}
    kill_state: dict = {"replica_pid": None, "worker": None}
    lock = threading.Lock()

    def phase_of(index: int) -> str:
        if kill_at is None or index < kill_at:
            return "before"
        return "during" if index < during_until else "after"

    try:
        with ReplicaSet(snapshot_path, replicas=args.replicas,
                        config=config,
                        allow_admin=execution == "process") as fleet, \
                Balancer(fleet.endpoints(), health_interval=0.1,
                         retry_budget=3) as balancer:
            print(f"fleet: {args.replicas} replicas ({execution} "
                  f"execution, {replica_workers} workers each) at "
                  + ", ".join(f"{h}:{p}" for h, p in fleet.endpoints())
                  + f"; {clients} closed-loop clients")
            if kill_at is not None:
                note = f"chaos: SIGKILL replica {victim} at query {kill_at}"
                if execution == "process":
                    note += (f" + SIGKILL one worker inside replica "
                             f"{(victim + 1) % args.replicas}")
                print(note)

            def client() -> None:
                while True:
                    with lock:
                        index = position["next"]
                        if index >= args.queries:
                            return
                        position["next"] = index + 1
                    if kill_at is not None and index >= kill_at:
                        with lock:
                            claim = kill_state["replica_pid"] is None
                            if claim:
                                kill_state["replica_pid"] = -1
                        if claim:
                            kill_state["replica_pid"] = fleet.kill(victim)
                            if execution == "process":
                                sibling = (victim + 1) % args.replicas
                                try:
                                    kill_state["worker"] = \
                                        _kill_worker_over_http(
                                            fleet.endpoints()[sibling])
                                except OSError as exc:
                                    with lock:
                                        escaped.append(
                                            f"admin kill failed: {exc}")
                    sketch = sketches[index % len(sketches)]
                    started = time.perf_counter()
                    try:
                        response = balancer.query(
                            sketch, k=args.k, deadline_ms=deadline_ms)
                    except NoHealthyReplicas as exc:
                        with lock:
                            escaped.append(f"NoHealthyReplicas: {exc}")
                        return
                    except Exception as exc:
                        with lock:
                            escaped.append(f"{type(exc).__name__}: {exc}")
                        return
                    elapsed = time.perf_counter() - started
                    payload = response.payload
                    if response.status_code == 200 and \
                            payload.get("degraded"):
                        klass = "degraded"
                    elif response.status_code == 200 and \
                            payload.get("status") == "ok":
                        klass = "ok"
                    elif response.status_code == 503:
                        klass = "overloaded"
                    else:
                        klass = "errored"
                    with lock:
                        outcomes.append((index, phase_of(index), klass,
                                         elapsed, response.attempts))

            start = time.perf_counter()
            threads = [threading.Thread(target=client,
                                        name=f"http-client-{i}")
                       for i in range(clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - start

            counts = {"ok": 0, "degraded": 0, "overloaded": 0,
                      "errored": 0}
            for _, _, klass, _, _ in outcomes:
                counts[klass] += 1
            retries = sum(attempts - 1
                          for _, _, _, _, attempts in outcomes)
            phases = {}
            for phase in ("before", "during", "after"):
                lat = sorted(seconds for _, ph, _, seconds, _ in outcomes
                             if ph == phase)
                if lat:
                    phases[phase] = {
                        "queries": len(lat),
                        "p50_ms": round(_pctl(lat, 50.0) * 1e3, 2),
                        "p99_ms": round(_pctl(lat, 99.0) * 1e3, 2)}
            all_lat = sorted(seconds
                             for _, _, _, seconds, _ in outcomes)

            restart_checks: dict = {}
            if kill_at is not None:
                if kill_state["replica_pid"] in (None, -1):
                    failures.append("the replica kill never landed")
                # Eviction: the health checker must notice the corpse.
                evict_deadline = time.monotonic() + 5.0
                while victim in balancer.healthy() and \
                        time.monotonic() < evict_deadline:
                    time.sleep(0.05)
                evicted = victim not in balancer.healthy()
                if not evicted:
                    failures.append(f"balancer never evicted killed "
                                    f"replica {victim}")
                # Warm standby: restart from the same snapshot and
                # prove it serves again.
                address = fleet.restart(victim)
                balancer.replace_endpoint(victim, address)
                balancer.check_health()
                readmitted = victim in balancer.healthy()
                probe = balancer.query(sketches[0], k=args.k)
                resumed = probe.ok
                restart_checks = {"evicted": evicted,
                                  "readmitted": readmitted,
                                  "resumed": resumed}
                if not (readmitted and resumed):
                    failures.append(
                        f"restarted replica {victim} did not resume "
                        f"serving (readmitted={readmitted}, "
                        f"probe ok={resumed})")
                if counts["errored"]:
                    failures.append(
                        f"{counts['errored']} client responses errored "
                        f"under the replica kill (every response must "
                        f"be ok or degraded)")
            elif counts["errored"]:
                failures.append(f"{counts['errored']} client responses "
                                f"errored")
            completed = len(outcomes)
            if not escaped and completed < args.queries:
                failures.append(f"only {completed} of {args.queries} "
                                f"queries completed")

            row = {
                "mode": f"http-{execution}-{args.replicas}r{clients}c",
                "transport": "http",
                "execution": execution,
                "replicas": args.replicas,
                "clients": clients,
                "shards": args.shards,
                "queries": args.queries,
                "completed": completed,
                "outcomes": counts,
                "balancer_retries": retries,
                "wall_s": round(wall, 4),
                "throughput_qps": (round(completed / wall, 2)
                                   if wall else 0.0),
                "latency_p50_ms": round(_pctl(all_lat, 50.0) * 1e3, 2),
                "latency_p99_ms": round(_pctl(all_lat, 99.0) * 1e3, 2),
                "phases": phases,
            }
            if kill_at is not None:
                row["killed_replica"] = victim
                row["killed_pid"] = kill_state["replica_pid"]
                if kill_state["worker"] is not None:
                    row["killed_worker_in_replica"] = kill_state["worker"]
                row.update(restart_checks)

            print()
            print(f"{'phase':<8} {'queries':>8} {'p50ms':>9} {'p99ms':>9}")
            for phase in ("before", "during", "after"):
                stats = phases.get(phase)
                if stats:
                    print(f"{phase:<8} {stats['queries']:>8d} "
                          f"{stats['p50_ms']:>9.2f} "
                          f"{stats['p99_ms']:>9.2f}")
            print(f"outcomes: {counts['ok']} ok, "
                  f"{counts['degraded']} degraded, "
                  f"{counts['overloaded']} overloaded, "
                  f"{counts['errored']} errored; "
                  f"{retries} balancer retries; "
                  f"{row['throughput_qps']} qps overall")
            if restart_checks:
                print(f"failover: evicted={restart_checks['evicted']}, "
                      f"restarted replica readmitted="
                      f"{restart_checks['readmitted']}, "
                      f"serving again={restart_checks['resumed']}")
            if args.json:
                print()
                print(json.dumps(row))
            label = os.environ.get("REPRO_BENCH_LABEL")
            if label:
                from .query.workload import record_trajectory
                record_trajectory([row], label, "BENCH_matcher.json")
    finally:
        if tempdir is not None:
            tempdir.cleanup()
    return _bench_exit(escaped, failures)


def _serve_bench_stream(args: argparse.Namespace) -> int:
    """Continuous ingest concurrent with closed-loop queries.

    Thin wrapper over :func:`repro.service.streambench.run_stream_scenario`
    (idle baseline -> stream segments with a concurrent ingest thread ->
    quiesced bit-for-bit checkpoints against a rebuilt static base;
    --chaos SIGKILLs a process worker mid-stream).  Formats the rows,
    appends them to ``BENCH_stream.json`` when ``REPRO_BENCH_LABEL`` is
    set, and exits 1 on escaped exceptions, checkpoint divergence or a
    chaos kill that never landed.
    """
    import os

    from .service.streambench import run_stream_scenario

    try:
        worker_counts = [int(w) for w in str(args.workers).split(",")]
        process_counts = [int(p) for p in str(args.processes).split(",")
                          if p.strip()]
    except ValueError:
        print("error: --workers/--processes expect comma-separated "
              "integers", file=sys.stderr)
        return 2
    modes = [("thread", worker_counts[0])]
    modes += [("process", procs) for procs in process_counts[:1]]

    batches = max(1, args.stream_batches)
    batch_size = max(1, args.stream_batch)
    checkpoints = max(1, min(args.stream_checkpoints, batches))
    print(f"stream: {args.images} base images; ingesting {batches} "
          f"batches x {batch_size} shapes with concurrent closed-loop "
          f"queries; {checkpoints} consistency checkpoints")

    rows, escaped, failures = run_stream_scenario(
        images=args.images, queries=args.queries,
        distinct=args.distinct, k=args.k, shards=args.shards,
        modes=modes, batches=batches, batch_size=batch_size,
        checkpoints=checkpoints, max_pending=args.max_pending,
        ann=_ann_config(args) if args.ann else None,
        ann_mode=args.ann_mode,
        ingest_max_delta=args.stream_max_delta,
        ingest_pause=args.stream_pause,
        publish_compact_every=args.stream_compact_every,
        chaos=args.chaos, seed=args.seed)

    print()
    print("mode         idle_p99  stream_p99  quiet_p99  x     "
          "ingest/s  waits  folds  checkpoints")
    for row in rows:
        print(f"{row['mode']:<12} {row['idle_p99_ms']:<9.2f} "
              f"{row['stream_p99_ms']:<11.2f} "
              f"{row['final_idle_p99_ms']:<10.2f} "
              f"{row['p99_interference']:<5.2f} "
              f"{row['ingest_rate_sps']:<9.1f} "
              f"{row['backpressure_waits']:<6d} {row['folds']:<6d} "
              f"{row['checkpoints']}/{row['checkpoint_mismatches']} "
              f"mismatched")
    for row in rows:
        if "sync" in row:
            sync = row["sync"]
            print(f"{row['mode']}: {sync['delta_rounds']} delta rounds "
                  f"({sync['delta_bytes']} B), {sync['full_rounds']} "
                  f"full rounds ({sync['full_bytes']} B)")
    if args.json:
        print()
        for row in rows:
            print(json.dumps(row))
    label = os.environ.get("REPRO_BENCH_LABEL")
    if label:
        from .query.workload import record_trajectory
        from .service.streambench import STREAM_TRAJECTORY_HEADER
        record_trajectory(rows, label, "BENCH_stream.json",
                          header=STREAM_TRAJECTORY_HEADER)
    return _bench_exit(escaped, failures)


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """Closed-loop load generation against the retrieval service."""
    import threading
    import time

    import numpy as np

    from .imaging.synthesis import generate_workload, make_query_set
    from .service import FaultPlan, RetrievalService, ServiceConfig

    if args.algebra:
        return _serve_bench_algebra(args)
    if args.stream:
        return _serve_bench_stream(args)

    try:
        worker_counts = [int(w) for w in str(args.workers).split(",")]
    except ValueError:
        print(f"error: --workers expects comma-separated integers, "
              f"got {args.workers!r}", file=sys.stderr)
        return 2
    if any(workers < 1 for workers in worker_counts):
        print("error: --workers values must be at least 1",
              file=sys.stderr)
        return 2
    try:
        process_counts = [int(p) for p in str(args.processes).split(",")
                          if p.strip()]
    except ValueError:
        print(f"error: --processes expects comma-separated integers, "
              f"got {args.processes!r}", file=sys.stderr)
        return 2
    if any(procs < 1 for procs in process_counts):
        print("error: --processes values must be at least 1",
              file=sys.stderr)
        return 2
    if args.mmap and args.snapshot is None:
        print("error: --mmap needs --snapshot", file=sys.stderr)
        return 2

    if args.snapshot is not None:
        start = time.perf_counter()
        try:
            base = load_base(args.snapshot, mmap=args.mmap)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load snapshot {args.snapshot!r}: {exc}",
                  file=sys.stderr)
            return 2
        load_s = time.perf_counter() - start
        if base.num_shapes == 0:
            print("error: snapshot base is empty", file=sys.stderr)
            return 2
        # Stored shapes double as the query set: planted exact matches,
        # which is what the cold-start measurement needs (no synthesis).
        sketches = [base.shapes[sid]
                    for sid in list(base.shapes)[:args.distinct]]
        print(f"snapshot {args.snapshot}: {base.num_shapes} shapes, "
              f"{base.num_entries} copies loaded in {load_s * 1e3:.1f} ms "
              f"({base.snapshot_backing} backing)")
    else:
        rng = np.random.default_rng(args.seed)
        workload = generate_workload(args.images, rng,
                                     shapes_per_image=4.0, noise=0.01)
        base = ShapeBase(alpha=0.1)
        for image in workload.images:
            for shape in image.shapes:
                base.add_shape(shape, image_id=image.image_id)
        sketches = [query for query, _ in
                    make_query_set(workload, args.distinct,
                                   np.random.default_rng(args.seed + 1),
                                   noise=0.01)]
    print(f"base: {base.num_shapes} shapes over {base.num_images} images; "
          f"{args.queries} queries ({len(sketches)} distinct) per config")

    ann_config = _ann_config(args) if args.ann else None
    if ann_config is not None:
        print(f"ann tier: {args.ann_mode} mode, "
              f"{ann_config.tables} tables x {ann_config.band_width} "
              f"rows, grid {ann_config.grid}, cap "
              f"{ann_config.candidate_cap}")

    if args.http:
        return _serve_bench_http(args, base, sketches, ann_config,
                                 worker_counts, process_counts)

    chaos_plan = None
    if args.chaos is not None:
        chaos_plan = FaultPlan.default(args.chaos, args.shards)
        print(f"chaos: seed {args.chaos} -> {chaos_plan!r} "
              f"(replayable: same seed, same schedule)")
        if process_counts:
            print(f"chaos (process mode): SIGKILL worker "
                  f"{args.chaos} % nprocs at query {args.queries // 2}")

    # One sweep point per (execution, parallelism) pair: every --workers
    # value in thread mode, then every --processes value with as many
    # closed-loop clients as worker processes.
    modes = [("thread", workers) for workers in worker_counts]
    modes += [("process", procs) for procs in process_counts]

    # Priming pass: first-touch numpy/allocator costs land here instead
    # of biasing whichever configuration happens to run first.  Its
    # construction time is the cold start proper: shard the base and
    # build every shard's kd-tree and hash table in parallel.
    start = time.perf_counter()
    with RetrievalService.from_base(base, ServiceConfig(
            num_shards=args.shards, workers=1, cache_capacity=0,
            ann=ann_config, ann_mode=args.ann_mode)) as primer:
        cold_s = time.perf_counter() - start
        print(f"cold start (shard + parallel warm, {args.shards} shards): "
              f"{cold_s * 1e3:.1f} ms")
        for sketch in sketches:
            primer.retrieve(sketch, k=args.k)

    rows = []
    escaped: list = []
    for execution, workers in modes:
        # Thread-mode chaos replays the seeded fault plan; process-mode
        # chaos kills a real worker process instead (the failure the
        # process tier exists to survive).
        config_plan = (chaos_plan.replay()
                       if chaos_plan is not None and execution == "thread"
                       else None)
        config = ServiceConfig(
            num_shards=args.shards, workers=workers,
            cache_capacity=0 if args.no_cache else args.cache_capacity,
            max_pending=args.max_pending, deadline=args.deadline,
            fault_plan=config_plan, retry_seed=args.seed,
            ann=ann_config, ann_mode=args.ann_mode,
            execution=execution, processes=workers)
        service = RetrievalService.from_base(base, config)

        # Closed loop: one client per worker; each client issues its
        # next query (or batch of queries, with --batch) only after the
        # previous one completed.
        position = {"next": 0}
        lock = threading.Lock()
        profile_totals: dict = {}
        degraded_count = {"n": 0}
        batch_size = max(0, args.batch)
        kill_at = (args.queries // 2
                   if args.chaos is not None and execution == "process"
                   else None)
        victim = (args.chaos % workers) if kill_at is not None else None
        kill_state: dict = {"pid": None}

        def _record_profile(results) -> None:
            with lock:
                for result in results:
                    for key, seconds in result.stats.timings.items():
                        profile_totals[key] = (profile_totals.get(key, 0.0)
                                               + seconds)

        def client() -> None:
            while True:
                with lock:
                    index = position["next"]
                    if index >= args.queries:
                        return
                    take = (min(batch_size, args.queries - index)
                            if batch_size else 1)
                    position["next"] = index + take
                if kill_at is not None and index >= kill_at:
                    with lock:
                        if kill_state["pid"] is None:
                            kill_state["pid"] = \
                                service.procpool.kill_worker(victim)
                chunk = [sketches[(index + j) % len(sketches)]
                         for j in range(take)]
                try:
                    if batch_size:
                        results = service.retrieve_batch(chunk, k=args.k)
                    else:
                        results = [service.retrieve(chunk[0], k=args.k)]
                except Exception as exc:
                    # Under chaos this is the invariant violation the
                    # smoke run exists to catch: no exception may
                    # escape retrieve/retrieve_batch.
                    with lock:
                        escaped.append(f"{type(exc).__name__}: {exc}")
                    return
                with lock:
                    degraded_count["n"] += sum(
                        1 for r in results if r.failed_shards)
                if args.profile:
                    _record_profile(results)

        start = time.perf_counter()
        clients = [threading.Thread(target=client, name=f"client-{i}")
                   for i in range(workers)]
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        wall = time.perf_counter() - start

        snapshot = service.snapshot()
        latency = snapshot["histograms"]["latency.total"]
        served = snapshot["counters"].get("queries.served", 0)
        tier_latency = {}
        for tier, name in (("exact", "latency.envelope"),
                           ("ann", "latency.ann"),
                           ("hash", "latency.fallback")):
            hist = snapshot["histograms"].get(name)
            if hist is not None:
                tier_latency[tier] = {
                    "p50_ms": round(hist["p50"] * 1e3, 2),
                    "p99_ms": round(hist["p99"] * 1e3, 2)}
        row = {
            "mode": f"{execution}-{workers}",
            "execution": execution,
            "workers": workers,
            "shards": args.shards,
            "cache": not args.no_cache,
            "queries": args.queries,
            "served": served,
            "shed": snapshot["counters"].get("queries.shed", 0),
            "wall_s": round(wall, 4),
            "throughput_qps": round(served / wall, 2) if wall else 0.0,
            "latency_p50_ms": round(latency["p50"] * 1e3, 2),
            "latency_p90_ms": round(latency["p90"] * 1e3, 2),
            "latency_p99_ms": round(latency["p99"] * 1e3, 2),
            "cache_hit_ratio": round(snapshot["rates"]["cache_hit_ratio"],
                                     4),
            "fallback_ratio": round(snapshot["rates"]["fallback_ratio"], 4),
            "tiers": dict(snapshot["tiers"]["counts"]),
            "tier_latency": tier_latency,
        }
        candidates = snapshot["tiers"].get("ann_candidates")
        if candidates:
            row["ann_candidates_p50"] = round(candidates["p50"], 1)
            row["ann_candidates_p90"] = round(candidates["p90"], 1)
        if args.chaos is not None:
            row["degraded"] = degraded_count["n"]
            row["shard_failures"] = snapshot["counters"].get(
                "shards.failures", 0)
            row["retries"] = snapshot["counters"].get("shards.retries", 0)
            row["breaker_skipped"] = snapshot["counters"].get(
                "shards.breaker_skipped", 0)
            if config_plan is not None:
                row["faults_injected"] = dict(config_plan.counts())
            if kill_at is not None:
                row["killed_worker"] = victim
                row["killed_pid"] = kill_state["pid"]
                row["alive_workers"] = service.procpool.alive_workers()
        if execution == "process":
            row["procpool"] = service.procpool.info()
        rows.append(row)
        if args.profile:
            print(f"\n--- profile ({row['mode']}) ---")
            _print_profile(profile_totals)
        if args.metrics:
            print(f"\n--- metrics ({row['mode']}) ---")
            print(json.dumps(snapshot, indent=1))
        service.close()

    header = ("mode         qps      p50ms    p90ms    p99ms    "
              "cache    fallback shed")
    print()
    print(header)
    for row in rows:
        print(f"{row['mode']:<12} {row['throughput_qps']:<8.2f} "
              f"{row['latency_p50_ms']:<8.2f} {row['latency_p90_ms']:<8.2f} "
              f"{row['latency_p99_ms']:<8.2f} {row['cache_hit_ratio']:<8.4f} "
              f"{row['fallback_ratio']:<8.4f} {row['shed']}")

    # Per-tier, per-mode throughput: which rung answered, how fast.
    print()
    print("mode         tier   answers  qps      p50ms    p99ms")
    for row in rows:
        for tier in ("exact", "ann", "hash"):
            count = row["tiers"].get(tier, 0)
            if not count:
                continue
            tier_qps = (round(count / row["wall_s"], 2)
                        if row["wall_s"] else 0.0)
            stats = row["tier_latency"].get(tier)
            p50 = f"{stats['p50_ms']:<8.2f}" if stats else "-       "
            p99 = f"{stats['p99_ms']:<8.2f}" if stats else "-       "
            line = (f"{row['mode']:<12} {tier:<6} {count:<8d} "
                    f"{tier_qps:<8.2f} {p50} {p99}")
            if tier == "ann" and "ann_candidates_p50" in row:
                line += (f"  candidates p50 {row['ann_candidates_p50']} "
                         f"p90 {row['ann_candidates_p90']}")
            print(line)

    failures: list = []
    if args.chaos is not None:
        print()
        for row in rows:
            line = (f"chaos {row['mode']}: "
                    f"{row['degraded']} degraded answers, "
                    f"{row['shard_failures']} shard failures, "
                    f"{row['retries']} retries, "
                    f"{row['breaker_skipped']} breaker skips")
            if "faults_injected" in row:
                line += f", faults {row['faults_injected']}"
            if "killed_worker" in row:
                line += (f", killed worker {row['killed_worker']} "
                         f"(pid {row['killed_pid']}), alive "
                         f"{row['alive_workers']}")
            print(line)
        for row in rows:
            if "killed_worker" in row and not row["degraded"]:
                failures.append(
                    f"{row['mode']} survived a worker kill with no "
                    f"degraded answers — the kill never landed")
    elif process_counts:
        # Answer-equality pass: every distinct sketch must resolve to
        # the same ranked matches in thread and process mode.
        mismatches = _verify_process_mode(
            base, sketches, args, ann_config, process_counts[0])
        print()
        if mismatches:
            failures.append(f"thread/process answers diverge on "
                            f"{mismatches} of {len(sketches)} sketches")
        else:
            print(f"verified: {len(sketches)} sketches answer "
                  f"identically in thread and process mode")

    if args.json:
        print()
        for row in rows:
            print(json.dumps(row))
    return _bench_exit(escaped, failures)


def _verify_process_mode(base, sketches, args, ann_config,
                         processes: int) -> int:
    """Mismatch count between thread- and process-mode answers.

    Fresh single-worker services on both sides (no cache, no chaos):
    any divergence is a wire-marshalling or attach bug, not load noise.
    """
    from .service import RetrievalService, ServiceConfig

    def _config(execution: str) -> "ServiceConfig":
        return ServiceConfig(
            num_shards=args.shards, workers=processes, cache_capacity=0,
            ann=ann_config, ann_mode=args.ann_mode, execution=execution,
            processes=processes)

    def _answers(service) -> list:
        return [[(m.shape_id, m.image_id, m.distance,
                  m.approximate) for m in
                 service.retrieve(sketch, k=args.k).matches]
                for sketch in sketches]

    with RetrievalService.from_base(base, _config("thread")) as threaded:
        expected = _answers(threaded)
    with RetrievalService.from_base(base, _config("process")) as proc:
        actual = _answers(proc)
    return sum(1 for a, b in zip(expected, actual) if a != b)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the replicated HTTP front door until interrupted."""
    import os
    import tempfile
    import time

    from .service import ServiceConfig
    from .service.http import Balancer, BalancerServer, ReplicaSet

    if not args.http:
        print("error: only the HTTP front door is implemented; "
              "pass --http", file=sys.stderr)
        return 2
    if args.replicas < 1:
        print("error: --replicas must be at least 1", file=sys.stderr)
        return 2

    ann_config = _ann_config(args) if args.ann else None
    tempdir = None
    snapshot_path = args.snapshot
    if snapshot_path is None:
        # No corpus given: publish a synthetic one so the quickstart
        # (and its curl examples) work without a dataset at hand.
        import numpy as np

        from .imaging.synthesis import generate_workload
        rng = np.random.default_rng(args.seed)
        workload = generate_workload(args.images, rng,
                                     shapes_per_image=4.0, noise=0.01)
        base = ShapeBase(alpha=0.1)
        for image in workload.images:
            for shape in image.shapes:
                base.add_shape(shape, image_id=image.image_id)
        tempdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
        snapshot_path = os.path.join(tempdir.name, "serve.gsb")
        save_base(base, snapshot_path,
                  ann_sketch=ann_config.sketch if ann_config else None)
        print(f"no --snapshot: published a synthetic "
              f"{base.num_shapes}-shape base at {snapshot_path}")

    config = ServiceConfig(
        num_shards=args.shards, workers=args.workers,
        deadline=args.deadline, ann=ann_config, ann_mode=args.ann_mode,
        execution="process" if args.processes else "thread",
        processes=args.processes)
    try:
        with ReplicaSet(snapshot_path, replicas=args.replicas,
                        config=config) as fleet, \
                Balancer(fleet.endpoints()) as balancer, \
                BalancerServer(balancer, host=args.host,
                               port=args.port) as front:
            host, port = front.address
            print(f"serving {args.replicas} replica(s) behind "
                  f"http://{host}:{port}")
            print(f"  curl -s http://{host}:{port}/readyz")
            print(f"  curl -s http://{host}:{port}/query "
                  f"-H 'X-Deadline-Ms: 50' -d '{{\"sketch\": "
                  f"{{\"closed\": true, \"vertices\": "
                  f"[[0,0],[4,0],[2,3]]}}, \"k\": 3}}'")
            print("  503 + Retry-After means shed: queue full or the "
                  "deadline budget already spent")
            print("Ctrl-C to stop")
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                print("\nshutting down")
    finally:
        if tempdir is not None:
            tempdir.cleanup()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GeoSIR: geometric-similarity shape retrieval")
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="build a base from JSON")
    build.add_argument("--images", required=True,
                       help="JSON file of images/shapes")
    build.add_argument("--out", default=None, help="output .gsir file")
    build.add_argument("--snapshot", default=None, metavar="PATH",
                       help="also write an array-native v3 snapshot with "
                            "precomputed hashing signatures (loads with "
                            "zero re-normalization)")
    build.add_argument("--sign-curves", type=int, default=50,
                       dest="sign_curves",
                       help="hash-curve family size for the signatures "
                            "embedded in --snapshot (default 50)")
    build.add_argument("--alpha", type=float, default=0.1,
                       help="alpha-diameter tolerance (default 0.1)")
    _add_ann_args(build,
                  "embed per-entry ANN MinHash sketches (v4 snapshot); "
                  "`query --ann` and the service's LSH tier then warm "
                  "with zero recompute")
    build.set_defaults(func=_cmd_build)

    stats = commands.add_parser("stats", help="inspect a stored base")
    stats.add_argument("--base", required=True, help=".gsir file")
    stats.set_defaults(func=_cmd_stats)

    query = commands.add_parser("query", help="query a stored base")
    query.add_argument("--base", required=True, help=".gsir file")
    query.add_argument("--sketch", required=True,
                       help="JSON file with the query shape")
    query.add_argument("-k", type=int, default=1,
                       help="number of best matches (default 1)")
    query.add_argument("--threshold", type=float, default=None,
                       help="return all matches within this distance "
                            "instead of the k best")
    query.add_argument("--json", action="store_true",
                       help="machine-readable output (matches, distances, "
                            "method, stats)")
    query.add_argument("--profile", action="store_true",
                       help="print the per-stage wall-time breakdown "
                            "(normalize, range search, exact measures)")
    _add_ann_args(query,
                  "answer via the LSH-pruned approximate tier "
                  "(requires a base built with `build --ann` using the "
                  "same --ann-* parameters)")
    query.set_defaults(func=_cmd_query)

    serve = commands.add_parser(
        "serve-bench",
        help="closed-loop load benchmark of the retrieval service")
    serve.add_argument("--images", type=int, default=24,
                       help="synthetic base size (default 24)")
    serve.add_argument("--snapshot", default=None, metavar="PATH",
                       help="serve a stored base instead of a synthetic "
                            "one; load time and cold start (shard + "
                            "parallel warm) are reported")
    serve.add_argument("--queries", type=int, default=60,
                       help="total queries per configuration (default 60)")
    serve.add_argument("--distinct", type=int, default=12,
                       help="distinct sketches cycled through (default 12)")
    serve.add_argument("--workers", default="1,2,4",
                       help="comma-separated worker counts to sweep "
                            "(default 1,2,4)")
    serve.add_argument("--processes", default="",
                       help="also sweep process execution with these "
                            "comma-separated worker-process counts: "
                            "shards are served from separate processes "
                            "attached zero-copy to published snapshots, "
                            "and the run ends with a thread-vs-process "
                            "answer verification pass (default: thread "
                            "mode only)")
    serve.add_argument("--mmap", action="store_true",
                       help="map the --snapshot file read-only instead "
                            "of copying it into the heap (v3/v4 "
                            "snapshots)")
    serve.add_argument("--shards", type=int, default=4,
                       help="number of shards (default 4)")
    serve.add_argument("--cache-capacity", type=int, default=256,
                       dest="cache_capacity",
                       help="query-result cache entries (default 256)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the query-result cache")
    serve.add_argument("--max-pending", type=int, default=None,
                       dest="max_pending",
                       help="admission bound (default unbounded)")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-query deadline in seconds "
                            "(default unlimited)")
    serve.add_argument("-k", type=int, default=1,
                       help="matches per query (default 1)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--json", action="store_true",
                       help="also emit one JSON row per configuration")
    serve.add_argument("--metrics", action="store_true",
                       help="print the full metrics registry per "
                            "configuration")
    serve.add_argument("--batch", type=int, default=0,
                       help="drive the service's batched retrieval path "
                            "with this many queries per call "
                            "(default 0 = one query per call)")
    serve.add_argument("--profile", action="store_true",
                       help="print the aggregated per-stage wall-time "
                            "breakdown per configuration")
    serve.add_argument("--algebra", action="store_true",
                       help="mixed algebra workload: composite queries "
                            "through the service-tier query engine "
                            "interleaved with plain retrieves, the "
                            "service's per-operator algebra counters, "
                            "and the planner-vs-unplanned comparison "
                            "(rows appended to BENCH_algebra.json when "
                            "REPRO_BENCH_LABEL is set)")
    serve.add_argument("--stream", action="store_true",
                       help="streaming-ingest scenario: an ingest "
                            "thread pushes shape batches through the "
                            "copy-on-write write path (backpressure, "
                            "background folds, delta publication) "
                            "while closed-loop clients keep querying; "
                            "quiesced checkpoints assert the live base "
                            "answers bit-for-bit like a rebuilt static "
                            "one (rows appended to BENCH_stream.json "
                            "when REPRO_BENCH_LABEL is set)")
    serve.add_argument("--stream-batches", type=int, default=12,
                       help="ingest batches per streaming run "
                            "(default 12)")
    serve.add_argument("--stream-batch", type=int, default=8,
                       help="shapes per ingest batch (default 8)")
    serve.add_argument("--stream-checkpoints", type=int, default=3,
                       help="consistency checkpoints spread over the "
                            "stream (default 3)")
    serve.add_argument("--stream-max-delta", type=int, default=4096,
                       help="per-service un-folded delta budget before "
                            "ingest backpressure engages (default "
                            "4096)")
    serve.add_argument("--stream-pause", type=float, default=0.0,
                       help="seconds between ingest batches — the "
                            "modelled stream arrival cadence (default "
                            "0: ingest as fast as backpressure allows)")
    serve.add_argument("--stream-compact-every", type=int, default=None,
                       help="process-tier compaction cadence: full "
                            "republish after this many delta rounds "
                            "(default: the service default; lower "
                            "bounds worker brute-tail growth)")
    serve.add_argument("--chaos", type=int, default=None, metavar="SEED",
                       help="inject a seeded fault plan (one haunted "
                            "shard: exceptions, latency, corrupted "
                            "answers); the run fails if any exception "
                            "escapes the service — same seed, same "
                            "fault schedule.  In process mode (with "
                            "--processes) the chaos is a SIGKILL of "
                            "worker SEED %% nprocs mid-bench instead")
    _add_ann_args(serve,
                  "enable the LSH-pruned tier on every shard and route "
                  "queries per --ann-mode")
    serve.add_argument("--ann-mode", choices=("auto", "always"),
                       default="always", dest="ann_mode",
                       help="'always' answers every query through the "
                            "ANN tier; 'auto' walks the deadline-driven "
                            "ladder exact -> ann -> hash (default "
                            "always)")
    serve.add_argument("--http", action="store_true",
                       help="drive the replicated HTTP front door over "
                            "the wire instead of the in-process "
                            "service; --chaos then SIGKILLs a whole "
                            "replica mid-bench (plus one in-replica "
                            "worker with --processes) and the run "
                            "fails unless every client response "
                            "completes ok or degraded")
    serve.add_argument("--replicas", type=int, default=2,
                       help="replica processes behind the balancer "
                            "with --http (default 2)")
    serve.set_defaults(func=_cmd_serve_bench)

    servecmd = commands.add_parser(
        "serve",
        help="run the replicated HTTP/JSON front door "
             "(POST /query, GET /stats /healthz /readyz)")
    servecmd.add_argument("--http", action="store_true",
                          help="serve the HTTP/JSON protocol "
                               "(required; the only protocol)")
    servecmd.add_argument("--host", default="127.0.0.1",
                          help="bind address (default 127.0.0.1)")
    servecmd.add_argument("--port", type=int, default=8787,
                          help="front-door port (default 8787; 0 picks "
                               "an ephemeral port)")
    servecmd.add_argument("--replicas", type=int, default=2,
                          help="replica processes warmed from the same "
                               "snapshot (default 2)")
    servecmd.add_argument("--snapshot", default=None, metavar="PATH",
                          help="serve this v3/v4 snapshot (replicas "
                               "attach zero-copy); default: publish a "
                               "synthetic base")
    servecmd.add_argument("--images", type=int, default=24,
                          help="synthetic base size when no --snapshot "
                               "(default 24)")
    servecmd.add_argument("--seed", type=int, default=0)
    servecmd.add_argument("--shards", type=int, default=4,
                          help="shards per replica (default 4)")
    servecmd.add_argument("--workers", type=int, default=2,
                          help="worker threads per replica (default 2)")
    servecmd.add_argument("--processes", type=int, default=0,
                          help="serve each replica's shards from this "
                               "many worker processes (default 0 = "
                               "thread execution)")
    servecmd.add_argument("--deadline", type=float, default=None,
                          help="default per-query deadline in seconds "
                               "(clients override per request with the "
                               "X-Deadline-Ms header)")
    _add_ann_args(servecmd,
                  "enable the LSH-pruned middle tier on every replica")
    servecmd.add_argument("--ann-mode", choices=("auto", "always"),
                          default="auto", dest="ann_mode",
                          help="tier policy (default auto: the "
                               "deadline-driven ladder)")
    servecmd.set_defaults(func=_cmd_serve)

    demo = commands.add_parser("demo", help="synthetic walkthrough")
    demo.add_argument("--images", type=int, default=15)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=_cmd_demo)

    experiment = commands.add_parser(
        "experiment", help="regenerate one of the paper's figures")
    experiment.add_argument("name",
                            help="experiment name (or 'list')")
    experiment.add_argument("--no-chart", action="store_true",
                            help="table only, no ASCII chart")
    experiment.set_defaults(func=_cmd_experiment)
    return parser


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import EXPERIMENTS
    if args.name == "list":
        for name, fn in sorted(EXPERIMENTS.items()):
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {summary}")
        return 0
    try:
        fn = EXPERIMENTS[args.name]
    except KeyError:
        print(f"unknown experiment {args.name!r}; try 'list'",
              file=sys.stderr)
        return 2
    result = fn()
    print(result.render(chart=not args.no_chart))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout consumer went away (e.g. `repro query --json | head`);
        # exit quietly like other well-behaved CLI tools.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":       # pragma: no cover
    raise SystemExit(main())
