"""Command-line interface: build, inspect and query shape bases.

Usage (``python -m repro ...``)::

    repro demo                                   # synthetic walkthrough
    repro build  --images imgs.json --out b.gsir [--alpha 0.1]
    repro stats  --base b.gsir
    repro query  --base b.gsir --sketch sk.json [-k 3] [--threshold T]

``imgs.json`` / ``sk.json`` use the format of
:mod:`repro.geometry.io`; a query sketch file should contain exactly
one shape (extra shapes are ignored with a warning).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.matcher import GeometricSimilarityMatcher
from .core.shapebase import ShapeBase
from .geometry.io import load_images, load_shapes
from .storage.persist import load_base, save_base


def _cmd_build(args: argparse.Namespace) -> int:
    base = ShapeBase(alpha=args.alpha)
    images = load_images(args.images)
    next_id = 0
    for image_id, shapes in images:
        if image_id is None:
            image_id = next_id
        next_id = max(next_id, image_id + 1)
        for shape in shapes:
            base.add_shape(shape, image_id=image_id)
    written = save_base(base, args.out)
    print(f"built base: {base.num_shapes} shapes over "
          f"{base.num_images} images -> {base.num_entries} copies, "
          f"{written} bytes at {args.out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    base = load_base(args.base)
    print(f"shapes:           {base.num_shapes}")
    print(f"images:           {base.num_images}")
    print(f"normalized copies: {base.num_entries}")
    print(f"indexed vertices: {base.total_vertices}")
    print(f"alpha:            {base.alpha}")
    if base.num_shapes:
        print(f"copies per shape: "
              f"{base.num_entries / base.num_shapes:.1f}")
    return 0


def _load_sketch(path: str):
    shapes = load_shapes(path)
    if not shapes:
        raise SystemExit("sketch file contains no shapes")
    if len(shapes) > 1:
        print(f"warning: sketch file has {len(shapes)} shapes; "
              f"using the first", file=sys.stderr)
    return shapes[0]


def _cmd_query(args: argparse.Namespace) -> int:
    base = load_base(args.base)
    if base.num_shapes == 0:
        print("the base is empty", file=sys.stderr)
        return 1
    sketch = _load_sketch(args.sketch)
    matcher = GeometricSimilarityMatcher(base)
    if args.threshold is not None:
        matches, stats = matcher.query_threshold(sketch, args.threshold)
    else:
        matches, stats = matcher.query(sketch, k=args.k)
    print(f"{len(matches)} match(es) "
          f"({stats.iterations} envelope iterations, "
          f"{stats.candidates_evaluated} candidates evaluated)")
    for rank, match in enumerate(matches, start=1):
        print(f"  #{rank}: shape {match.shape_id} "
              f"(image {match.image_id}) distance {match.distance:.6f}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    import numpy as np

    from .imaging.synthesis import generate_workload, make_query_set
    rng = np.random.default_rng(args.seed)
    workload = generate_workload(args.images, rng, shapes_per_image=4.0,
                                 noise=0.01)
    base = ShapeBase(alpha=0.1)
    for image in workload.images:
        for shape in image.shapes:
            base.add_shape(shape, image_id=image.image_id)
    print(f"demo base: {base.num_shapes} shapes, "
          f"{base.num_entries} copies")
    matcher = GeometricSimilarityMatcher(base)
    for query, label in make_query_set(workload, 3, rng, noise=0.01):
        matches, stats = matcher.query(query, k=1)
        best = matches[0]
        print(f"query (prototype {label}) -> shape {best.shape_id} "
              f"in image {best.image_id}, distance {best.distance:.5f} "
              f"[{stats.iterations} iterations]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GeoSIR: geometric-similarity shape retrieval")
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="build a base from JSON")
    build.add_argument("--images", required=True,
                       help="JSON file of images/shapes")
    build.add_argument("--out", required=True, help="output .gsir file")
    build.add_argument("--alpha", type=float, default=0.1,
                       help="alpha-diameter tolerance (default 0.1)")
    build.set_defaults(func=_cmd_build)

    stats = commands.add_parser("stats", help="inspect a stored base")
    stats.add_argument("--base", required=True, help=".gsir file")
    stats.set_defaults(func=_cmd_stats)

    query = commands.add_parser("query", help="query a stored base")
    query.add_argument("--base", required=True, help=".gsir file")
    query.add_argument("--sketch", required=True,
                       help="JSON file with the query shape")
    query.add_argument("-k", type=int, default=1,
                       help="number of best matches (default 1)")
    query.add_argument("--threshold", type=float, default=None,
                       help="return all matches within this distance "
                            "instead of the k best")
    query.set_defaults(func=_cmd_query)

    demo = commands.add_parser("demo", help="synthetic walkthrough")
    demo.add_argument("--images", type=int, default=15)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=_cmd_demo)

    experiment = commands.add_parser(
        "experiment", help="regenerate one of the paper's figures")
    experiment.add_argument("name",
                            help="experiment name (or 'list')")
    experiment.add_argument("--no-chart", action="store_true",
                            help="table only, no ASCII chart")
    experiment.set_defaults(func=_cmd_experiment)
    return parser


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import EXPERIMENTS
    if args.name == "list":
        for name, fn in sorted(EXPERIMENTS.items()):
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {summary}")
        return 0
    try:
        fn = EXPERIMENTS[args.name]
    except KeyError:
        print(f"unknown experiment {args.name!r}; try 'list'",
              file=sys.stderr)
        return 2
    result = fn()
    print(result.render(chart=not args.no_chart))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":       # pragma: no cover
    raise SystemExit(main())
