"""Figure 10: hyperbolic selectivity in the significant-vertex count.

The relation is a property of the image domain (structurally simple
shapes resemble many others); the experiment therefore synthesizes a
*complexity spectrum* of radial-noise blobs — near-circles (low V_S,
mutually similar) through jagged outlines (high V_S, distinctive) —
builds two bases at a 2:1 size ratio, and fits ``size ~ c / V_S``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..core.matcher import GeometricSimilarityMatcher
from ..core.shapebase import ShapeBase
from ..geometry.polyline import Shape
from ..query.selectivity import fit_hyperbola, significant_vertices
from .common import ExperimentResult


def spectrum_shape(rng: np.random.Generator, complexity: float) -> Shape:
    """A blob whose jaggedness and vertex count grow with complexity.

    ``complexity`` in [0, 1]: 0 gives a near-circular 10-gon (low V_S),
    1 a 28-vertex jagged outline (high V_S).
    """
    num_vertices = 10 + int(round(18 * complexity))
    amplitude = 0.02 + 0.45 * complexity
    angles = np.sort(rng.uniform(0, 2 * np.pi, num_vertices))
    angles += np.linspace(0, 1e-6, num_vertices)
    radii = np.clip(1.0 + amplitude * rng.standard_normal(num_vertices),
                    0.25, None)
    return Shape(np.column_stack([radii * np.cos(angles),
                                  radii * np.sin(angles)]), closed=True)


def _spectrum_base(num_shapes: int, seed: int) -> ShapeBase:
    rng = np.random.default_rng(seed)
    base = ShapeBase(alpha=0.05)
    for index in range(num_shapes):
        base.add_shape(spectrum_shape(rng, float(rng.uniform(0, 1))),
                       image_id=index % max(1, num_shapes // 5))
    return base


def _series(base: ShapeBase, queries: Sequence[Shape],
            threshold: float) -> Tuple[np.ndarray, np.ndarray]:
    # Symmetric measure: the g_similar semantics under which the
    # inverse V_S relation is observable (see EXPERIMENTS.md).
    matcher = GeometricSimilarityMatcher(base, measure="symmetric")
    vs_values, sizes = [], []
    for query in queries:
        matches, _ = matcher.query_threshold(query, threshold)
        vs_values.append(significant_vertices(query))
        sizes.append(len(matches))
    return np.array(vs_values), np.array(sizes)


def selectivity_experiment(num_shapes: int = 120, seed: int = 11,
                           num_queries: int = 16,
                           threshold: float = 0.06) -> ExperimentResult:
    """Figure 10: |shape_similar(Q)| vs V_S(Q) for bases at a 2:1 ratio."""
    base1 = _spectrum_base(num_shapes, seed)
    base2 = _spectrum_base(num_shapes // 2, seed + 2)
    query_rng = np.random.default_rng(seed + 6)
    queries = [spectrum_shape(query_rng, c)
               for c in np.linspace(0.0, 1.0, num_queries)]
    vs1, sizes1 = _series(base1, queries, threshold)
    vs2, sizes2 = _series(base2, queries, threshold)
    c1 = fit_hyperbola(vs1, sizes1)
    c2 = fit_hyperbola(vs2, sizes2)
    correlation = float(np.corrcoef(1.0 / vs1, sizes1)[0, 1])

    order = np.argsort(vs1)
    rows = [[float(vs1[i]), int(sizes1[i]), int(sizes2[i])] for i in order]
    return ExperimentResult(
        name="fig10",
        title=(f"Figure 10: #similar shapes vs V_S(Q) "
               f"(threshold {threshold}, bases {base1.num_shapes} vs "
               f"{base2.num_shapes} shapes)"),
        headers=["V_S(Q)", "exp1 |similar|", "exp2 |similar|"],
        rows=rows,
        metrics={"c1": c1, "c2": c2,
                 "c_ratio": c1 / max(c2, 1e-9),
                 "inverse_correlation": correlation,
                 "p1": float(base1.num_shapes),
                 "p2": float(base2.num_shapes)},
        series=[("experiment 1",
                 [(float(v), float(s)) for v, s in zip(vs1, sizes1)]),
                ("experiment 2",
                 [(float(v), float(s)) for v, s in zip(vs2, sizes2)])],
        notes=[f"hyperbola fit c1={c1:.1f}, c2={c2:.1f}; "
               f"c1/c2={c1 / max(c2, 1e-9):.2f} (paper: ~2)"])
