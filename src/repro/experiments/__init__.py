"""First-class experiment harnesses: every figure of the paper's
evaluation, regenerable as ordinary library calls.

Each function returns an :class:`~repro.experiments.common.ExperimentResult`
whose ``render()`` prints the same rows/series the paper reports; the
benchmark suite asserts on the returned metrics and the
``repro experiment`` CLI subcommand prints them.

=============  ===========================================
name           reproduces
=============  ===========================================
``fig01``      Figure 1 (criterion motivating example)
``fig07``      Figure 7 (avg I/O per query vs k, 3 sorts)
``fig08``      Figure 8 (avg I/O vs buffer size, k = 2)
``fig10``      Figure 10 (selectivity vs V_S, 2:1 bases)
``localopt``   Section 4.2 (greedy layout vs sorts)
``scaling``    Section 2.5 (poly-log matching cost)
``noise``      the abstract's noise-tolerance claim
=============  ===========================================
"""

from typing import Callable, Dict

from .common import ExperimentResult, build_workload_base
from .criterion import criterion_example, noise_tolerance
from .scaling import matching_scaling
from .selectivity import selectivity_experiment, spectrum_shape
from .storage import buffer_sweep, io_methods, localopt_comparison

#: Registry used by the CLI: name -> zero-argument-friendly callable.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig01": criterion_example,
    "fig07": io_methods,
    "fig08": buffer_sweep,
    "fig10": selectivity_experiment,
    "localopt": localopt_comparison,
    "scaling": matching_scaling,
    "noise": noise_tolerance,
}

__all__ = [
    "EXPERIMENTS", "ExperimentResult", "buffer_sweep",
    "build_workload_base", "criterion_example", "io_methods",
    "localopt_comparison", "matching_scaling", "noise_tolerance",
    "selectivity_experiment", "spectrum_shape",
]
