"""Figure 1 and the noise-tolerance claim: the measure ladder at work."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..baselines.mehrotra_gary import MehrotraGaryIndex
from ..baselines.moments import MomentFeatureIndex
from ..core.matcher import GeometricSimilarityMatcher
from ..core.measures import average_distance, hausdorff, kth_hausdorff
from ..core.shapebase import ShapeBase
from ..geometry.polyline import Shape
from ..imaging.synthesis import distort, prototype_pool
from .common import ExperimentResult

#: The reconstructed Figure 1 trio: query Q, candidate A (globally
#: offset), candidate B (one spike, intuitively the right answer).
FIGURE1_QUERY = Shape([(0.0, 0.0), (4.0, 0.0), (4.0, 2.0), (0.0, 2.0)])
FIGURE1_A = Shape([(0.8, 0.8), (4.8, 0.9), (4.7, 2.9), (0.9, 2.8)])
FIGURE1_B = Shape([(0.0, 0.0), (4.0, 0.0), (4.0, 2.0), (2.0, 3.5),
                   (0.0, 2.0)])


def criterion_example() -> ExperimentResult:
    """Figure 1: which candidate each criterion matches."""
    measures = {"Hausdorff H": hausdorff,
                "k-th Hausdorff": kth_hausdorff,
                "h_avg (ours)": average_distance}
    rows = []
    metrics = {}
    for name, fn in measures.items():
        to_a = fn(FIGURE1_QUERY, FIGURE1_A)
        to_b = fn(FIGURE1_QUERY, FIGURE1_B)
        winner = "A" if to_a < to_b else "B"
        rows.append([name, to_a, to_b, winner])
        metrics[f"{name} winner is B"] = float(winner == "B")
    return ExperimentResult(
        name="fig01",
        title="Figure 1: matched candidate per similarity criterion",
        headers=["criterion", "d(Q,A)", "d(Q,B)", "matches"],
        rows=rows, metrics=metrics,
        notes=["paper: Hausdorff matches A; the average distance "
               "matches B"])


def noise_tolerance(noise_levels: Sequence[float] =
                    (0.0, 0.01, 0.02, 0.04, 0.08),
                    queries_per_level: int = 10,
                    seed: int = 1944) -> ExperimentResult:
    """Top-1 accuracy vs vertex noise: ours vs both baselines."""
    rng = np.random.default_rng(seed)
    prototypes = [p for p in prototype_pool(rng, count=14,
                                            vertices_mean=18) if p.closed]
    base = ShapeBase(alpha=0.1)
    mg = MehrotraGaryIndex()
    moments = MomentFeatureIndex()
    for index, prototype in enumerate(prototypes):
        base.add_shape(prototype, image_id=index)
        mg.add_shape(prototype, index)
        moments.add_shape(prototype, index)
    matcher = GeometricSimilarityMatcher(base)

    rows = []
    metrics = {}
    series = {"ours": [], "mehrotra-gary": [], "moments": []}
    for noise in noise_levels:
        hits = {"ours": 0, "mehrotra-gary": 0, "moments": 0}
        for _ in range(queries_per_level):
            target = int(rng.integers(len(prototypes)))
            query = distort(prototypes[target], noise, rng)
            query = query.rotated(float(rng.uniform(0, 2 * np.pi)))
            query = query.scaled(float(rng.uniform(0.5, 3.0)))
            matches, _ = matcher.query(query, k=1)
            hits["ours"] += bool(matches and
                                 matches[0].shape_id == target)
            ranked = mg.query(query, k=1)
            hits["mehrotra-gary"] += bool(ranked and
                                          ranked[0][0] == target)
            ranked = moments.query(query, k=1)
            hits["moments"] += bool(ranked and ranked[0][0] == target)
        accuracy = {s: hits[s] / queries_per_level for s in hits}
        rows.append([noise, accuracy["ours"], accuracy["mehrotra-gary"],
                     accuracy["moments"]])
        for system in series:
            series[system].append((noise, accuracy[system]))
        metrics[f"ours_at_{noise}"] = accuracy["ours"]
    metrics["ours_mean"] = float(np.mean([r[1] for r in rows]))
    metrics["mg_mean"] = float(np.mean([r[2] for r in rows]))
    metrics["moments_mean"] = float(np.mean([r[3] for r in rows]))
    return ExperimentResult(
        name="noise",
        title=("Noise tolerance: top-1 accuracy vs vertex noise "
               "(rotated + rescaled queries)"),
        headers=["noise", "ours", "Mehrotra-Gary", "moments"],
        rows=rows, metrics=metrics,
        series=[(name, pts) for name, pts in series.items()],
        notes=["abstract: the average-distance criterion is 'more "
               "resilient to noise' than traditional techniques"])
