"""Section 2.5: per-query cost vs base size (the poly-log claim).

The output-sensitive regime the paper's analysis lives in: every query
is a randomly transformed copy of a *stored* shape, so the guarantee
fires as soon as the planted match is confirmed and the work counters
reflect the algorithm, not a floor imposed by the query distance (see
EXPERIMENTS.md, finding 3).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..core.matcher import GeometricSimilarityMatcher
from .common import ExperimentResult, build_workload_base


def matching_scaling(sizes: Sequence[int] = (15, 30, 60, 120),
                     queries_per_size: int = 4,
                     seed: int = 99) -> ExperimentResult:
    """Per-query time, K and iterations across a geometric size sweep."""
    rows = []
    series_time = []
    series_k = []
    metrics = {}
    first = None
    for num_images in sizes:
        _, base = build_workload_base(num_images, seed)
        matcher = GeometricSimilarityMatcher(base)
        query_rng = np.random.default_rng(seed + 7)
        shape_ids = query_rng.choice(base.shape_ids(),
                                     size=queries_per_size, replace=False)
        queries = [base.shapes[int(sid)]
                   .rotated(float(query_rng.uniform(0, 6)))
                   .scaled(float(query_rng.uniform(0.5, 2.0)))
                   for sid in shape_ids]
        times, processed, iterations = [], [], []
        for query in queries:
            start = time.perf_counter()
            matcher.query(query, k=1)
            times.append(time.perf_counter() - start)
            _, stats = matcher.query(query, k=1)
            processed.append(stats.vertices_processed)
            iterations.append(stats.iterations)
        n = base.total_vertices
        point = {"n": n, "time": float(np.mean(times)),
                 "K": float(np.mean(processed)),
                 "iterations": float(np.mean(iterations))}
        if first is None:
            first = point
        rows.append([n, point["time"] * 1e3, point["K"],
                     point["iterations"]])
        series_time.append((float(n), point["time"] * 1e3))
        series_k.append((float(n), point["K"]))
        metrics[f"time_at_{n}"] = point["time"]
        metrics[f"K_at_{n}"] = point["K"]
    last_n = rows[-1][0]
    metrics["n_ratio"] = last_n / rows[0][0]
    metrics["time_ratio"] = rows[-1][1] / rows[0][1]
    metrics["K_ratio"] = (rows[-1][2] or 1.0) / (rows[0][2] or 1.0)
    return ExperimentResult(
        name="scaling",
        title="Section 2.5: per-query cost vs total vertices n",
        headers=["n", "ms/query", "K (vertices processed)", "iterations"],
        rows=rows, metrics=metrics,
        series=[("query ms", series_time), ("K", series_k)],
        notes=[f"n grew {metrics['n_ratio']:.1f}x; time "
               f"{metrics['time_ratio']:.1f}x; K "
               f"{metrics['K_ratio']:.1f}x (poly-log: both far below "
               f"the n ratio)"])
