"""Shared infrastructure for the paper-reproduction experiments.

Every experiment is a plain function returning an
:class:`ExperimentResult`: the figure/section it reproduces, the table
(headers + rows), optional chart series, and a dict of the headline
numbers assertions and summaries hang off.  The benchmark suite and the
``repro experiment`` CLI both go through these functions, so the
"harness that regenerates the paper's rows/series" is ordinary library
code, not test scaffolding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.matcher import GeometricSimilarityMatcher
from ..core.shapebase import ShapeBase
from ..imaging.synthesis import SyntheticWorkload, generate_workload
from ..reporting import ascii_chart, format_table

Number = float


@dataclass
class ExperimentResult:
    """One regenerated figure/table."""

    name: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    #: headline values assertions / summaries read
    metrics: Dict[str, float] = field(default_factory=dict)
    #: optional (series name, [(x, y), ...]) chart data
    series: List[Tuple[str, List[Tuple[Number, Number]]]] = \
        field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def render(self, chart: bool = True) -> str:
        """The full text report (title, table, chart, notes)."""
        parts = [self.title, "",
                 format_table(self.headers, self.rows)]
        if chart and self.series:
            parts += ["", ascii_chart(self.series)]
        if self.notes:
            parts += [""] + [f"note: {note}" for note in self.notes]
        return "\n".join(parts)


def build_workload_base(num_images: int, seed: int,
                        alpha: float = 0.1,
                        shapes_per_image: float = 5.5,
                        noise: float = 0.01,
                        num_prototypes: int = 14
                        ) -> Tuple[SyntheticWorkload, ShapeBase]:
    """The standard synthetic base the experiments share."""
    rng = np.random.default_rng(seed)
    workload = generate_workload(num_images, rng,
                                 shapes_per_image=shapes_per_image,
                                 vertices_mean=20.0, noise=noise,
                                 num_prototypes=num_prototypes)
    base = ShapeBase(alpha=alpha)
    for image in workload.images:
        for shape in image.shapes:
            base.add_shape(shape, image_id=image.image_id)
    base.index
    return workload, base


def record_query_traces(base: ShapeBase, queries: Sequence,
                        ks: Sequence[int]) -> Dict[Tuple[int, int], list]:
    """Candidate-evaluation traces per (query index, k).

    The storage experiments replay these; computing them is the
    expensive step, so callers cache the result.
    """
    matcher = GeometricSimilarityMatcher(base)
    traces: Dict[Tuple[int, int], list] = {}
    for index, (query, _) in enumerate(queries):
        for k in ks:
            trace: list = []
            matcher.query(query, k=k,
                          on_candidate=lambda e: trace.append(e.entry_id))
            traces[(index, k)] = trace
    return traces
