"""Storage experiments: Figures 7 and 8 and the Section 4.2 comparison.

Methodology (identical to the paper's, at configurable scale): build
the synthetic base, run the similarity query set, record the matcher's
candidate-evaluation traces, then replay each trace against external
stores built with the different layout policies, counting device
reads through an LRU buffer.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Sequence, Tuple

import numpy as np

from ..hashing.curves import HashCurveFamily
from ..imaging.synthesis import make_query_set
from ..storage.layout import compute_signatures
from ..storage.shapestore import ExternalShapeStore
from .common import (ExperimentResult, build_workload_base,
                     record_query_traces)

SORT_METHODS = (("mean", "(i) mean"),
                ("lexicographic", "(ii) lex"),
                ("median", "(iii) median"))

#: The trace set recorded once and shared by all storage experiments.
DEFAULT_KS = (1, 2, 3, 5, 7, 10)


@lru_cache(maxsize=4)
def _shared_setup(num_images: int, num_queries: int, seed: int,
                  ks: Tuple[int, ...]):
    """Base + query traces + signatures, memoized across experiments.

    Recording the matcher traces is the expensive step; Figures 7/8 and
    the Section 4.2 comparison all replay the same ones.
    """
    workload, base = build_workload_base(num_images, seed)
    queries = make_query_set(workload, num_queries,
                             np.random.default_rng(seed + 1), noise=0.012)
    traces = record_query_traces(base, queries, ks)
    signatures = compute_signatures(base, HashCurveFamily(50))
    return base, queries, traces, signatures


def io_methods(num_images: int = 60, num_queries: int = 8,
               seed: int = 20020604,
               ks: Sequence[int] = DEFAULT_KS,
               buffer_blocks: int = 100) -> ExperimentResult:
    """Figure 7: avg I/O per query vs k for the three sort layouts."""
    ks = tuple(ks)
    base, queries, traces, signatures = _shared_setup(
        num_images, num_queries, seed,
        DEFAULT_KS if set(ks) <= set(DEFAULT_KS) else ks)
    table: Dict[str, Dict[int, float]] = {}
    for layout, _ in SORT_METHODS:
        store = ExternalShapeStore(base, layout=layout,
                                   buffer_blocks=buffer_blocks,
                                   signatures=signatures)
        table[layout] = {
            k: float(np.mean([store.replay_trace(traces[(q, k)],
                                                 reset_buffer=True)
                              for q in range(len(queries))]))
            for k in ks}
    rows = [[k] + [table[layout][k] for layout, _ in SORT_METHODS]
            for k in ks]
    means = {layout: float(np.mean(list(table[layout].values())))
             for layout, _ in SORT_METHODS}
    best = min(means, key=means.get)
    series = [(label, [(float(k), table[layout][k]) for k in ks])
              for layout, label in SORT_METHODS]
    return ExperimentResult(
        name="fig07",
        title=(f"Figure 7: avg I/O per query vs k "
               f"({buffer_blocks}-block buffer, {len(queries)} queries, "
               f"{base.num_entries} entries)"),
        headers=["k"] + [label for _, label in SORT_METHODS],
        rows=rows,
        metrics={f"mean_{layout}": means[layout]
                 for layout, _ in SORT_METHODS} | {
            "best_is_mean": float(best == "mean")},
        series=series,
        notes=[f"paper: method (i) wins; measured best: {best}"])


def buffer_sweep(num_images: int = 60, num_queries: int = 8,
                 seed: int = 20020604, k: int = 2,
                 buffers: Sequence[int] = (1, 2, 5, 10, 25, 50, 100)
                 ) -> ExperimentResult:
    """Figure 8: avg I/O per query vs buffer size at k = 2."""
    base, queries, traces, signatures = _shared_setup(
        num_images, num_queries, seed,
        DEFAULT_KS if k in DEFAULT_KS else (k,))
    table: Dict[str, Dict[int, float]] = {}
    for layout, _ in SORT_METHODS:
        series = {}
        for buffer_blocks in buffers:
            store = ExternalShapeStore(base, layout=layout,
                                       buffer_blocks=buffer_blocks,
                                       signatures=signatures)
            series[buffer_blocks] = float(np.mean(
                [store.replay_trace(traces[(q, k)], reset_buffer=True)
                 for q in range(len(queries))]))
        table[layout] = series

    def stabilization(layout: str, tolerance: float = 1.10) -> int:
        floor = table[layout][buffers[-1]]
        for buffer_blocks in buffers:
            if table[layout][buffer_blocks] <= floor * tolerance:
                return buffer_blocks
        return buffers[-1]

    rows = [[b] + [table[layout][b] for layout, _ in SORT_METHODS]
            for b in buffers]
    chart = [(label, [(float(b), table[layout][b]) for b in buffers])
             for layout, label in SORT_METHODS]
    metrics = {f"stabilize_{layout}": float(stabilization(layout))
               for layout, _ in SORT_METHODS}
    for layout, _ in SORT_METHODS:
        metrics[f"io_at_1_{layout}"] = table[layout][buffers[0]]
        metrics[f"io_at_max_{layout}"] = table[layout][buffers[-1]]
    return ExperimentResult(
        name="fig08",
        title=f"Figure 8: avg I/O per query vs buffer size (k={k})",
        headers=["buffer"] + [label for _, label in SORT_METHODS],
        rows=rows, metrics=metrics, series=chart,
        notes=["paper: all methods improve with buffer; "
               "method (iii) stabilizes fastest"])


def localopt_comparison(num_images: int = 60, num_queries: int = 8,
                        seed: int = 20020604,
                        ks: Sequence[int] = (1, 2, 5, 10),
                        buffer_blocks: int = 100) -> ExperimentResult:
    """Section 4.2: greedy local optimization vs the sort layouts."""
    ks = tuple(ks)
    base, queries, traces, signatures = _shared_setup(
        num_images, num_queries, seed,
        DEFAULT_KS if set(ks) <= set(DEFAULT_KS) else ks)
    layouts = ("mean", "lexicographic", "median", "localopt")
    means = {}
    for layout in layouts:
        store = ExternalShapeStore(base, layout=layout,
                                   buffer_blocks=buffer_blocks,
                                   signatures=signatures)
        means[layout] = float(np.mean(
            [store.replay_trace(traces[(q, k)], reset_buffer=True)
             for q in range(len(queries)) for k in ks]))
    best_sort = min(means[l] for l in ("mean", "lexicographic", "median"))
    improvement = 1.0 - means["localopt"] / best_sort
    rows = [[layout, means[layout]] for layout in layouts]
    return ExperimentResult(
        name="localopt",
        title="Section 4.2: local-optimization layout vs sort layouts",
        headers=["layout", "avg I/O per query"],
        rows=rows,
        metrics={**{f"io_{l}": means[l] for l in layouts},
                 "best_sort": best_sort, "improvement": improvement},
        notes=[f"local optimization {improvement:+.1%} vs best sort "
               f"(paper: ~30% at 100x scale)"])
