"""repro — a reproduction of *Geometric-Similarity Retrieval in Large
Image Bases* (Fudos, Palios, Pitoura; ICDE 2002) — the GeoSIR system.

Public API highlights
---------------------
:class:`~repro.geometry.Shape`
    Polygons/polylines, the universal shape abstraction.
:class:`~repro.core.ShapeBase`
    The database of diameter-normalized shape copies.
:class:`~repro.core.GeometricSimilarityMatcher`
    The incremental envelope-fattening retrieval algorithm.
:mod:`repro.hashing`
    Geometric hashing over the lune for approximate matching.
:mod:`repro.storage`
    Simulated external storage: block device, LRU buffer, layouts.
:mod:`repro.query`
    Topological query algebra, selectivity estimation, planner.
:class:`~repro.geosir.GeoSIR`
    The end-to-end prototype facade.
"""

from .core import (GeometricSimilarityMatcher, Match, MatchStats, ShapeBase,
                   average_distance, continuous_average_distance,
                   directed_average_distance, hausdorff)
from .geometry import Shape, SimilarityTransform

__version__ = "1.0.0"

__all__ = [
    "GeometricSimilarityMatcher", "Match", "MatchStats", "Shape",
    "ShapeBase", "SimilarityTransform", "average_distance",
    "continuous_average_distance", "directed_average_distance", "hausdorff",
    "__version__",
]
