"""Controlled algebra workloads and the planner comparison harness.

The planner's wins come from *selectivity skew*: a conjunctive term
with one rare (or absent) operand should evaluate that operand first
and touch the common operands only inside the surviving images — or
not at all when the seed is empty.  :func:`algebra_base` builds bases
with exactly that skew, with known prototypes:

* ``common*`` — low-V_S shapes planted in most images (big result
  sets, high estimated selectivity);
* ``rare`` — a crisp high-V_S star planted in a small fraction of the
  images (small result set, low estimate);
* ``absent`` — an even crisper star planted in *no* image (empty
  result set; the V_S estimator ranks it cheapest without ever having
  seen it).

:func:`composite_queries` derives a seeded mixed query workload over
those prototypes, and :func:`compare_planner` times the same workload
through the unplanned baseline, the planner, and the planner with the
subplan cache — the rows behind ``BENCH_algebra.json`` and
``serve-bench --algebra``.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.shapebase import ShapeBase
from ..geometry.polyline import Shape
from ..imaging.synthesis import (distort, notched_box, place_randomly,
                                 random_blob, star_polygon,
                                 zigzag_polyline)
from .algebra import QueryNode, Similar, contain, disjoint, overlap
from .executor import QueryEngine

#: Similarity threshold the algebra workloads run at.  Chosen against
#: the prototype pool below: in-family distances (instances distorted
#: by ~1% boundary noise) stay under ~0.015 while every cross-family
#: distance measured through the matcher exceeds 0.028, so the planted
#: selectivity skew survives the threshold query.
ALGEBRA_THRESHOLD = 0.02


def algebra_prototypes(rng: np.random.Generator) -> Dict[str, Shape]:
    """The skewed prototype set (see the module docstring).

    The families were picked empirically for mutual separation under
    the (asymmetric) average-distance measure — few-vertex convex
    polygons sit close to spiky stars' boundaries, so commons are a
    triangle, a notched box and an open zigzag, the rare prototype a
    smooth high-V_S blob and the absent one a 12-spike star.
    """
    return {
        "common_a": Shape.regular_polygon(3, phase=float(rng.uniform(0, 1))),
        "common_b": notched_box(float(rng.uniform(0.35, 0.45))),
        "common_c": zigzag_polyline(rng, 12, amplitude=0.3),
        "rare": random_blob(rng, 20, irregularity=0.3),
        "absent": star_polygon(points=12, inner=0.55,
                               phase=float(rng.uniform(0, math.pi))),
    }


def algebra_base(num_images: int, rng: np.random.Generator,
                 rare_every: int = 6, noise: float = 0.01,
                 alpha: float = 0.1
                 ) -> Tuple[ShapeBase, Dict[str, Shape]]:
    """A base with planted selectivity skew.

    Every image carries two or three common instances (chosen round-
    robin so the common prototypes stay dense); every ``rare_every``-th
    image additionally carries a ``rare`` instance, sometimes placed to
    overlap a common one.  The ``absent`` prototype is never planted.
    """
    if num_images < 1:
        raise ValueError("num_images must be positive")
    protos = algebra_prototypes(rng)
    commons = [protos["common_a"], protos["common_b"], protos["common_c"]]
    shapes: List[Shape] = []
    image_ids: List[int] = []
    for image_id in range(num_images):
        count = 2 + (image_id % 2)
        for slot in range(count):
            proto = commons[(image_id + slot) % len(commons)]
            instance = place_randomly(distort(proto, noise, rng), rng)
            shapes.append(instance)
            image_ids.append(image_id)
        if image_id % rare_every == 0:
            instance = distort(protos["rare"], noise, rng)
            anchor = shapes[-1]
            if image_id % (2 * rare_every) == 0:
                # Drop the star onto the last common instance so
                # overlap/contain predicates have planted positives.
                xmin, ymin, xmax, ymax = anchor.bbox()
                scale = 0.9 * max(xmax - xmin, ymax - ymin) / 2.0
                instance = instance.scaled(scale).translated(
                    (xmin + xmax) / 2.0, (ymin + ymax) / 2.0)
            else:
                instance = place_randomly(instance, rng)
            shapes.append(instance)
            image_ids.append(image_id)
    base = ShapeBase(alpha=alpha)
    base.add_shapes(shapes, image_ids=image_ids)
    return base, protos


def composite_queries(protos: Dict[str, Shape], count: int,
                      rng: np.random.Generator,
                      noise: float = 0.008) -> List[QueryNode]:
    """A seeded mixed workload of composite query trees.

    Each query re-distorts its prototypes (fresh leaves, so uncached
    modes really recompute) and cycles through the patterns the
    planner is supposed to exploit: rare-seeded conjunctions, absent
    operands (empty seed, the rest of the term skipped), restricted
    topological filters, unions and complements.
    """
    def instance(name: str) -> Shape:
        return distort(protos[name], noise, rng)

    queries: List[QueryNode] = []
    for index in range(count):
        pattern = index % 6
        if pattern == 0:
            queries.append(Similar(instance("common_a")) &
                           Similar(instance("rare")))
        elif pattern == 1:
            queries.append(Similar(instance("common_a")) &
                           Similar(instance("common_b")) &
                           Similar(instance("absent")))
        elif pattern == 2:
            queries.append(overlap(instance("common_a"),
                                   instance("common_b")) &
                           Similar(instance("rare")))
        elif pattern == 3:
            queries.append((Similar(instance("rare")) |
                            Similar(instance("absent"))) &
                           Similar(instance("common_b")))
        elif pattern == 4:
            queries.append(Similar(instance("common_c")) &
                           ~Similar(instance("rare")))
        else:
            queries.append(contain(instance("rare"),
                                   instance("common_c")) &
                           Similar(instance("common_a")))
    return queries


#: The three execution modes the benchmark compares.
PLANNER_MODES: Tuple[Tuple[str, bool, Optional[int]], ...] = (
    ("unplanned", False, 0),
    ("planned", True, 0),
    ("planned+cache", True, 256),
)


def compare_planner(base: ShapeBase, queries: Sequence[QueryNode],
                    similarity_threshold: float = ALGEBRA_THRESHOLD,
                    engine_factory: Optional[Callable[[bool, int],
                                                      QueryEngine]] = None
                    ) -> List[dict]:
    """Run one workload through every planner mode; one row per mode.

    All modes share the memoized relation graphs (warmed before
    timing); the leaf/subplan caches are per-engine, sized by the
    mode.  Result sets are checked identical across modes — a planner
    that wins by being wrong fails here, not in production.
    """
    if engine_factory is None:
        def engine_factory(planner: bool, capacity: int) -> QueryEngine:
            return QueryEngine(
                base, similarity_threshold=similarity_threshold,
                planner=planner, cache_capacity=capacity)
    rows: List[dict] = []
    reference_results: Optional[List[frozenset]] = None
    for mode, planner, capacity in PLANNER_MODES:
        engine = engine_factory(planner, capacity)
        engine.graphs                    # warm outside the timed region
        engine.counters.reset()
        start = time.perf_counter()
        results = [frozenset(engine.execute(query)) for query in queries]
        wall = time.perf_counter() - start
        if reference_results is None:
            reference_results = results
        elif results != reference_results:
            raise AssertionError(
                f"mode {mode!r} disagrees with {PLANNER_MODES[0][0]!r}")
        counters = engine.counters.as_dict()
        rows.append({
            "mode": mode,
            "queries": len(queries),
            "wall_s": wall,
            "ms_per_query": wall * 1e3 / max(1, len(queries)),
            "sim_checks": (counters["similarity_checks"]
                           + counters["candidate_evaluations"]),
            "result_images": sum(len(r) for r in results),
            **counters,
        })
    return rows


def record_trajectory(rows: Sequence[dict], label: str, path,
                      header: Optional[dict] = None) -> None:
    """Append one labeled point to a ``BENCH_*.json`` history.

    Same protocol as ``BENCH_build.json`` / ``BENCH_ann.json``: the
    callers gate on ``REPRO_BENCH_LABEL`` so ad-hoc runs do not dirty
    the committed trajectory.  ``header`` seeds the benchmark/metric/
    protocol fields when the file does not exist yet; without it the
    algebra-planner header (this module's own benchmark) is used.
    """
    path = Path(path)
    if path.exists():
        history = json.loads(path.read_text())
    elif header is not None:
        history = {**header, "trajectory": []}
    else:
        history = {
            "benchmark": "algebra_planner",
            "metric": "sim_checks and ms/query, planned vs unplanned",
            "protocol": (
                "repro.query.workload: bases with planted selectivity "
                "skew (three common prototype families, one rare star "
                "planted every 6th image, one absent) and a seeded "
                "mixed composite-query workload (rare/absent-seeded "
                "conjunctions, topological filters, unions, "
                "complements).  compare_planner runs the identical "
                "workload through the unplanned DNF baseline, the "
                "selectivity-ordered planner, and the planner with the "
                "subplan cache; result sets are asserted identical "
                "across modes.  sim_checks = similarity_checks + "
                "candidate_evaluations.  Points are appended when "
                "REPRO_BENCH_LABEL is set (the CI algebra-smoke job "
                "does this on every run)."),
            "trajectory": [],
        }
    history["trajectory"].append({
        "label": label,
        "rows": [{key: (round(float(value), 4)
                        if isinstance(value, float) else value)
                  for key, value in row.items()}
                 for row in rows],
    })
    path.write_text(json.dumps(history, indent=2) + "\n")
