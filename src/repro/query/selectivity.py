"""Selectivity estimation via significant vertices (paper Section 5.2).

The paper observes that the result size of a similarity query on Q is
inversely proportional to the number of *significant* vertices

    V_S(Q) = sum_i 1/2 * [ (pi - a_i) * a_i * 4 / pi^2
                           + (l_{i-1} + l_i) / 2 ]

computed on the diameter-normalized shape, where ``a_i`` is the positive
angle at vertex i and ``l_i`` the length of edge i.  Each vertex
contributes a term in [0, 1] — 1 exactly when its angle is pi/2 and both
adjacent edges have the diameter's length — so ``0 <= V_S(Q) <= V(Q)``.

The estimator is ``selectivity(Q) = c / V_S(Q)`` with the constant ``c``
adapted statistically every time a query executes (the paper re-fits it
online); :class:`SelectivityModel` keeps a running geometric-mean fit.

Note: the formula as typeset in the paper is ambiguous about grouping;
the worked example (Figure 9: a vertex with angle pi/2 and adjacent
edges sqrt(10)/5 contributes ``1/2 + sqrt(10)/10``) pins the form used
here, ``1/2 * (angle_term + edge_term)`` per vertex.
"""

from __future__ import annotations

import math
import threading
from typing import Optional

import numpy as np

from ..geometry.polyline import Shape
from ..geometry.transform import normalize_about_diameter


def vertex_significance(shape: Shape, normalize: bool = True) -> np.ndarray:
    """Per-vertex significance terms (the summands of V_S(Q)).

    Each vertex contributes ``1/2 * [(pi - a) * a * 4/pi^2
    + (l_prev + l_next)/2]`` — a value in [0, 1] after diameter
    normalization, 1 exactly for a right angle flanked by
    diameter-length edges.  The paper's Figure 9 worked example pins
    this grouping (see the module docstring for the one inconsistent
    value in the paper's own arithmetic).
    """
    if normalize:
        shape = normalize_about_diameter(shape).shape
    angles = shape.interior_angles()
    lengths = shape.edge_lengths()
    n = shape.num_vertices
    out = np.zeros(n)
    for i in range(n):
        if shape.closed:
            l_prev = lengths[(i - 1) % n]
            l_next = lengths[i]
        else:
            l_prev = lengths[i - 1] if i > 0 else 0.0
            l_next = lengths[i] if i < n - 1 else 0.0
        angle_term = (math.pi - angles[i]) * angles[i] * 4.0 / math.pi ** 2
        edge_term = (min(l_prev, 1.0) + min(l_next, 1.0)) / 2.0
        out[i] = 0.5 * (angle_term + edge_term)
    return out


def significant_vertices(shape: Shape, normalize: bool = True) -> float:
    """The paper's V_S(Q) statistic.

    ``normalize`` first maps the shape's diameter onto ((0,0), (1,0)) so
    edge lengths are measured relative to the diameter, as the paper's
    example does.  Degenerate vertices (angle ~0 or ~pi, or tiny edges)
    contribute little; crisp right angles with long edges contribute
    most.
    """
    return float(vertex_significance(shape, normalize).sum())


class SelectivityModel:
    """Online estimator ``selectivity(Q) ~ c / V_S(Q)``.

    ``c`` depends on the base size and the application domain; following
    the paper it "is adapted statistically every time a query is
    performed": :meth:`observe` folds the product ``observed * V_S`` into
    a running geometric mean (robust to the heavy-tailed result sizes).
    """

    def __init__(self, initial_c: Optional[float] = None):
        self._log_c_sum = 0.0
        self._count = 0
        self._log_t_sum = 0.0
        self._t_count = 0
        self._lock = threading.Lock()
        if initial_c is not None:
            if initial_c <= 0:
                raise ValueError("initial_c must be positive")
            self._log_c_sum = math.log(initial_c)
            self._count = 1

    @property
    def c(self) -> float:
        """Current constant; 1.0 before any observation."""
        with self._lock:
            if self._count == 0:
                return 1.0
            return math.exp(self._log_c_sum / self._count)

    @property
    def num_observations(self) -> int:
        return self._count

    def observe(self, shape: Shape, observed_result_size: int,
                threshold: Optional[float] = None) -> None:
        """Fold one executed query's actual result size into the fit.

        Thread-safe: the query engine observes from concurrent
        executions.  ``threshold`` (when given) additionally feeds the
        reference similarity threshold the threshold-scaled
        :meth:`estimate` normalizes against.
        """
        vs = significant_vertices(shape)
        if vs <= 0:
            return
        implied_c = max(observed_result_size, 0.5) * vs
        with self._lock:
            self._log_c_sum += math.log(implied_c)
            self._count += 1
            if threshold is not None and threshold > 0:
                self._log_t_sum += math.log(threshold)
                self._t_count += 1

    def reference_threshold(self) -> Optional[float]:
        """Geometric mean of the observed thresholds (None if unseen)."""
        with self._lock:
            if self._t_count == 0:
                return None
            return math.exp(self._log_t_sum / self._t_count)

    def estimate(self, shape: Shape,
                 threshold: Optional[float] = None) -> float:
        """``selectivity_shape_similar(Q)`` — expected result size.

        With a ``threshold``, the base ``c / V_S`` estimate (fit at the
        observed thresholds) is scaled linearly by the ratio to the
        reference threshold: a wider similarity ball admits
        proportionally more shapes.  Monotone non-decreasing in
        ``threshold`` by construction; without observed thresholds the
        scaling is a no-op.
        """
        vs = significant_vertices(shape)
        if vs <= 0:
            return float("inf")
        estimate = self.c / vs
        if threshold is not None:
            reference = self.reference_threshold()
            if reference is not None and reference > 0:
                estimate *= max(0.0, threshold) / reference
        return estimate

    def __repr__(self) -> str:
        return (f"SelectivityModel(c={self.c:.4g}, "
                f"observations={self._count})")


def fit_hyperbola(vs_values: np.ndarray,
                  result_sizes: np.ndarray) -> float:
    """Least-squares fit of ``size = c / V_S``; returns c.

    Used by the Figure 10 benchmark to validate the hyperbolic
    relationship: it fits ``c`` and reports the fit, letting the
    harness check that doubling the base roughly doubles ``c``.
    """
    vs_values = np.asarray(vs_values, dtype=np.float64)
    result_sizes = np.asarray(result_sizes, dtype=np.float64)
    if len(vs_values) != len(result_sizes) or len(vs_values) == 0:
        raise ValueError("need matching, non-empty samples")
    inverse = 1.0 / vs_values
    return float((inverse * result_sizes).sum() / (inverse * inverse).sum())
