"""Query processing (paper Section 5): image relation graphs, the
topological query algebra, selectivity estimation via significant
vertices, and the planning/executing engine.
"""

from .algebra import (ComplementNode, IntersectionNode, Literal, QueryNode,
                      Similar, Topological, UnionNode, contain, disjoint,
                      overlap, tangent, to_dnf)
from .executor import EngineCounters, QueryEngine
from .graph import (ANY_ANGLE, CONTAIN, DISJOINT, OVERLAP, RELATIONS,
                    TANGENT, ImageGraph, RelationEdge, angle_matches,
                    diameter_angle, diameter_vector, relation_between)
from .selectivity import (SelectivityModel, fit_hyperbola,
                          significant_vertices, vertex_significance)

__all__ = [
    "ANY_ANGLE", "CONTAIN", "ComplementNode", "DISJOINT", "EngineCounters",
    "ImageGraph", "IntersectionNode", "Literal", "OVERLAP", "QueryEngine",
    "QueryNode", "RELATIONS", "RelationEdge", "SelectivityModel", "Similar",
    "TANGENT", "Topological", "UnionNode", "angle_matches", "contain",
    "diameter_angle", "diameter_vector", "disjoint", "fit_hyperbola",
    "overlap", "relation_between", "significant_vertices", "tangent",
    "to_dnf", "vertex_significance",
]
