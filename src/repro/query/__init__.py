"""Query processing (paper Section 5): image relation graphs, the
topological query algebra, selectivity estimation via significant
vertices, and the planning/executing engine.
"""

from .algebra import (ComplementNode, IntersectionNode, Literal, QueryNode,
                      Similar, Topological, UnionNode, contain, disjoint,
                      literal_signature, operator_signature, overlap,
                      plan_signature, tangent, term_signature, to_dnf)
from .executor import (EngineCounters, ExecutionReport, QueryEngine,
                       TermReport)
from .graph import (ANY_ANGLE, CONTAIN, DISJOINT, GRAPH_BUILD_STATS,
                    OVERLAP, RELATIONS, TANGENT, ImageGraph, RelationEdge,
                    angle_matches, build_image_graphs, diameter_angle,
                    diameter_vector, image_graphs, relation_between)
from .reference import ReferenceExecutor
from .selectivity import (SelectivityModel, fit_hyperbola,
                          significant_vertices, vertex_significance)

__all__ = [
    "ANY_ANGLE", "CONTAIN", "ComplementNode", "DISJOINT", "EngineCounters",
    "ExecutionReport", "GRAPH_BUILD_STATS", "ImageGraph",
    "IntersectionNode", "Literal", "OVERLAP", "QueryEngine", "QueryNode",
    "RELATIONS", "ReferenceExecutor", "RelationEdge", "SelectivityModel",
    "Similar", "TANGENT", "TermReport", "Topological", "UnionNode",
    "angle_matches", "build_image_graphs", "contain", "diameter_angle",
    "diameter_vector", "disjoint", "fit_hyperbola", "image_graphs",
    "literal_signature", "operator_signature", "overlap", "plan_signature",
    "relation_between", "significant_vertices", "tangent",
    "term_signature", "to_dnf", "vertex_significance",
]
