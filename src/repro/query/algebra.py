"""The topological query algebra (paper Section 5.1).

Queries are built from two operator kinds —

* ``Similar(Q)``: images containing a shape similar to Q, and
* ``Topological(relation, Q1, Q2, theta)`` for relation in
  {contain, overlap, disjoint}: images containing S1 similar to Q1 and
  S2 similar to Q2 with ``g_relation(S1, S2, theta)``

— closed under union, intersection and complement.  Python's ``|``,
``&`` and ``~`` are overloaded as sugar.  The planner first rewrites a
query into disjunctive normal form (Section 5.4: "we re-write the
initial query into the form t1 U t2 U ... U tn, where each t_i contains
only intersection and complement operators").
"""

from __future__ import annotations

from typing import List, Union

from ..geometry.polyline import Shape
from .graph import ANY_ANGLE, CONTAIN, DISJOINT, OVERLAP, RELATIONS

Theta = Union[float, str]


class QueryNode:
    """Base class of all query AST nodes."""

    def __or__(self, other: "QueryNode") -> "UnionNode":
        return UnionNode(self, other)

    def __and__(self, other: "QueryNode") -> "IntersectionNode":
        return IntersectionNode(self, other)

    def __invert__(self) -> "ComplementNode":
        return ComplementNode(self)


class Similar(QueryNode):
    """``similar(Q)``: images containing a shape similar to Q."""

    def __init__(self, query_shape: Shape):
        self.query_shape = query_shape

    def __repr__(self) -> str:
        return f"similar({self.query_shape!r})"


class Topological(QueryNode):
    """``r(Q1, Q2, theta)`` for r in {contain, overlap, disjoint}."""

    def __init__(self, relation: str, q1: Shape, q2: Shape,
                 theta: Theta = ANY_ANGLE):
        if relation not in RELATIONS:
            raise ValueError(f"relation must be one of {RELATIONS}")
        if theta != ANY_ANGLE:
            theta = float(theta)
        self.relation = relation
        self.q1 = q1
        self.q2 = q2
        self.theta = theta

    def __repr__(self) -> str:
        return f"{self.relation}({self.q1!r}, {self.q2!r}, {self.theta})"


def contain(q1: Shape, q2: Shape, theta: Theta = ANY_ANGLE) -> Topological:
    """Images where a shape similar to Q1 contains one similar to Q2."""
    return Topological(CONTAIN, q1, q2, theta)


def overlap(q1: Shape, q2: Shape, theta: Theta = ANY_ANGLE) -> Topological:
    """Images where shapes similar to Q1 and Q2 overlap."""
    return Topological(OVERLAP, q1, q2, theta)


def tangent(q1: Shape, q2: Shape, theta: Theta = ANY_ANGLE) -> Topological:
    """Images where shapes similar to Q1 and Q2 touch without crossing."""
    from .graph import TANGENT
    return Topological(TANGENT, q1, q2, theta)


def disjoint(q1: Shape, q2: Shape, theta: Theta = ANY_ANGLE) -> Topological:
    """Images containing disjoint shapes similar to Q1 and Q2."""
    return Topological(DISJOINT, q1, q2, theta)


class UnionNode(QueryNode):
    def __init__(self, left: QueryNode, right: QueryNode):
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"({self.left!r} | {self.right!r})"


class IntersectionNode(QueryNode):
    def __init__(self, left: QueryNode, right: QueryNode):
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"({self.left!r} & {self.right!r})"


class ComplementNode(QueryNode):
    def __init__(self, operand: QueryNode):
        self.operand = operand

    def __repr__(self) -> str:
        return f"~{self.operand!r}"


class Literal:
    """A DNF literal: an operator, possibly complemented."""

    __slots__ = ("operator", "negated")

    def __init__(self, operator: QueryNode, negated: bool):
        if not isinstance(operator, (Similar, Topological)):
            raise TypeError("literal must wrap a Similar/Topological operator")
        self.operator = operator
        self.negated = negated

    def __repr__(self) -> str:
        return f"~{self.operator!r}" if self.negated else repr(self.operator)


ConjunctiveTerm = List[Literal]


def to_dnf(node: QueryNode) -> List[ConjunctiveTerm]:
    """Rewrite a query into a union of conjunctive terms.

    Complements are pushed down with De Morgan's laws onto the operator
    leaves; intersections are distributed over unions.  The result is
    the ``t1 U ... U tn`` form the planner of Section 5.4 executes.
    """
    return _dnf(node, negated=False)


def _dnf(node: QueryNode, negated: bool) -> List[ConjunctiveTerm]:
    if isinstance(node, (Similar, Topological)):
        return [[Literal(node, negated)]]
    if isinstance(node, ComplementNode):
        return _dnf(node.operand, not negated)
    if isinstance(node, UnionNode):
        if negated:     # De Morgan: ~(A | B) = ~A & ~B
            return _cross(_dnf(node.left, True), _dnf(node.right, True))
        return _dnf(node.left, False) + _dnf(node.right, False)
    if isinstance(node, IntersectionNode):
        if negated:     # De Morgan: ~(A & B) = ~A | ~B
            return _dnf(node.left, True) + _dnf(node.right, True)
        return _cross(_dnf(node.left, False), _dnf(node.right, False))
    raise TypeError(f"unknown query node {type(node).__name__}")


def _cross(left: List[ConjunctiveTerm],
           right: List[ConjunctiveTerm]) -> List[ConjunctiveTerm]:
    return [lt + rt for lt in left for rt in right]


# ----------------------------------------------------------------------
# Canonical subplan signatures
# ----------------------------------------------------------------------
# The engine's subplan cache is keyed the same way as the service's
# top-k cache: similarity-invariant digests of the query shapes
# (repro.service.cache.sketch_signature) composed with the structural
# parameters.  Signatures are *canonical* over the algebra's
# equivalences — symmetric relations at the wildcard angle commute,
# duplicate literals inside a term collapse, terms of a plan are
# unordered — so `A & B` and `B & A` hit the same cache entry.

#: Relations whose operands commute (the stored edge exists both ways).
SYMMETRIC_RELATIONS = frozenset({"overlap", "tangent", "disjoint"})


def _shape_digest(shape: Shape, threshold: float) -> str:
    from ..service.cache import sketch_signature
    return sketch_signature(shape, kind="algebra-leaf",
                            parameter=f"{threshold:.12g}")


def operator_signature(op: QueryNode, *, threshold: float,
                       angle_tolerance: float) -> str:
    """Canonical digest of one Similar/Topological operator."""
    import hashlib
    if isinstance(op, Similar):
        text = f"similar|{_shape_digest(op.query_shape, threshold)}"
    elif isinstance(op, Topological):
        s1 = _shape_digest(op.q1, threshold)
        s2 = _shape_digest(op.q2, threshold)
        if op.theta == ANY_ANGLE:
            theta = "any"
            if op.relation in SYMMETRIC_RELATIONS:
                s1, s2 = sorted((s1, s2))
        else:
            theta = f"{float(op.theta):.12g}~{angle_tolerance:.12g}"
        text = f"{op.relation}|{theta}|{s1}|{s2}"
    else:
        raise TypeError(f"not an operator: {type(op).__name__}")
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


def literal_signature(literal: Literal, *, threshold: float,
                      angle_tolerance: float) -> str:
    signature = operator_signature(literal.operator, threshold=threshold,
                                   angle_tolerance=angle_tolerance)
    return ("~" + signature) if literal.negated else signature


def term_signature(term: ConjunctiveTerm, *, threshold: float,
                   angle_tolerance: float) -> str:
    """Order-insensitive, duplicate-collapsing digest of one term."""
    import hashlib
    parts = sorted({literal_signature(lit, threshold=threshold,
                                      angle_tolerance=angle_tolerance)
                    for lit in term})
    return hashlib.blake2b("&".join(parts).encode(),
                           digest_size=16).hexdigest()


def plan_signature(terms: List[ConjunctiveTerm], *, threshold: float,
                   angle_tolerance: float) -> str:
    """Digest of a whole DNF plan (terms unordered, deduplicated)."""
    import hashlib
    parts = sorted({term_signature(term, threshold=threshold,
                                   angle_tolerance=angle_tolerance)
                    for term in terms})
    return hashlib.blake2b("|".join(parts).encode(),
                           digest_size=16).hexdigest()
