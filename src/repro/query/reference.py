"""A deliberately naive oracle for the query algebra.

:class:`ReferenceExecutor` answers every algebra query by brute force:

* ``shape_similar`` measures each database shape's entries one by one
  with scalar :class:`~repro.geometry.nearest.BoundaryDistance` loops
  (same qualification rule as the matcher: best average distance
  ``<= threshold + EPSILON``) — no envelope schedule, no index;
* topological operators re-classify every ordered shape pair of every
  image with :func:`~repro.query.graph.relation_between` — no relation
  graphs, no selectivity-driven strategy choice;
* composite queries evaluate by direct set semantics on the AST —
  union, intersection, complement against the image universe — with no
  DNF rewrite, no planning, no caching of any kind.

Slow by design and independent of everything the planner does, it is
the differential harness's ground truth: any optimization in
:class:`~repro.query.executor.QueryEngine` (batching, sharding,
subplan caching, operator reordering) must reproduce these answers
exactly (``tests/test_algebra_differential.py``).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..core.shapebase import ShapeBase
from ..geometry.nearest import BoundaryDistance
from ..geometry.polyline import Shape
from ..geometry.primitives import EPSILON
from ..geometry.transform import normalize_about_diameter
from .algebra import (ComplementNode, IntersectionNode, QueryNode, Similar,
                      Topological, UnionNode)
from .graph import (ANY_ANGLE, CONTAIN, angle_matches, diameter_angle,
                    relation_between)


class ReferenceExecutor:
    """Brute-force evaluation of algebra queries over one base."""

    def __init__(self, base: ShapeBase, similarity_threshold: float = 0.05,
                 angle_tolerance: float = 0.15):
        if similarity_threshold < 0:
            raise ValueError("similarity_threshold must be non-negative")
        self.base = base
        self.similarity_threshold = float(similarity_threshold)
        self.angle_tolerance = float(angle_tolerance)

    # -- primitives ----------------------------------------------------
    def all_images(self) -> Set[int]:
        return set(self.base.image_ids())

    def shape_similar(self, query: Shape) -> Set[int]:
        normalized = normalize_about_diameter(query).shape
        engine = BoundaryDistance(normalized)
        threshold = self.similarity_threshold + EPSILON
        result: Set[int] = set()
        for shape_id in self.base.shape_ids():
            for entry_id in self.base.entries_of_shape(shape_id):
                vertices = self.base.entry_vertices(entry_id)
                if float(engine.distances(vertices).mean()) <= threshold:
                    result.add(shape_id)
                    break
        return result

    def similar(self, query: Shape) -> Set[int]:
        images = set()
        for shape_id in self.shape_similar(query):
            image_id = self.base.image_of_shape(shape_id)
            if image_id is not None:
                images.add(image_id)
        return images

    def _pair_holds(self, a: Shape, b: Shape, relation: str,
                    theta) -> bool:
        found = relation_between(a, b)
        if relation == CONTAIN:
            if found != CONTAIN:
                return False
        elif found != relation:
            return False
        if theta == ANY_ANGLE:
            return True
        return angle_matches(diameter_angle(a, b), theta,
                             self.angle_tolerance)

    def topological(self, relation: str, q1: Shape, q2: Shape,
                    theta=ANY_ANGLE) -> Set[int]:
        set1 = self.shape_similar(q1)
        set2 = self.shape_similar(q2)
        result: Set[int] = set()
        for image_id in self.base.image_ids():
            members = self.base.shapes_of_image(image_id)
            found = False
            for s1 in members:
                if s1 not in set1:
                    continue
                for s2 in members:
                    if s2 == s1 or s2 not in set2:
                        continue
                    if self._pair_holds(self.base.shapes[s1],
                                        self.base.shapes[s2],
                                        relation, theta):
                        found = True
                        break
                if found:
                    break
            if found:
                result.add(image_id)
        return result

    # -- composite queries ---------------------------------------------
    def execute(self, node: QueryNode) -> Set[int]:
        """Direct set semantics on the AST — no rewriting, no plan."""
        if isinstance(node, Similar):
            return self.similar(node.query_shape)
        if isinstance(node, Topological):
            return self.topological(node.relation, node.q1, node.q2,
                                    node.theta)
        if isinstance(node, UnionNode):
            return self.execute(node.left) | self.execute(node.right)
        if isinstance(node, IntersectionNode):
            return self.execute(node.left) & self.execute(node.right)
        if isinstance(node, ComplementNode):
            return self.all_images() - self.execute(node.operand)
        raise TypeError(f"unknown query node {type(node).__name__}")
