"""Query execution and planning (paper Sections 5.3-5.4).

:class:`QueryEngine` ties together a corpus, the similarity backend,
the per-image relation graphs and the selectivity model:

* ``similar(Q)`` runs a threshold query and projects shape hits onto
  their images.  Leaves are fetched through the *batched* backend —
  the matcher's amortized multi-query path locally, or
  ``RetrievalService.similar_shapes_batch`` when the engine is mounted
  on the sharded service — and cached in a versioned, similarity-
  invariant leaf cache (same keying as the service's top-k cache);
* topological operators run in one of the paper's two strategies —
  strategy 1 starts from the *smaller* similarity side and walks graph
  edges, checking the other side shape-by-shape; strategy 2 computes
  both similarity sets, intersects the image sets, then verifies edges;
* composite queries are rewritten to DNF; per conjunctive term the
  literals are deduplicated and ordered by estimated selectivity, the
  cheapest positive literal is evaluated in full, and the remaining
  literals run only as per-image filters over that seed set
  (Section 5.4).  Term and whole-plan results live in a subplan cache
  keyed by the canonical signatures of :mod:`repro.query.algebra`, so
  algebraically-equal queries (``A & B`` vs ``B & A``) share entries;
  a corpus mutation bumps the version and orphans every entry.

Work counters are thread-safe (engines are shared across service
worker threads) and surface through ``RetrievalService.snapshot()``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.matcher import GeometricSimilarityMatcher
from ..core.shapebase import ShapeBase
from ..geometry.nearest import BoundaryDistance
from ..geometry.polyline import Shape
from ..geometry.primitives import EPSILON
from ..geometry.transform import normalize_about_diameter
from .algebra import (ConjunctiveTerm, Literal, QueryNode, Similar,
                      Topological, literal_signature, operator_signature,
                      plan_signature, term_signature, to_dnf)
from .graph import (ANY_ANGLE, DISJOINT, ImageGraph, angle_matches,
                    diameter_angle, image_graphs)
from .selectivity import SelectivityModel

_COUNTER_FIELDS = ("threshold_queries", "similarity_checks",
                   "candidate_evaluations", "edges_scanned",
                   "pairs_checked", "filter_probes", "terms_planned",
                   "seeds_reordered", "plan_cache_hits",
                   "plan_cache_misses")


class EngineCounters:
    """Work accounting across one engine lifetime (reset manually).

    Updates go through :meth:`add` under a lock — composite queries run
    concurrently on service worker threads, and the planner benchmarks
    rely on exact totals.  Plain attribute reads stay lock-free.
    """

    def __init__(self):
        self._lock = threading.Lock()
        for name in _COUNTER_FIELDS:
            setattr(self, name, 0)

    def add(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                if name not in _COUNTER_FIELDS:
                    raise AttributeError(f"unknown counter {name!r}")
                setattr(self, name, getattr(self, name) + delta)

    def reset(self) -> None:
        with self._lock:
            for name in _COUNTER_FIELDS:
                setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in _COUNTER_FIELDS}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"EngineCounters({inner})"


@dataclass
class TermReport:
    """How one conjunctive term was executed."""

    signature: str
    cached: bool = False
    images: Set[int] = field(default_factory=set)
    seed_operator: Optional[QueryNode] = None
    seed_estimate: Optional[float] = None
    estimates: List[Tuple[str, float]] = field(default_factory=list)
    reordered: bool = False


@dataclass
class ExecutionReport:
    """Result plus the planning trace of one composite query."""

    images: Set[int] = field(default_factory=set)
    cached: bool = False
    signature: str = ""
    terms: List[TermReport] = field(default_factory=list)


class QueryEngine:
    """Executes topological queries over a corpus.

    The corpus is either a local :class:`ShapeBase` (``base=``,
    optionally with a pre-built ``matcher``) or a running
    :class:`~repro.service.service.RetrievalService` (``service=``),
    in which case similarity leaves fan out across the shards through
    the service's resilient batched path.

    Parameters
    ----------
    base:
        The shape base; shapes must carry image ids for image-level
        operators to be meaningful.  Mutually exclusive with
        ``service``.
    similarity_threshold:
        The distance below which ``g_similar`` holds (average-distance
        measure on normalized copies).
    angle_tolerance:
        Absolute tolerance (radians) for matching a predicate's theta.
    service:
        Mount the engine on a sharded retrieval service instead of a
        local base (usually via ``RetrievalService.query_engine()``).
    planner:
        When ``False``, composite queries evaluate every DNF literal
        in full, in written order, with plain set algebra — the
        unplanned baseline the algebra benchmark compares against.
        Subplan caching is part of the planner and is disabled too.
    cache_capacity:
        LRU capacity shared by the leaf cache and the subplan cache;
        0 disables both.
    """

    def __init__(self, base: Optional[ShapeBase] = None,
                 similarity_threshold: float = 0.05,
                 angle_tolerance: float = 0.15,
                 matcher: Optional[GeometricSimilarityMatcher] = None,
                 *, service=None, planner: bool = True,
                 cache_capacity: int = 256):
        from ..service.cache import QueryResultCache
        if similarity_threshold < 0:
            raise ValueError("similarity_threshold must be non-negative")
        if (base is None) == (service is None):
            raise ValueError("exactly one of base/service is required")
        self.base = base
        self.service = service
        self.similarity_threshold = float(similarity_threshold)
        self.angle_tolerance = float(angle_tolerance)
        self.matcher = None
        if base is not None:
            self.matcher = matcher or GeometricSimilarityMatcher(base)
        self.planner = bool(planner)
        self.selectivity = SelectivityModel()
        self.counters = EngineCounters()
        self._similar_cache = QueryResultCache(cache_capacity)
        self.plan_cache = QueryResultCache(cache_capacity)
        self._engine_cache: Dict[Shape, BoundaryDistance] = {}
        self._tls = threading.local()

    # ------------------------------------------------------------------
    # Corpus access (local base or sharded service)
    # ------------------------------------------------------------------
    def _version(self) -> int:
        if self.base is not None:
            return self.base.version
        return self.service.shards.version

    def _owner(self):
        return self.base if self.base is not None else self.service.shards

    def _bases(self):
        if self.base is not None:
            return [self.base]
        return [shard.base for shard in self.service.shards]

    def _base_of(self, shape_id: int) -> ShapeBase:
        if self.base is not None:
            return self.base
        return self.service.shards.shard_of(shape_id).base

    def _image_of(self, shape_id: int) -> Optional[int]:
        return self._base_of(shape_id).image_of_shape(shape_id)

    def _num_shapes(self) -> int:
        return sum(len(corpus.shapes) for corpus in self._bases())

    def _entry_rows(self):
        for corpus in self._bases():
            for shape_id in corpus.shape_ids():
                yield (shape_id, corpus.shapes[shape_id],
                       corpus.image_of_shape(shape_id))

    @property
    def graphs(self) -> Dict[int, ImageGraph]:
        """Per-image relation graphs, memoized per corpus version.

        Every engine over the same corpus object shares one set of
        graphs (:func:`repro.query.graph.image_graphs`); a mutation
        bumps the version and the next access rebuilds once.
        """
        return image_graphs(self._owner(), self._version(),
                            self._entry_rows)

    def all_images(self) -> Set[int]:
        """The DB universe for complements."""
        images: Set[int] = set()
        for corpus in self._bases():
            images.update(corpus.image_ids())
        return images

    # ------------------------------------------------------------------
    # Similarity primitives
    # ------------------------------------------------------------------
    def _query_engine(self, query: Shape) -> BoundaryDistance:
        engine = self._engine_cache.get(query)
        if engine is None:
            normalized = normalize_about_diameter(query).shape
            engine = BoundaryDistance(normalized)
            self._engine_cache[query] = engine
        return engine

    def _leaf_signature(self, query: Shape) -> str:
        from ..service.cache import sketch_signature
        return sketch_signature(
            query, kind="algebra-similar",
            parameter=f"{self.similarity_threshold:.12g}")

    def _ctx(self) -> Optional[Dict[str, Set[int]]]:
        """Per-execution leaf memo (thread-local, see :meth:`execute`)."""
        return getattr(self._tls, "ctx", None)

    def _threshold_batch(self, queries: Sequence[Shape]
                         ) -> List[Tuple[Set[int], int]]:
        """``(shape_ids, candidates_evaluated)`` per query shape."""
        if self.service is not None:
            results = self.service.similar_shapes_batch(
                queries, threshold=self.similarity_threshold)
            return [(set(res.shape_ids), int(res.candidates_evaluated))
                    for res in results]
        results = self.matcher.query_threshold_batch(
            queries, self.similarity_threshold)
        return [({m.shape_id for m in matches}, stats.candidates_evaluated)
                for matches, stats in results]

    def shape_similar_batch(self, queries: Sequence[Shape]
                            ) -> List[Set[int]]:
        """``shape_similar`` for several query shapes at once.

        Cache layers are probed per shape (the per-execution memo, then
        the versioned leaf cache); the distinct misses go to the
        backend in a single batched threshold call.  Each miss feeds
        the selectivity model, as Section 5.2 prescribes.
        """
        version = self._version()
        ctx = self._ctx()
        signatures = [self._leaf_signature(q) for q in queries]
        resolved: Dict[str, Set[int]] = {}
        misses: List[Tuple[str, Shape]] = []
        for signature, query in zip(signatures, queries):
            if signature in resolved or any(signature == s
                                            for s, _ in misses):
                continue
            hit = ctx.get(signature) if ctx is not None else None
            if hit is None:
                hit = self._similar_cache.get(signature, version)
            if hit is not None:
                resolved[signature] = hit
            else:
                misses.append((signature, query))
        if misses:
            fetched = self._threshold_batch([q for _, q in misses])
            for (signature, query), (ids, candidates) in zip(misses,
                                                             fetched):
                self.counters.add(threshold_queries=1,
                                  candidate_evaluations=candidates)
                self.selectivity.observe(query, len(ids),
                                         threshold=self
                                         .similarity_threshold)
                self._similar_cache.put(signature, version, frozenset(ids))
                resolved[signature] = ids
        out: List[Set[int]] = []
        for signature in signatures:
            ids = resolved[signature]
            if ctx is not None:
                ctx[signature] = ids
            out.append(set(ids))
        return out

    def shape_similar(self, query: Shape) -> Set[int]:
        """``shape_similar(Q)``: ids of all similar database shapes."""
        return self.shape_similar_batch([query])[0]

    def _leaf_cached(self, query: Shape) -> Optional[FrozenSet[int]]:
        """The already-materialized similarity set of ``query``, if any.

        Probes the per-execution memo and the versioned leaf cache
        only; never issues a threshold query and moves no counters.
        """
        signature = self._leaf_signature(query)
        ctx = self._ctx()
        cached = ctx.get(signature) if ctx is not None else None
        if cached is None:
            cached = self._similar_cache.get(signature, self._version())
        return cached

    def is_similar(self, shape_id: int, query: Shape) -> bool:
        """Direct ``g_similar(S, Q)`` test for one database shape.

        Used by strategy 1 and by restricted term filters, which check
        candidate shapes one by one instead of materializing the full
        similarity set.  On a leaf-cache hit the membership test is
        free; otherwise the shape's entries are measured directly (same
        qualification rule as the matcher: best average distance
        ``<= t + EPSILON``).
        """
        self.counters.add(similarity_checks=1)
        cached = self._leaf_cached(query)
        if cached is not None:
            return shape_id in cached
        engine = self._query_engine(query)
        corpus = self._base_of(shape_id)
        for entry_id in corpus.entries_of_shape(shape_id):
            vertices = corpus.entry_vertices(entry_id)
            if float(engine.distances(vertices).mean()) <= \
                    self.similarity_threshold + EPSILON:
                return True
        return False

    def similar(self, query: Shape) -> Set[int]:
        """``similar(Q)``: the images containing a similar shape."""
        images = set()
        for shape_id in self.shape_similar(query):
            image_id = self._image_of(shape_id)
            if image_id is not None:
                images.add(image_id)
        return images

    # ------------------------------------------------------------------
    # Topological operators
    # ------------------------------------------------------------------
    def topological(self, relation: str, q1: Shape, q2: Shape,
                    theta=ANY_ANGLE, strategy: Optional[int] = None
                    ) -> Set[int]:
        """``r(Q1, Q2, theta)`` with the chosen (or planned) strategy.

        With ``strategy=None`` the planner picks: strategy 1 when the
        estimated selectivities differ substantially (driving from the
        small side avoids materializing the big one), else strategy 2.
        """
        if strategy is None:
            s1 = self.selectivity.estimate(q1, self.similarity_threshold)
            s2 = self.selectivity.estimate(q2, self.similarity_threshold)
            strategy = 1 if max(s1, s2) > 2.0 * min(s1, s2) else 2
        if strategy == 1:
            return self._topological_strategy1(relation, q1, q2, theta)
        if strategy == 2:
            return self._topological_strategy2(relation, q1, q2, theta)
        raise ValueError("strategy must be 1, 2 or None")

    def _relation_holds(self, graph: ImageGraph, s1: int, s2: int,
                        relation: str, theta) -> bool:
        """Does ``g_relation(S1, S2, theta)`` hold inside one image?"""
        self.counters.add(pairs_checked=1)
        found, angle = graph.relation(s1, s2)
        if relation == DISJOINT:
            if found != DISJOINT or s1 == s2:
                return False
            if theta == ANY_ANGLE:
                return True
            angle = diameter_angle(graph.shapes[s1], graph.shapes[s2])
            return angle_matches(angle, theta, self.angle_tolerance)
        if found != relation:
            return False
        return angle_matches(angle, theta, self.angle_tolerance)

    def _topological_strategy1(self, relation: str, q1: Shape, q2: Shape,
                               theta) -> Set[int]:
        """Paper Section 5.3, way 1: drive from the smaller side.

        Compute the similarity set of the more selective query shape;
        for each of its shapes walk the image-graph edges and test the
        partner directly against the other query shape.
        """
        sel1 = self.selectivity.estimate(q1, self.similarity_threshold)
        sel2 = self.selectivity.estimate(q2, self.similarity_threshold)
        drive_q2 = sel2 <= sel1
        driver, other = (q2, q1) if drive_q2 else (q1, q2)
        graphs = self.graphs
        result: Set[int] = set()
        for s_drive in self.shape_similar(driver):
            image_id = self._image_of(s_drive)
            if image_id is None:
                continue
            graph = graphs[image_id]
            if image_id in result:
                continue
            if relation == DISJOINT:
                partners = [sid for sid in graph.shapes
                            if sid != s_drive and
                            graph.relation(s_drive, sid)[0] == DISJOINT]
            elif drive_q2:
                # driver plays the S2 role: follow edges S1 ->r S2.
                edges = graph.in_edges(s_drive, relation)
                self.counters.add(edges_scanned=len(edges))
                partners = [e.source for e in edges]
            else:
                edges = graph.out_edges(s_drive, relation)
                self.counters.add(edges_scanned=len(edges))
                partners = [e.target for e in edges]
            for partner in partners:
                s1, s2 = (partner, s_drive) if drive_q2 else (s_drive,
                                                              partner)
                if not self._relation_holds(graph, s1, s2, relation,
                                            theta):
                    continue
                if self.is_similar(partner, other):
                    result.add(image_id)
                    break
        return result

    def _topological_strategy2(self, relation: str, q1: Shape, q2: Shape,
                               theta) -> Set[int]:
        """Paper Section 5.3, way 2: materialize both similarity sets.

        Compute ``shape_similar`` for both query shapes, intersect
        their image projections, then verify relations only inside the
        common images.
        """
        set1, set2 = self.shape_similar_batch([q1, q2])
        images1 = {self._image_of(s) for s in set1}
        images2 = {self._image_of(s) for s in set2}
        common = (images1 & images2) - {None}
        graphs = self.graphs
        result: Set[int] = set()
        for image_id in common:
            graph = graphs[image_id]
            members = set(graph.shapes)
            local1 = set1 & members
            local2 = set2 & members
            done = False
            for s1 in local1:
                for s2 in local2:
                    if s1 == s2:
                        continue
                    if self._relation_holds(graph, s1, s2, relation,
                                            theta):
                        result.add(image_id)
                        done = True
                        break
                if done:
                    break
        return result

    # ------------------------------------------------------------------
    # Composite queries
    # ------------------------------------------------------------------
    def _literal_selectivity(self, literal: Literal) -> float:
        op = literal.operator
        threshold = self.similarity_threshold
        if isinstance(op, Similar):
            estimate = self.selectivity.estimate(op.query_shape, threshold)
        else:
            estimate = min(self.selectivity.estimate(op.q1, threshold),
                           self.selectivity.estimate(op.q2, threshold))
        if literal.negated:
            return max(0.0, len(self.all_images()) - estimate)
        return estimate

    def _evaluate_operator(self, op: QueryNode) -> Set[int]:
        """Full evaluation of one operator, through the subplan cache.

        The benchmark suite monkeypatches this method to observe which
        operator the planner seeds each term with — keep it the single
        entry point for full operator evaluation.
        """
        use_cache = self.planner and self.plan_cache.enabled
        key = None
        if use_cache:
            signature = operator_signature(
                op, threshold=self.similarity_threshold,
                angle_tolerance=self.angle_tolerance)
            key = "op:" + signature
            cached = self.plan_cache.get(key, self._version())
            if cached is not None:
                self.counters.add(plan_cache_hits=1)
                return set(cached)
            self.counters.add(plan_cache_misses=1)
        if isinstance(op, Similar):
            result = self.similar(op.query_shape)
        elif isinstance(op, Topological):
            result = self.topological(op.relation, op.q1, op.q2, op.theta)
        else:
            raise TypeError(f"not an operator: {type(op).__name__}")
        if key is not None:
            self.plan_cache.put(key, self._version(), frozenset(result))
        return result

    def _image_satisfies(self, image_id: int, literal: Literal) -> bool:
        """Restricted evaluation of one literal on one image.

        Leaf membership comes from the materialized set when one is
        already cached and from per-shape :meth:`is_similar` checks
        otherwise; topological literals verify graph edges between the
        qualifying members — per-image work only, never a scan of the
        whole corpus.
        """
        self.counters.add(filter_probes=1)
        op = literal.operator
        graph = self.graphs[image_id]

        def member_matches(shape_id: int, query: Shape,
                           leaf: Optional[FrozenSet[int]]) -> bool:
            if leaf is not None:
                return shape_id in leaf
            return self.is_similar(shape_id, query)

        if isinstance(op, Similar):
            leaf = self._leaf_cached(op.query_shape)
            value = any(member_matches(sid, op.query_shape, leaf)
                        for sid in graph.shapes)
        else:
            leaf1 = self._leaf_cached(op.q1)
            leaf2 = self._leaf_cached(op.q2)
            members = graph.shapes
            local1 = [sid for sid in members
                      if member_matches(sid, op.q1, leaf1)]
            local2 = [sid for sid in members
                      if member_matches(sid, op.q2, leaf2)]
            value = False
            for s1 in local1:
                for s2 in local2:
                    if s1 == s2:
                        continue
                    if self._relation_holds(graph, s1, s2, op.relation,
                                            op.theta):
                        value = True
                        break
                if value:
                    break
        return value != literal.negated

    def execute(self, query: QueryNode) -> Set[int]:
        """Evaluate a composite query via DNF + selectivity ordering.

        Per conjunctive term the literal with the smallest estimated
        result is evaluated in full; the remaining literals only run as
        per-image filters over that seed set (Section 5.4).  Terms
        containing only negated literals seed from the whole DB.
        """
        return self.execute_explained(query).images

    def execute_explained(self, query: QueryNode) -> ExecutionReport:
        """Like :meth:`execute` but returns the planning trace too."""
        fresh = self._ctx() is None
        if fresh:
            self._tls.ctx = {}
        try:
            return self._execute_plan(to_dnf(query))
        finally:
            if fresh:
                self._tls.ctx = None

    def _execute_plan(self, terms: List[ConjunctiveTerm]
                      ) -> ExecutionReport:
        threshold = self.similarity_threshold
        tolerance = self.angle_tolerance
        use_cache = self.planner and self.plan_cache.enabled
        report = ExecutionReport()
        if use_cache:
            report.signature = "plan:" + plan_signature(
                terms, threshold=threshold, angle_tolerance=tolerance)
            cached = self.plan_cache.get(report.signature, self._version())
            if cached is not None:
                self.counters.add(plan_cache_hits=1)
                report.images = set(cached)
                report.cached = True
                return report
            self.counters.add(plan_cache_misses=1)
        for term in terms:
            term_report = TermReport(signature="")
            if use_cache:
                term_report.signature = "term:" + term_signature(
                    term, threshold=threshold, angle_tolerance=tolerance)
                cached = self.plan_cache.get(term_report.signature,
                                             self._version())
            else:
                cached = None
            if cached is not None:
                self.counters.add(plan_cache_hits=1)
                term_report.cached = True
                term_report.images = set(cached)
            else:
                if use_cache:
                    self.counters.add(plan_cache_misses=1)
                if self.planner:
                    self._execute_term_planned(term, term_report)
                else:
                    self._execute_term_unplanned(term, term_report)
                if use_cache:
                    self.plan_cache.put(term_report.signature,
                                        self._version(),
                                        frozenset(term_report.images))
            report.terms.append(term_report)
            report.images |= term_report.images
        if use_cache:
            self.plan_cache.put(report.signature, self._version(),
                                frozenset(report.images))
        return report

    def _execute_term(self, term: ConjunctiveTerm) -> Set[int]:
        """One conjunctive term (kept as a direct entry point)."""
        term_report = TermReport(signature="")
        if self.planner:
            self._execute_term_planned(term, term_report)
        else:
            self._execute_term_unplanned(term, term_report)
        return term_report.images

    def _execute_term_planned(self, term: ConjunctiveTerm,
                              report: TermReport) -> None:
        self.counters.add(terms_planned=1)
        threshold = self.similarity_threshold
        tolerance = self.angle_tolerance
        # Idempotence: duplicate literals inside a term do no extra work.
        seen: Set[str] = set()
        deduped: List[Literal] = []
        for literal in term:
            signature = literal_signature(literal, threshold=threshold,
                                          angle_tolerance=tolerance)
            if signature in seen:
                continue
            seen.add(signature)
            deduped.append(literal)
        estimates = {id(lit): self._literal_selectivity(lit)
                     for lit in deduped}
        ordered = sorted(deduped, key=lambda lit: estimates[id(lit)])
        report.estimates = [(repr(lit), estimates[id(lit)])
                            for lit in ordered]
        positives = [lit for lit in ordered if not lit.negated]
        if positives:
            seed_literal = positives[0]
            written_first = next(lit for lit in deduped
                                 if not lit.negated)
            if seed_literal is not written_first:
                self.counters.add(seeds_reordered=1)
                report.reordered = True
            report.seed_operator = seed_literal.operator
            report.seed_estimate = estimates[id(seed_literal)]
            seed = self._evaluate_operator(seed_literal.operator)
            rest = [lit for lit in ordered if lit is not seed_literal]
        else:
            seed = self.all_images()
            rest = ordered
        if seed and rest:
            # Materializing a filter leaf costs roughly one candidate
            # evaluation per corpus shape; probing it shape by shape
            # costs one similarity check per seed member.  Issue the
            # batched backend call only when the seed is wide enough
            # for materialization to be the cheaper side — tiny seeds
            # (the planner's whole point) never touch the backend for
            # their filters.
            graphs = self.graphs
            member_count = sum(len(graphs[image_id].shapes)
                               for image_id in seed if image_id in graphs)
            if 4 * member_count >= self._num_shapes():
                leaves: List[Shape] = []
                for literal in rest:
                    op = literal.operator
                    if isinstance(op, Similar):
                        leaves.append(op.query_shape)
                    else:
                        leaves.extend((op.q1, op.q2))
                if leaves:
                    self.shape_similar_batch(leaves)
        survivors = set()
        for image_id in seed:
            if all(self._image_satisfies(image_id, lit) for lit in rest):
                survivors.add(image_id)
        report.images = survivors

    def _execute_term_unplanned(self, term: ConjunctiveTerm,
                                report: TermReport) -> None:
        """Naive baseline: full evaluation of every literal, in order.

        No deduplication, no selectivity ordering, no restricted
        filters: each literal materializes its whole image set
        (topological literals through strategy 2, which uses no
        selectivity information) and the sets are intersected.
        """
        result: Optional[Set[int]] = None
        for literal in term:
            op = literal.operator
            if isinstance(op, Similar):
                images = self.similar(op.query_shape)
            else:
                images = self.topological(op.relation, op.q1, op.q2,
                                          op.theta, strategy=2)
            if literal.negated:
                images = self.all_images() - images
            result = images if result is None else (result & images)
        report.images = result if result is not None else set()
