"""Query execution and planning (paper Sections 5.3-5.4).

:class:`QueryEngine` ties together the shape base, the matcher, the
per-image relation graphs and the selectivity model:

* ``similar(Q)`` runs the matcher's threshold query and projects shape
  hits onto their images;
* topological operators run in one of the paper's two strategies —
  strategy 1 starts from the *smaller* similarity side and walks graph
  edges, checking the other side shape-by-shape; strategy 2 computes
  both similarity sets, intersects the image sets, then verifies edges;
* composite queries are rewritten to DNF and, per conjunctive term, the
  cheapest (lowest-selectivity) literal is evaluated first with the
  remaining literals applied as per-image filters.

Work counters are kept for the planner benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..core.matcher import GeometricSimilarityMatcher
from ..core.shapebase import ShapeBase
from ..geometry.nearest import BoundaryDistance
from ..geometry.polyline import Shape
from ..geometry.transform import normalize_about_diameter
from .algebra import (ConjunctiveTerm, Literal, QueryNode, Similar,
                      Topological, to_dnf)
from .graph import (ANY_ANGLE, DISJOINT, ImageGraph, angle_matches,
                    diameter_angle)
from .selectivity import SelectivityModel


@dataclass
class EngineCounters:
    """Work accounting across one engine lifetime (reset manually)."""

    threshold_queries: int = 0
    similarity_checks: int = 0
    edges_scanned: int = 0
    pairs_checked: int = 0

    def reset(self) -> None:
        self.threshold_queries = 0
        self.similarity_checks = 0
        self.edges_scanned = 0
        self.pairs_checked = 0


class QueryEngine:
    """Executes topological queries over a populated :class:`ShapeBase`.

    Parameters
    ----------
    base:
        The shape base; shapes must carry image ids for image-level
        operators to be meaningful.
    similarity_threshold:
        The distance below which ``g_similar`` holds (average-distance
        measure on normalized copies).
    angle_tolerance:
        Absolute tolerance (radians) for matching a predicate's theta.
    """

    def __init__(self, base: ShapeBase, similarity_threshold: float = 0.05,
                 angle_tolerance: float = 0.15,
                 matcher: Optional[GeometricSimilarityMatcher] = None):
        if similarity_threshold < 0:
            raise ValueError("similarity_threshold must be non-negative")
        self.base = base
        self.similarity_threshold = float(similarity_threshold)
        self.angle_tolerance = float(angle_tolerance)
        self.matcher = matcher or GeometricSimilarityMatcher(base)
        self.selectivity = SelectivityModel()
        self.counters = EngineCounters()
        self.graphs: Dict[int, ImageGraph] = {}
        self._build_graphs()
        self._similar_cache: Dict[Shape, Set[int]] = {}
        self._engine_cache: Dict[Shape, BoundaryDistance] = {}

    def _build_graphs(self) -> None:
        for image_id in self.base.image_ids():
            graph = ImageGraph(image_id)
            for shape_id in self.base.shapes_of_image(image_id):
                graph.add_shape(shape_id, self.base.shapes[shape_id])
            self.graphs[image_id] = graph

    # ------------------------------------------------------------------
    # Similarity primitives
    # ------------------------------------------------------------------
    def _query_engine(self, query: Shape) -> BoundaryDistance:
        engine = self._engine_cache.get(query)
        if engine is None:
            normalized = normalize_about_diameter(query).shape
            engine = BoundaryDistance(normalized)
            self._engine_cache[query] = engine
        return engine

    def shape_similar(self, query: Shape) -> Set[int]:
        """``shape_similar(Q)``: ids of all similar database shapes.

        Runs (and caches) a matcher threshold query; each execution
        feeds the observed result size back into the selectivity model,
        as Section 5.2 prescribes.
        """
        cached = self._similar_cache.get(query)
        if cached is not None:
            return set(cached)
        matches, _ = self.matcher.query_threshold(
            query, self.similarity_threshold)
        self.counters.threshold_queries += 1
        result = {m.shape_id for m in matches}
        self._similar_cache[query] = set(result)
        self.selectivity.observe(query, len(result))
        return result

    def is_similar(self, shape_id: int, query: Shape) -> bool:
        """Direct ``g_similar(S, Q)`` test for one database shape.

        Used by strategy 1, which checks the non-driving side shape by
        shape instead of materializing its full similarity set.
        """
        self.counters.similarity_checks += 1
        cached = self._similar_cache.get(query)
        if cached is not None:
            return shape_id in cached
        engine = self._query_engine(query)
        for entry_id in self.base.entries_of_shape(shape_id):
            vertices = self.base.entry_vertices(entry_id)
            if float(engine.distances(vertices).mean()) <= \
                    self.similarity_threshold:
                return True
        return False

    def similar(self, query: Shape) -> Set[int]:
        """``similar(Q)``: the images containing a similar shape."""
        images = set()
        for shape_id in self.shape_similar(query):
            image_id = self.base.image_of_shape(shape_id)
            if image_id is not None:
                images.add(image_id)
        return images

    # ------------------------------------------------------------------
    # Topological operators
    # ------------------------------------------------------------------
    def topological(self, relation: str, q1: Shape, q2: Shape,
                    theta=ANY_ANGLE, strategy: Optional[int] = None
                    ) -> Set[int]:
        """``r(Q1, Q2, theta)`` with the chosen (or planned) strategy.

        With ``strategy=None`` the planner picks: strategy 1 when the
        estimated selectivities differ substantially (driving from the
        small side avoids materializing the big one), else strategy 2.
        """
        if strategy is None:
            s1 = self.selectivity.estimate(q1)
            s2 = self.selectivity.estimate(q2)
            strategy = 1 if max(s1, s2) > 2.0 * min(s1, s2) else 2
        if strategy == 1:
            return self._topological_strategy1(relation, q1, q2, theta)
        if strategy == 2:
            return self._topological_strategy2(relation, q1, q2, theta)
        raise ValueError("strategy must be 1, 2 or None")

    def _relation_holds(self, graph: ImageGraph, s1: int, s2: int,
                        relation: str, theta) -> bool:
        """Does ``g_relation(S1, S2, theta)`` hold inside one image?"""
        self.counters.pairs_checked += 1
        found, angle = graph.relation(s1, s2)
        if relation == DISJOINT:
            if found != DISJOINT or s1 == s2:
                return False
            if theta == ANY_ANGLE:
                return True
            angle = diameter_angle(graph.shapes[s1], graph.shapes[s2])
            return angle_matches(angle, theta, self.angle_tolerance)
        if found != relation:
            return False
        return angle_matches(angle, theta, self.angle_tolerance)

    def _topological_strategy1(self, relation: str, q1: Shape, q2: Shape,
                               theta) -> Set[int]:
        """Paper Section 5.3, way 1: drive from the smaller side.

        Compute the similarity set of the more selective query shape;
        for each of its shapes walk the image-graph edges and test the
        partner directly against the other query shape.
        """
        sel1 = self.selectivity.estimate(q1)
        sel2 = self.selectivity.estimate(q2)
        drive_q2 = sel2 <= sel1
        driver, other = (q2, q1) if drive_q2 else (q1, q2)
        result: Set[int] = set()
        for s_drive in self.shape_similar(driver):
            image_id = self.base.image_of_shape(s_drive)
            if image_id is None:
                continue
            graph = self.graphs[image_id]
            if image_id in result:
                continue
            if relation == DISJOINT:
                partners = [sid for sid in graph.shapes
                            if sid != s_drive and
                            graph.relation(s_drive, sid)[0] == DISJOINT]
            elif drive_q2:
                # driver plays the S2 role: follow edges S1 ->r S2.
                edges = graph.in_edges(s_drive, relation)
                self.counters.edges_scanned += len(edges)
                partners = [e.source for e in edges]
            else:
                edges = graph.out_edges(s_drive, relation)
                self.counters.edges_scanned += len(edges)
                partners = [e.target for e in edges]
            for partner in partners:
                s1, s2 = (partner, s_drive) if drive_q2 else (s_drive, partner)
                if not self._relation_holds(graph, s1, s2, relation, theta):
                    continue
                if self.is_similar(partner, other):
                    result.add(image_id)
                    break
        return result

    def _topological_strategy2(self, relation: str, q1: Shape, q2: Shape,
                               theta) -> Set[int]:
        """Paper Section 5.3, way 2: materialize both similarity sets.

        Compute ``shape_similar`` for both query shapes, intersect their
        image projections, then verify relations only inside the common
        images.
        """
        set1 = self.shape_similar(q1)
        set2 = self.shape_similar(q2)
        images1 = {self.base.image_of_shape(s) for s in set1}
        images2 = {self.base.image_of_shape(s) for s in set2}
        common = (images1 & images2) - {None}
        result: Set[int] = set()
        for image_id in common:
            graph = self.graphs[image_id]
            members = set(graph.shapes)
            local1 = set1 & members
            local2 = set2 & members
            done = False
            for s1 in local1:
                for s2 in local2:
                    if s1 == s2:
                        continue
                    if self._relation_holds(graph, s1, s2, relation, theta):
                        result.add(image_id)
                        done = True
                        break
                if done:
                    break
        return result

    # ------------------------------------------------------------------
    # Composite queries
    # ------------------------------------------------------------------
    def all_images(self) -> Set[int]:
        """The DB universe for complements."""
        return set(self.base.image_ids())

    def _literal_selectivity(self, literal: Literal) -> float:
        op = literal.operator
        if isinstance(op, Similar):
            estimate = self.selectivity.estimate(op.query_shape)
        else:
            estimate = min(self.selectivity.estimate(op.q1),
                           self.selectivity.estimate(op.q2))
        if literal.negated:
            return max(0.0, len(self.all_images()) - estimate)
        return estimate

    def _evaluate_operator(self, op: QueryNode) -> Set[int]:
        if isinstance(op, Similar):
            return self.similar(op.query_shape)
        if isinstance(op, Topological):
            return self.topological(op.relation, op.q1, op.q2, op.theta)
        raise TypeError(f"not an operator: {type(op).__name__}")

    def _image_satisfies(self, image_id: int, literal: Literal) -> bool:
        """Restricted evaluation of one literal on one image."""
        op = literal.operator
        graph = self.graphs[image_id]
        if isinstance(op, Similar):
            value = any(self.is_similar(sid, op.query_shape)
                        for sid in graph.shapes)
        else:
            value = False
            members = sorted(graph.shapes)
            for s1 in members:
                for s2 in members:
                    if s1 == s2:
                        continue
                    if not self._relation_holds(graph, s1, s2, op.relation,
                                                op.theta):
                        continue
                    if self.is_similar(s1, op.q1) and \
                            self.is_similar(s2, op.q2):
                        value = True
                        break
                if value:
                    break
        return value != literal.negated

    def execute(self, query: QueryNode) -> Set[int]:
        """Evaluate a composite query via DNF + selectivity ordering.

        Per conjunctive term the literal with the smallest estimated
        result is evaluated in full; the remaining literals only run as
        per-image filters over that seed set (Section 5.4).  Terms
        containing only negated literals seed from the whole DB.
        """
        result: Set[int] = set()
        for term in to_dnf(query):
            result |= self._execute_term(term)
        return result

    def _execute_term(self, term: ConjunctiveTerm) -> Set[int]:
        ordered = sorted(term, key=self._literal_selectivity)
        positives = [lit for lit in ordered if not lit.negated]
        if positives:
            seed_literal = positives[0]
            seed = self._evaluate_operator(seed_literal.operator)
            rest = [lit for lit in ordered if lit is not seed_literal]
        else:
            seed = self.all_images()
            rest = ordered
        survivors = set()
        for image_id in seed:
            if all(self._image_satisfies(image_id, lit) for lit in rest):
                survivors.add(image_id)
        return survivors
