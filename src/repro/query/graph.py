"""Per-image shape-relation graphs (paper Section 5).

For every image I the system maintains a directed graph G_I whose nodes
are the shapes of I and whose labeled edges record pairwise topology:
``v1 ->contain v2`` when v1 contains v2 and ``v1 ->overlap v2`` when the
two overlap (stored in both directions, overlap being symmetric).
Disjoint pairs get no edge.  Each edge carries the signed angle between
the two shapes' diameters, which the ``theta`` argument of the
topological predicates compares against.
"""

from __future__ import annotations

import math
import threading
import weakref
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.diameter import diameter
from ..geometry.polyline import Shape
from ..geometry.predicates import (boundaries_contact, points_in_polygon,
                                   segments_intersect)
from ..geometry.primitives import EPSILON, signed_angle

CONTAIN = "contain"
OVERLAP = "overlap"
TANGENT = "tangent"
DISJOINT = "disjoint"

RELATIONS = (CONTAIN, OVERLAP, TANGENT, DISJOINT)

#: Wildcard angle accepted by all predicates.
ANY_ANGLE = "any"


def diameter_vector(shape: Shape) -> Tuple[float, float]:
    """Canonically-oriented diameter vector of a shape.

    The paper recovers diameters by applying the stored inverse
    transforms to ((0,0), (1,0)); a database shape has two stored
    orientations per diameter, so for the *graph* we fix a canonical
    direction: positive x-component, ties broken toward positive y.
    """
    (i, j), _ = diameter(shape.vertices)
    v = shape.vertices
    dx, dy = float(v[j][0] - v[i][0]), float(v[j][1] - v[i][1])
    if dx < 0 or (dx == 0 and dy < 0):
        dx, dy = -dx, -dy
    return (dx, dy)


def diameter_angle(a: Shape, b: Shape) -> float:
    """Signed angle rotating a's diameter onto b's, in ``(-pi, pi]``."""
    return signed_angle(diameter_vector(a), diameter_vector(b))


class _BuildStats:
    """Graph-construction accounting (memoization effectiveness)."""

    def __init__(self):
        self._lock = threading.Lock()
        self.graphs_built = 0
        self.pair_tests = 0
        self.bbox_skips = 0

    def add(self, graphs: int = 0, pairs: int = 0, skips: int = 0) -> None:
        with self._lock:
            self.graphs_built += graphs
            self.pair_tests += pairs
            self.bbox_skips += skips

    def reset(self) -> None:
        with self._lock:
            self.graphs_built = 0
            self.pair_tests = 0
            self.bbox_skips = 0


#: Process-wide construction counters; tests assert that repeated
#: engine construction over an unchanged base builds nothing new.
GRAPH_BUILD_STATS = _BuildStats()


def _boundaries_intersect(a: Shape, b: Shape) -> Tuple[bool, bool]:
    """``(touching, properly_crossing)`` for the two boundaries.

    One broadcasted predicate call over all edge pairs (see
    :func:`repro.geometry.predicates.boundaries_contact`); equal to the
    scalar double loop :func:`_boundaries_intersect_scalar` pair for
    pair.
    """
    sa, ea = a.edges()
    sb, eb = b.edges()
    return boundaries_contact(sa, ea, sb, eb)


def _boundaries_intersect_scalar(a: Shape, b: Shape) -> Tuple[bool, bool]:
    """Reference implementation: pairwise scalar predicate loops."""
    from ..geometry.predicates import segments_properly_intersect
    sa, ea = a.edges()
    sb, eb = b.edges()
    touching = False
    for p1, q1 in zip(sa, ea):
        for p2, q2 in zip(sb, eb):
            if segments_properly_intersect(p1, q1, p2, q2):
                return True, True
            if not touching and segments_intersect(p1, q1, p2, q2):
                touching = True
    return touching, False


def relation_between(a: Shape, b: Shape) -> str:
    """Topological relation of ``a`` to ``b``.

    Returns ``"contain"`` (a contains b), ``"contained_by"`` (b contains
    a), ``"overlap"``, ``"tangent"`` or ``"disjoint"``.  Tangency — the
    abstract's contain/tangent/overlap trio — means the boundaries
    touch without properly crossing and neither interior engulfs the
    other.  Containment requires the container to be closed; full
    containment with an inner tangency still counts as containment.
    """
    touching, crossing = _boundaries_intersect(a, b)
    a_in_b = b.closed and bool(points_in_polygon(a.vertices,
                                                 b.vertices).all())
    b_in_a = a.closed and bool(points_in_polygon(b.vertices,
                                                 a.vertices).all())
    if not touching:
        if b_in_a and not a_in_b:
            return CONTAIN
        if a_in_b and not b_in_a:
            return "contained_by"
        if a_in_b and b_in_a:
            return OVERLAP          # coincident boundaries
        return DISJOINT
    if b_in_a and not a_in_b:
        return CONTAIN
    if a_in_b and not b_in_a:
        return "contained_by"
    if crossing:
        return OVERLAP
    return TANGENT


class RelationEdge:
    """One labeled, angle-annotated edge of an image graph."""

    __slots__ = ("source", "target", "label", "angle")

    def __init__(self, source: int, target: int, label: str, angle: float):
        self.source = source
        self.target = target
        self.label = label
        self.angle = angle

    def __repr__(self) -> str:
        return (f"RelationEdge({self.source} ->{self.label} {self.target}, "
                f"angle={self.angle:.3f})")


class ImageGraph:
    """G_I = (V_I, E_I): shapes of one image plus their relations."""

    def __init__(self, image_id: int):
        self.image_id = image_id
        self.shapes: Dict[int, Shape] = {}
        self._out: Dict[int, List[RelationEdge]] = {}
        self._in: Dict[int, List[RelationEdge]] = {}

    # -- construction ---------------------------------------------------
    def add_shape(self, shape_id: int, shape: Shape) -> None:
        if shape_id in self.shapes:
            raise ValueError(f"shape {shape_id} already in image graph")
        # Relate against all existing members before inserting.
        for other_id, other in self.shapes.items():
            GRAPH_BUILD_STATS.add(pairs=1)
            self._relate(shape_id, shape, other_id, other)
        self.shapes[shape_id] = shape
        self._out.setdefault(shape_id, [])
        self._in.setdefault(shape_id, [])

    def _relate(self, shape_id: int, shape: Shape,
                other_id: int, other: Shape) -> None:
        """Classify one pair and record its edges (if any)."""
        relation = relation_between(shape, other)
        if relation == DISJOINT:
            return
        angle = diameter_angle(shape, other)
        if relation == CONTAIN:
            self._add_edge(shape_id, other_id, CONTAIN, angle)
        elif relation == "contained_by":
            self._add_edge(other_id, shape_id, CONTAIN, -angle)
        else:
            # overlap and tangent are symmetric: one edge each way.
            self._add_edge(shape_id, other_id, relation, angle)
            self._add_edge(other_id, shape_id, relation, -angle)

    @classmethod
    def from_shapes(cls, image_id: int,
                    members: Sequence[Tuple[int, Shape]]) -> "ImageGraph":
        """Build a whole image's graph in one pass.

        Equivalent to :meth:`add_shape` in member order, but pairs
        whose bounding boxes are separated by more than the predicate
        epsilon are classified disjoint without touching the boundary
        predicates at all — separated boxes can neither touch nor
        contain each other, so the skip is exact.  The surviving pairs
        run through the batched boundary predicate.
        """
        graph = cls(image_id)
        members = list(members)
        if not members:
            return graph
        boxes = np.array([m[1].bbox() for m in members], dtype=np.float64)
        pairs = 0
        skips = 0
        for k, (shape_id, shape) in enumerate(members):
            for j in range(k):
                other_id, other = members[j]
                separated = (
                    boxes[k, 2] < boxes[j, 0] - EPSILON or
                    boxes[j, 2] < boxes[k, 0] - EPSILON or
                    boxes[k, 3] < boxes[j, 1] - EPSILON or
                    boxes[j, 3] < boxes[k, 1] - EPSILON)
                if separated:
                    skips += 1
                    continue
                pairs += 1
                graph._relate(shape_id, shape, other_id, other)
            graph.shapes[shape_id] = shape
            graph._out.setdefault(shape_id, [])
            graph._in.setdefault(shape_id, [])
        GRAPH_BUILD_STATS.add(graphs=1, pairs=pairs, skips=skips)
        return graph

    def _add_edge(self, source: int, target: int, label: str,
                  angle: float) -> None:
        edge = RelationEdge(source, target, label, angle)
        self._out.setdefault(source, []).append(edge)
        self._in.setdefault(target, []).append(edge)

    # -- queries ----------------------------------------------------------
    def out_edges(self, shape_id: int,
                  label: Optional[str] = None) -> List[RelationEdge]:
        edges = self._out.get(shape_id, [])
        if label is None:
            return list(edges)
        return [e for e in edges if e.label == label]

    def in_edges(self, shape_id: int,
                 label: Optional[str] = None) -> List[RelationEdge]:
        edges = self._in.get(shape_id, [])
        if label is None:
            return list(edges)
        return [e for e in edges if e.label == label]

    def relation(self, s1: int, s2: int) -> Tuple[str, Optional[float]]:
        """Relation and angle from s1 to s2 as recorded in the graph."""
        for edge in self._out.get(s1, []):
            if edge.target == s2:
                return edge.label, edge.angle
        for edge in self._in.get(s1, []):
            if edge.source == s2 and edge.label == CONTAIN:
                return "contained_by", -edge.angle
        return DISJOINT, None

    def disjoint_pairs(self) -> Iterable[Tuple[int, int]]:
        """All unordered shape pairs with no edge (the disjoint pairs)."""
        ids = sorted(self.shapes)
        for i, s1 in enumerate(ids):
            related = {e.target for e in self._out.get(s1, [])}
            related |= {e.source for e in self._in.get(s1, [])}
            for s2 in ids[i + 1:]:
                if s2 not in related:
                    yield (s1, s2)

    @property
    def num_edges(self) -> int:
        return sum(len(edges) for edges in self._out.values())

    def __len__(self) -> int:
        return len(self.shapes)

    def __repr__(self) -> str:
        return (f"ImageGraph(image={self.image_id}, shapes={len(self)}, "
                f"edges={self.num_edges})")


def build_image_graphs(entries: Iterable[Tuple[int, Shape, Optional[int]]]
                       ) -> Dict[int, "ImageGraph"]:
    """Group ``(shape_id, shape, image_id)`` rows into per-image graphs.

    Rows with ``image_id is None`` are skipped (shapes without an image
    cannot participate in image-level topology).  Each image's graph is
    built through the batched :meth:`ImageGraph.from_shapes` path.
    """
    members: Dict[int, List[Tuple[int, Shape]]] = {}
    for shape_id, shape, image_id in entries:
        if image_id is None:
            continue
        members.setdefault(image_id, []).append((shape_id, shape))
    return {image_id: ImageGraph.from_shapes(image_id, rows)
            for image_id, rows in members.items()}


#: owner object -> (version, graphs).  Weak keys: a dropped base drops
#: its graphs.  One entry per owner; a version bump (ingest/remove)
#: replaces the entry on the next request.
_GRAPH_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_GRAPH_MEMO_LOCK = threading.Lock()


def image_graphs(owner, version: int,
                 entries_fn) -> Dict[int, "ImageGraph"]:
    """Per-owner, per-version memoized image graphs.

    ``owner`` is the object whose mutation counter ``version`` tracks
    (a :class:`~repro.core.shapebase.ShapeBase` or a shard set);
    ``entries_fn()`` yields ``(shape_id, shape, image_id)`` rows.  Every
    engine over the same corpus shares one set of graphs, and graphs
    are rebuilt exactly once per version — the construction counters in
    :data:`GRAPH_BUILD_STATS` let tests pin this down.
    """
    with _GRAPH_MEMO_LOCK:
        memo = _GRAPH_MEMO.get(owner)
        if memo is not None and memo[0] == version:
            return memo[1]
        graphs = build_image_graphs(entries_fn())
        _GRAPH_MEMO[owner] = (version, graphs)
        return graphs


def angle_matches(angle: Optional[float], theta, tolerance: float) -> bool:
    """Does a recorded angle satisfy the predicate's theta?

    ``theta`` is either :data:`ANY_ANGLE` or a value in ``[-2pi, 2pi]``;
    values are compared modulo 2*pi with the given tolerance.
    """
    if theta == ANY_ANGLE:
        return True
    if angle is None:
        return False
    delta = (angle - float(theta)) % (2.0 * math.pi)
    if delta > math.pi:
        delta = 2.0 * math.pi - delta
    return delta <= tolerance
