"""Banded multi-table LSH over MinHash sketches.

The classic banding construction: a signature of ``tables *
band_width`` MinHash rows is sliced into ``tables`` contiguous bands,
each band hashed whole into its own table.  Two entries collide in a
table iff their band agrees on every row, so the probability of
colliding somewhere is ``1 - (1 - J^w)^t`` for Jaccard similarity
``J`` — the familiar S-curve whose knee the (tables, band width)
knobs position.

The index is incremental in the same spirit as
:mod:`repro.rangesearch.dynamic`: entries can be added and removed
one at a time and the structure after any interleaving equals a fresh
build over the surviving entries (asserted by ``tests/test_ann.py``).
Buckets are plain dict-of-set tables like
:class:`repro.hashing.GeometricHashTable` — the candidate set is tiny
compared to the corpus, so constant factors matter less than
predictable behaviour under mutation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np


class LshIndex:
    """Multi-table banded LSH index over fixed-length int signatures.

    Parameters
    ----------
    tables:
        Number of bands / hash tables.  More tables raise recall and
        candidate volume.
    band_width:
        MinHash rows per band.  Wider bands demand closer agreement,
        sharpening precision at the cost of recall.
    """

    def __init__(self, tables: int = 16, band_width: int = 2):
        if tables < 1 or band_width < 1:
            raise ValueError("tables and band_width must be positive")
        self.tables = int(tables)
        self.band_width = int(band_width)
        self._buckets: List[Dict[bytes, Set[int]]] = \
            [dict() for _ in range(self.tables)]
        self._count = 0

    @property
    def signature_length(self) -> int:
        """MinHash rows a signature must carry (``tables * band_width``)."""
        return self.tables * self.band_width

    def __len__(self) -> int:
        return self._count

    def _band_keys(self, signature: np.ndarray) -> List[bytes]:
        signature = np.ascontiguousarray(signature, dtype=np.int64)
        if signature.shape != (self.signature_length,):
            raise ValueError(
                f"signature must have {self.signature_length} rows, "
                f"got {signature.shape}")
        w = self.band_width
        return [signature[t * w:(t + 1) * w].tobytes()
                for t in range(self.tables)]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, entry_id: int, signature: np.ndarray) -> None:
        """Insert one entry under every band of its signature.

        Buckets are replaced rather than mutated (copy-on-write at
        bucket granularity): ``candidates`` iterates buckets without a
        lock, and a reader that captured the old set must never watch
        it change size — the contract live delta ingest relies on.
        """
        entry_id = int(entry_id)
        for table, key in zip(self._buckets, self._band_keys(signature)):
            bucket = table.get(key)
            table[key] = (bucket | {entry_id}) if bucket else {entry_id}
        self._count += 1

    def add_batch(self, entry_ids, signatures: np.ndarray) -> None:
        """Insert many entries; row ``i`` of ``signatures`` is id ``i``'s."""
        signatures = np.ascontiguousarray(signatures, dtype=np.int64)
        for entry_id, row in zip(entry_ids, signatures):
            self.add(int(entry_id), row)

    def remove(self, entry_id: int, signature: np.ndarray) -> None:
        """Remove one entry, given the signature it was inserted with.

        Empty buckets are deleted so a long add/remove history cannot
        leak memory (mirrors ``GeometricHashTable.remove_entry``).
        """
        entry_id = int(entry_id)
        found = False
        for table, key in zip(self._buckets, self._band_keys(signature)):
            bucket = table.get(key)
            if bucket is not None and entry_id in bucket:
                found = True
                remaining = bucket - {entry_id}
                if remaining:
                    table[key] = remaining
                else:
                    del table[key]
        if not found:
            raise KeyError(f"entry {entry_id} not present under "
                           f"this signature")
        self._count -= 1

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def candidates(self, signature: np.ndarray,
                   cap: Optional[int] = None
                   ) -> Tuple[List[int], int]:
        """Entry ids colliding with ``signature`` in any table.

        Returns ``(ids, total)`` where ``total`` counts distinct
        colliders before the cap.  Ids are ranked by (vote count
        across tables, then entry id) so a cap keeps the candidates
        most tables agree on — the ones most likely to be true
        neighbours — and stays deterministic.
        """
        votes: Dict[int, int] = {}
        for table, key in zip(self._buckets, self._band_keys(signature)):
            for entry_id in table.get(key, ()):
                votes[entry_id] = votes.get(entry_id, 0) + 1
        ranked = sorted(votes, key=lambda e: (-votes[e], e))
        total = len(ranked)
        if cap is not None and total > cap:
            ranked = ranked[:cap]
        return ranked, total

    def bucket_stats(self) -> Dict[str, float]:
        """Occupancy summary for diagnostics (`stats`, serve-bench)."""
        sizes = [len(bucket) for table in self._buckets
                 for bucket in table.values()]
        if not sizes:
            return {"buckets": 0, "max_bucket": 0, "mean_bucket": 0.0}
        return {"buckets": len(sizes), "max_bucket": max(sizes),
                "mean_bucket": sum(sizes) / len(sizes)}

    def __repr__(self) -> str:
        return (f"LshIndex(tables={self.tables}, "
                f"band_width={self.band_width}, entries={self._count})")
