"""Approximate retrieval tier: polygon MinHash sketches + banded LSH.

The sub-linear pre-filter in front of the paper's exact machinery:
:mod:`repro.ann.sketch` turns normalized copies into seeded MinHash
signatures, :mod:`repro.ann.lsh` indexes them in banded multi-table
LSH, and :mod:`repro.ann.retriever` wraps both into the
:class:`AnnPrunedMatcher` the service exposes as the middle rung of
its degradation ladder (exact -> LSH-pruned exact -> hash tier).
"""

from .lsh import LshIndex
from .retriever import AnnConfig, AnnPrunedMatcher
from .sketch import (SketchConfig, compute_entry_sketches,
                     sketch_normalized_shape, sketch_vertex_sets)

__all__ = [
    "AnnConfig",
    "AnnPrunedMatcher",
    "LshIndex",
    "SketchConfig",
    "compute_entry_sketches",
    "sketch_normalized_shape",
    "sketch_vertex_sets",
]
