"""LSH candidate generation followed by exact scoring over candidates.

The :class:`AnnPrunedMatcher` is the middle rung of the service's
degradation ladder: cheaper than the exact envelope matcher (it never
touches the range index and scores only a capped candidate set) but
still ranked by the paper's own discrete average distance ``h_avg``,
so its answers are envelope answers whenever the true neighbours made
it into the candidate set.  Recall is the knob: more tables / wider
candidate caps trade latency for agreement with the exact top-k
(measured in ``benchmarks/bench_ann.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.matcher import Match, MatchStats
from ..geometry.nearest import BoundaryDistance
from ..geometry.polyline import Shape
from ..geometry.transform import normalize_about_diameter
from .lsh import LshIndex
from .sketch import SketchConfig, compute_entry_sketches, \
    sketch_normalized_shape


@dataclass(frozen=True)
class AnnConfig:
    """Knobs of the approximate tier (recall vs latency).

    The MinHash signature length is derived (``tables * band_width``),
    so the sketch family and the LSH banding always agree.
    """

    tables: int = 16
    band_width: int = 2
    candidate_cap: int = 512
    grid: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tables < 1 or self.band_width < 1:
            raise ValueError("tables and band_width must be positive")
        if self.candidate_cap < 1:
            raise ValueError("candidate_cap must be positive")

    @property
    def num_hashes(self) -> int:
        return self.tables * self.band_width

    @property
    def sketch(self) -> SketchConfig:
        return SketchConfig(num_hashes=self.num_hashes, grid=self.grid,
                            seed=self.seed)


class AnnPrunedMatcher:
    """Approximate top-k retrieval: LSH prune, then exact ``h_avg``.

    Built over a populated :class:`ShapeBase`; entry sketches come
    from the base's sketch cache when available (subset carry-over or
    a v4 snapshot) so shard warm-up after ``from_snapshot`` recomputes
    nothing.
    """

    def __init__(self, base, config: Optional[AnnConfig] = None):
        self.base = base
        self.config = config or AnnConfig()
        self._sketches = compute_entry_sketches(base, self.config.sketch)
        self.index = LshIndex(self.config.tables, self.config.band_width)
        self.index.add_batch(range(len(self._sketches)), self._sketches)
        self._version = base.version

    # ------------------------------------------------------------------
    # Incremental maintenance (mirrors the matcher's base coupling)
    # ------------------------------------------------------------------
    def add_entry(self, entry_id: int) -> None:
        """Index one freshly appended entry (sketched on the spot)."""
        entry = self.base.entries[entry_id]
        row = sketch_normalized_shape(entry.shape, self.config.sketch)
        if len(self._sketches) != entry_id:
            raise ValueError("entries must be added in append order")
        self._sketches = np.concatenate([self._sketches, row[None, :]])
        self.index.add(entry_id, row)

    def add_entries(self, entry_ids: Sequence[int]) -> None:
        """Index a contiguous run of freshly appended entries.

        The streaming ingest fast path: sketch rows come from the
        base's (already patched) sketch cache when present, and the
        sketch matrix is extended by one concatenation — identical end
        state to per-entry :meth:`add_entry` calls, minus the per-row
        recompute.  The matrix is replaced, never written in place, so
        concurrent readers keep a consistent view.
        """
        entry_ids = [int(e) for e in entry_ids]
        if not entry_ids:
            return
        if entry_ids != list(range(len(self._sketches),
                                   len(self._sketches) + len(entry_ids))):
            raise ValueError("entries must be added in append order")
        cached = self.base.cached_sketches(self.config.sketch.key)
        if cached is not None and len(cached) >= entry_ids[-1] + 1:
            rows = np.ascontiguousarray(cached[entry_ids[0]:
                                               entry_ids[-1] + 1])
        else:
            rows = np.stack([
                sketch_normalized_shape(self.base.entries[e].shape,
                                        self.config.sketch)
                for e in entry_ids])
        self._sketches = np.concatenate([self._sketches, rows])
        self.index.add_batch(entry_ids, rows)

    def remove_entry(self, entry_id: int) -> None:
        """Drop one entry; later entry ids shift down by one.

        Matches :meth:`ShapeBase.remove_shape`'s id compaction: the
        caller removes each of a shape's entries (highest first) and
        the index renumbers the survivors, ending up equal to a fresh
        build over the surviving entries.
        """
        self.index.remove(entry_id, self._sketches[entry_id])
        keep = np.ones(len(self._sketches), dtype=bool)
        keep[entry_id] = False
        # Renumber survivors above the hole: rebuild their postings
        # under the shifted id.  Done bucket-side to keep removal
        # O(affected postings) rather than O(corpus).
        for table in self.index._buckets:
            for bucket in table.values():
                shifted = {e - 1 for e in bucket if e > entry_id}
                bucket.difference_update(
                    {e for e in bucket if e > entry_id})
                bucket.update(shifted)
        self._sketches = self._sketches[keep]

    @property
    def num_indexed(self) -> int:
        return len(self.index)

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def query(self, query: Shape, k: int = 1,
              abort: Optional[Callable[[], bool]] = None
              ) -> Tuple[List[Match], MatchStats]:
        """Approximate top-k matches for ``query``.

        Same contract as :meth:`GeometricSimilarityMatcher.query`
        (list of :class:`Match` plus a :class:`MatchStats`), with
        ``approximate=True`` on every match and ``guaranteed`` always
        False — LSH pruning voids the envelope termination proof.
        ``abort`` is polled between the probe and the exact-scoring
        stage; an aborted query returns what it has with
        ``exhausted=True``.
        """
        stats = MatchStats()
        t0 = perf_counter()
        normalized = normalize_about_diameter(query).shape
        sketch = sketch_normalized_shape(normalized, self.config.sketch)
        stats.timings["ann_sketch"] = perf_counter() - t0
        t0 = perf_counter()
        candidate_ids, total = self.index.candidates(
            sketch, cap=self.config.candidate_cap)
        stats.timings["ann_probe"] = perf_counter() - t0
        stats.vertices_reported = total
        stats.candidates_evaluated = len(candidate_ids)
        if abort is not None and abort():
            stats.exhausted = True
            return [], stats
        t0 = perf_counter()
        matches = self._score(normalized, candidate_ids, k)
        stats.timings["exact_measures"] = perf_counter() - t0
        return matches, stats

    def query_batch(self, queries: Sequence[Shape], k: int = 1,
                    abort: Optional[Callable[[], bool]] = None
                    ) -> List[Tuple[List[Match], MatchStats]]:
        """Per-query :meth:`query` over a batch (service fan-out unit)."""
        results: List[Tuple[List[Match], MatchStats]] = []
        for query in queries:
            if abort is not None and abort():
                stats = MatchStats()
                stats.exhausted = True
                results.append(([], stats))
                continue
            results.append(self.query(query, k, abort=abort))
        return results

    def _score(self, normalized: Shape, candidate_ids: List[int],
               k: int) -> List[Match]:
        """Exact discrete measures over the candidate entries.

        One distance-engine call over the concatenated candidate
        vertices (the matcher's batched exact-measure idiom), then
        best-entry-per-shape and a (distance, shape id) sort.
        """
        if not candidate_ids:
            return []
        engine = BoundaryDistance(normalized)
        stacked, offsets = self.base.entry_vertices_batch(candidate_ids)
        distances = engine.distances(stacked)
        best: Dict[int, Tuple[float, int]] = {}
        for i, entry_id in enumerate(candidate_ids):
            value = float(distances[offsets[i]:offsets[i + 1]].mean())
            entry = self.base.entries[entry_id]
            current = best.get(entry.shape_id)
            if current is None or (value, entry_id) < current:
                best[entry.shape_id] = (value, entry_id)
        ranked = sorted(best.items(),
                        key=lambda item: (item[1][0], item[0]))[:k]
        return [Match(shape_id=shape_id,
                      image_id=self.base.entries[entry_id].image_id,
                      distance=value, entry_id=entry_id,
                      approximate=True)
                for shape_id, (value, entry_id) in ranked]

    def __repr__(self) -> str:
        return (f"AnnPrunedMatcher(entries={self.num_indexed}, "
                f"tables={self.config.tables}, "
                f"band_width={self.config.band_width}, "
                f"cap={self.config.candidate_cap})")
