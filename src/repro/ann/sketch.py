"""Deterministic polygon sketches for the approximate tier (Section 6).

A *sketch* is a MinHash signature of the set of area-grid cells a
normalized copy's boundary passes through.  Because the base stores
every shape normalized about its alpha-diameters (anchors pinned to
(0, 0)/(1, 0)), similar shapes land on near-identical cell sets no
matter how they were rotated, scaled or translated in their source
image — the same invariance the envelope matcher relies on, made
hashable.  MinHash turns cell-set Jaccard similarity into signature
agreement, which the banded LSH index of :mod:`repro.ann.lsh`
converts into sub-linear candidate generation.

Everything here is seeded and deterministic: the same corpus and the
same :class:`SketchConfig` always produce bit-identical signatures,
which is what lets snapshots embed them (``storage/persist`` v4) and
lets shards trust a cache instead of recomputing.

The construction follows the consistent-sampling line of Gudmundsson &
Pagh (PolyMinHash) adapted to the paper's normalized-copy geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

# The lune of possible normalized vertices is bounded (Section 2.3):
# every non-anchor vertex of a copy normalized about an alpha-diameter
# lies within unit distance of both anchors (up to the alpha slack).
# This box covers it with margin; points outside are clamped to the
# border cells, which only ever *merges* extreme cells.
_BOX_X0, _BOX_X1 = -0.35, 1.35
_BOX_Y0, _BOX_Y1 = -1.1, 1.1

# MinHash arithmetic is done modulo a Mersenne prime in int64; with
# cell ids < 2**12 and coefficients < 2**31 the products stay far from
# overflow.
_MERSENNE = np.int64(2**31 - 1)

_MAX_SAMPLES_PER_EDGE = 64


@dataclass(frozen=True)
class SketchConfig:
    """Parameters of the sketch family (all part of the cache key).

    num_hashes:
        Signature length ``H``.  The LSH layer slices it into
        ``tables`` bands of ``band_width`` rows, so configurations are
        usually derived from an :class:`repro.ann.AnnConfig`.
    grid:
        The occupancy grid is ``grid x grid`` cells over the fixed
        normalized-copy bounding box.  Coarser grids forgive more
        vertex noise but discriminate less.
    seed:
        Seed of the hash-coefficient generator.  Two bases sketched
        with the same seed are directly comparable; signatures from
        different seeds never are.
    """

    num_hashes: int = 32
    grid: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_hashes < 1:
            raise ValueError("num_hashes must be positive")
        if not 2 <= self.grid <= 64:
            raise ValueError("grid must be in [2, 64]")

    @property
    def key(self) -> Tuple[int, int, int]:
        """The ShapeBase sketch-cache key for this family."""
        return (self.num_hashes, self.grid, self.seed)


def _hash_coefficients(config: SketchConfig) -> Tuple[np.ndarray, np.ndarray]:
    """The seeded ``a * cell + b (mod p)`` coefficient vectors."""
    rng = np.random.default_rng(config.seed)
    a = rng.integers(1, int(_MERSENNE), size=config.num_hashes,
                     dtype=np.int64)
    b = rng.integers(0, int(_MERSENNE), size=config.num_hashes,
                     dtype=np.int64)
    return a, b


def _boundary_samples(flat: np.ndarray, counts: np.ndarray,
                      closed: np.ndarray, spacing: float
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Points along every entry boundary, with their owning entry.

    ``flat`` stacks the vertex rows of all entries, ``counts`` gives
    rows per entry and ``closed`` whether the closing edge exists.
    Returns ``(points, owner)`` where ``points`` contains the vertices
    themselves plus deterministic interior samples at
    ``t = (j + 0.5) / s`` on every edge, ``s`` chosen so consecutive
    samples sit closer than ``spacing`` (capped to bound work on
    degenerate, very long edges).
    """
    num_entries = len(counts)
    offsets = np.zeros(num_entries + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    owner = np.repeat(np.arange(num_entries, dtype=np.int64), counts)
    position = np.arange(len(flat), dtype=np.int64) - offsets[owner]
    # Edges: every vertex to its successor, plus the wrap-around edge
    # of closed entries.
    not_last = position < counts[owner] - 1
    start_idx = np.flatnonzero(not_last)
    end_idx = start_idx + 1
    edge_owner = owner[start_idx]
    wrap_entries = np.flatnonzero(closed & (counts >= 2))
    if len(wrap_entries):
        start_idx = np.concatenate(
            [start_idx, offsets[wrap_entries + 1] - 1])
        end_idx = np.concatenate([end_idx, offsets[wrap_entries]])
        edge_owner = np.concatenate([edge_owner, wrap_entries])
    if not len(start_idx):
        return flat, owner
    starts = flat[start_idx]
    deltas = flat[end_idx] - starts
    lengths = np.hypot(deltas[:, 0], deltas[:, 1])
    per_edge = np.clip(np.ceil(lengths / spacing).astype(np.int64),
                       1, _MAX_SAMPLES_PER_EDGE)
    total = int(per_edge.sum())
    sample_edge = np.repeat(np.arange(len(per_edge), dtype=np.int64),
                            per_edge)
    sample_offsets = np.zeros(len(per_edge) + 1, dtype=np.int64)
    np.cumsum(per_edge, out=sample_offsets[1:])
    ordinal = np.arange(total, dtype=np.int64) - \
        sample_offsets[sample_edge]
    t = (ordinal + 0.5) / per_edge[sample_edge]
    interior = starts[sample_edge] + t[:, None] * deltas[sample_edge]
    points = np.concatenate([flat, interior], axis=0)
    point_owner = np.concatenate([owner, edge_owner[sample_edge]])
    return points, point_owner


def _occupied_cells(flat: np.ndarray, counts: np.ndarray,
                    closed: np.ndarray, grid: int
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Unique ``(owner, cell)`` pairs of boundary-occupied grid cells."""
    cell_w = (_BOX_X1 - _BOX_X0) / grid
    cell_h = (_BOX_Y1 - _BOX_Y0) / grid
    spacing = 0.5 * min(cell_w, cell_h)
    points, owner = _boundary_samples(flat, counts, closed, spacing)
    ix = np.clip(((points[:, 0] - _BOX_X0) / cell_w).astype(np.int64),
                 0, grid - 1)
    iy = np.clip(((points[:, 1] - _BOX_Y0) / cell_h).astype(np.int64),
                 0, grid - 1)
    cell = ix * grid + iy
    combined = np.unique(owner * np.int64(grid * grid) + cell)
    return combined // (grid * grid), combined % (grid * grid)


def _minhash(owner: np.ndarray, cell: np.ndarray, num_entries: int,
             config: SketchConfig) -> np.ndarray:
    """Per-entry MinHash rows from unique ``(owner, cell)`` pairs.

    ``owner`` must be sorted (``np.unique`` output order) and every
    entry in ``[0, num_entries)`` must own at least one cell.
    """
    a, b = _hash_coefficients(config)
    sketches = np.empty((num_entries, config.num_hashes), dtype=np.int64)
    if num_entries == 0:
        return sketches
    group_starts = np.flatnonzero(
        np.concatenate(([True], owner[1:] != owner[:-1])))
    if len(group_starts) != num_entries:
        raise ValueError("every entry must occupy at least one cell")
    for h in range(config.num_hashes):
        values = (a[h] * cell + b[h]) % _MERSENNE
        sketches[:, h] = np.minimum.reduceat(values, group_starts)
    return sketches


def sketch_vertex_sets(vertex_sets: Sequence[np.ndarray],
                       closed_flags: Sequence[bool],
                       config: SketchConfig) -> np.ndarray:
    """Sketch a batch of already-normalized boundaries.

    Returns an ``(E, num_hashes)`` int64 array, one MinHash row per
    input boundary, computed in stacked numpy passes.
    """
    if not len(vertex_sets):
        return np.empty((0, config.num_hashes), dtype=np.int64)
    counts = np.array([len(v) for v in vertex_sets], dtype=np.int64)
    flat = np.concatenate([np.asarray(v, dtype=float)
                           for v in vertex_sets], axis=0)
    closed = np.asarray(closed_flags, dtype=bool)
    owner, cell = _occupied_cells(flat, counts, closed, config.grid)
    return _minhash(owner, cell, len(vertex_sets), config)


def sketch_normalized_shape(shape, config: SketchConfig) -> np.ndarray:
    """The ``(num_hashes,)`` signature of one normalized shape.

    The caller is responsible for normalization
    (:func:`repro.geometry.normalize_about_diameter` for queries);
    sketching a raw, un-normalized shape produces signatures that are
    *not* comparable with the base's.
    """
    return sketch_vertex_sets([shape.vertices], [shape.closed],
                              config)[0]


def compute_entry_sketches(base, config: SketchConfig) -> np.ndarray:
    """Per-entry sketch rows for a whole base, cache-aware.

    Consults :meth:`ShapeBase.cached_sketches` first (filled by an
    earlier computation, a subset carry-over, or a v4 snapshot) and
    fills the cache on a miss, so repeated index builds over the same
    corpus — warm restarts, per-worker-count service rebuilds — pay
    for sketching exactly once.
    """
    cached = base.cached_sketches(config.key)
    if cached is not None:
        return cached
    rows = sketch_vertex_sets(
        [entry.shape.vertices for entry in base.entries],
        [entry.shape.closed for entry in base.entries], config)
    base.set_sketch_cache(config.key, rows)
    return rows
