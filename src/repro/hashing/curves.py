"""The equal-area hash-curve family over the lune (paper Section 3).

For the upper-left quarter ``q1`` the family consists of ``k`` arcs of
unit circles through (0, 0) whose centers ``(x, -sqrt(1 - x^2))`` lie on
the unit circle below the x-axis.  The *i*-th arc parameter ``x_i``
solves the paper's equal-area equation

    E(x) = integral_0^{min(2x, 1/2)} ( sqrt(1 - (t - x)^2)
                                       - sqrt(1 - x^2) ) dt
         = (A_0 / 4) * (i / k)

where ``A_0`` is the lune area.  ``E`` has the closed form used below
(antiderivative of ``sqrt(1 - u^2)``), is continuous and strictly
increasing on [0, 1] with ``E(0) = 0`` and ``E(1) = A_0 / 4``, so a
bracketed root-finder pins each ``x_i`` quickly — the "fast
gradient-based numerical methods" of the paper.

The other quarters are mirror images: ``q2`` mirrors ``q1`` about the
vertical line ``x = 1/2`` (circles through (1, 0)), ``q3``/``q4``
mirror ``q1``/``q2`` about the x-axis.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy.optimize import brentq

from ..geometry.lune import LUNE_AREA

#: Area of one lune quarter (the right-hand side scale of E).
QUARTER_AREA = LUNE_AREA / 4.0


def _circle_antiderivative(u: float) -> float:
    """Antiderivative of ``sqrt(1 - u^2)`` at ``u`` (|u| <= 1)."""
    u = max(-1.0, min(1.0, u))
    return 0.5 * (u * math.sqrt(max(0.0, 1.0 - u * u)) + math.asin(u))


def curve_area(x: float) -> float:
    """The paper's ``E(x)`` — area carved below the arc with parameter x."""
    if not 0.0 <= x <= 1.0:
        raise ValueError("x must be in [0, 1]")
    upper = min(2.0 * x, 0.5)
    # integral of sqrt(1 - (t - x)^2) dt from 0 to upper
    arc_part = _circle_antiderivative(upper - x) - _circle_antiderivative(-x)
    flat_part = upper * math.sqrt(max(0.0, 1.0 - x * x))
    return arc_part - flat_part


def curve_area_derivative(x: float, step: float = 1e-6) -> float:
    """``dE/dx`` by central difference (continuous per the paper, Fig. 5)."""
    lo = max(0.0, x - step)
    hi = min(1.0, x + step)
    if hi <= lo:
        return 0.0
    return (curve_area(hi) - curve_area(lo)) / (hi - lo)


def solve_curve_parameters(k: int) -> np.ndarray:
    """The ``x_i`` (i = 1..k) splitting a quarter into k equal areas.

    ``x_k`` is exactly 1 (E(1) = A_0 / 4); the rest come from brentq on
    the monotone ``E``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    xs = np.empty(k)
    for i in range(1, k + 1):
        target = QUARTER_AREA * i / k
        if i == k:
            xs[i - 1] = 1.0
            continue
        xs[i - 1] = brentq(lambda x: curve_area(x) - target, 0.0, 1.0,
                           xtol=1e-12)
    return xs


class HashCurveFamily:
    """The full four-quarter family of ``k`` hash curves each.

    Curves are identified by ``(quarter, index)`` with quarter in 1..4
    and index in 1..k.  All circles have radius 1; only the center
    differs.  The distance from a point to curve ``(q, i)`` is
    ``| dist(point, center_{q,i}) - 1 |``.
    """

    def __init__(self, k: int = 50):
        self.k = int(k)
        self.xs = solve_curve_parameters(self.k)
        # Centers for q1; other quarters by mirroring.
        y = -np.sqrt(np.maximum(0.0, 1.0 - self.xs ** 2))
        self._centers = {
            1: np.column_stack([self.xs, y]),
            2: np.column_stack([1.0 - self.xs, y]),
            3: np.column_stack([self.xs, -y]),
            4: np.column_stack([1.0 - self.xs, -y]),
        }

    def center(self, quarter: int, index: int) -> Tuple[float, float]:
        """Center of curve ``index`` (1-based) in ``quarter``."""
        self._check(quarter, index)
        c = self._centers[quarter][index - 1]
        return (float(c[0]), float(c[1]))

    def _check(self, quarter: int, index: int) -> None:
        if quarter not in (1, 2, 3, 4):
            raise ValueError("quarter must be 1..4")
        if not 1 <= index <= self.k:
            raise ValueError(f"curve index must be in 1..{self.k}")

    def distance_to_curve(self, points: np.ndarray, quarter: int,
                          index: int) -> np.ndarray:
        """|dist(p, center) - 1| for each point."""
        self._check(quarter, index)
        c = self._centers[quarter][index - 1]
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 2)
        return np.abs(np.hypot(pts[:, 0] - c[0], pts[:, 1] - c[1]) - 1.0)

    def average_distance(self, points: np.ndarray, quarter: int,
                         index: int) -> float:
        """Average vertex distance to one curve (the hashing objective)."""
        return float(self.distance_to_curve(points, quarter, index).mean())

    # ------------------------------------------------------------------
    def closest_curve_exhaustive(self, points: np.ndarray,
                                 quarter: int) -> int:
        """Arg-min curve index by scanning all k curves (the oracle)."""
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 2)
        centers = self._centers[quarter]
        d = np.abs(np.hypot(pts[:, None, 0] - centers[None, :, 0],
                            pts[:, None, 1] - centers[None, :, 1]) - 1.0)
        return int(np.argmin(d.mean(axis=0))) + 1

    def closest_curve(self, points: np.ndarray, quarter: int) -> int:
        """Closest curve by ternary search over the discrete family.

        The paper observes the average distance has a single local
        minimum along the continuous family, so a logarithmic-time
        search suffices ("perform a binary search in the discrete space
        of curves").  A final local scan over the neighbours guards the
        discretization boundary.
        """
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 2)
        lo, hi = 1, self.k
        while hi - lo > 2:
            m1 = lo + (hi - lo) // 3
            m2 = hi - (hi - lo) // 3
            if self.average_distance(pts, quarter, m1) <= \
                    self.average_distance(pts, quarter, m2):
                hi = m2
            else:
                lo = m1
        best = min(range(lo, hi + 1),
                   key=lambda i: self.average_distance(pts, quarter, i))
        neighbours = [i for i in (best - 1, best, best + 1)
                      if 1 <= i <= self.k]
        return min(neighbours,
                   key=lambda i: self.average_distance(pts, quarter, i))

    def arc_polyline(self, quarter: int, index: int,
                     samples: int = 64) -> np.ndarray:
        """Sample the arc of one hash curve clipped to the lune.

        Returns an ``(s, 2)`` array of points on the unit circle around
        the curve's center that lie inside the lune — what Figure 4
        (right) plots.  May be empty for curves whose arc barely grazes
        the lune.
        """
        self._check(quarter, index)
        if samples < 2:
            raise ValueError("need at least two samples")
        from ..geometry.lune import in_lune
        cx, cy = self.center(quarter, index)
        theta = np.linspace(0.0, 2.0 * np.pi, samples * 4, endpoint=False)
        circle = np.column_stack([cx + np.cos(theta), cy + np.sin(theta)])
        inside = circle[in_lune(circle, tolerance=1e-9)]
        if len(inside) <= samples:
            return inside
        step = max(1, len(inside) // samples)
        return inside[::step]

    def __repr__(self) -> str:
        return f"HashCurveFamily(k={self.k})"
