"""Geometric hashing over the lune (paper Section 3): equal-area hash
curves, characteristic quadruples, the hash table and the approximate
retriever used when envelope fattening finds no close match.
"""

from .characteristic import (EMPTY_QUARTER, characteristic_quadruple,
                             quadruple_distance, quadruple_mean_curve,
                             quadruple_median_curve)
from .curves import (QUARTER_AREA, HashCurveFamily, curve_area,
                     curve_area_derivative, solve_curve_parameters)
from .hashtable import ApproximateRetriever, GeometricHashTable

__all__ = [
    "ApproximateRetriever", "EMPTY_QUARTER", "GeometricHashTable",
    "HashCurveFamily", "QUARTER_AREA", "characteristic_quadruple",
    "curve_area", "curve_area_derivative", "quadruple_distance",
    "quadruple_mean_curve", "quadruple_median_curve",
    "solve_curve_parameters",
]
