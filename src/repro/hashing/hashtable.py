"""The geometric hash table and approximate retrieval (paper Section 3).

Every shape-base entry is inserted under its four characteristic curves
(one bucket per ``(quarter, curve)`` pair).  A query shape is hashed the
same way; the union of its four buckets (optionally widened to
neighbouring curves) is the candidate set, which is then ranked by the
exact average-distance measure.  With enough curves the expected bucket
occupancy is constant, so retrieval is logarithmic in the number of
curves — the paper's complexity claim.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Set, Tuple

from ..core.matcher import Match
from ..core.shapebase import ShapeBase
from ..geometry.nearest import BoundaryDistance
from ..geometry.polyline import Shape
from .characteristic import (EMPTY_QUARTER, Quadruple,
                             characteristic_quadruple)
from .curves import HashCurveFamily

BucketKey = Tuple[int, int]       # (quarter, curve index)


class GeometricHashTable:
    """Buckets of entry ids keyed by (quarter, characteristic curve)."""

    def __init__(self, family: HashCurveFamily):
        self.family = family
        self._buckets: Dict[BucketKey, Set[int]] = {}
        self._signatures: Dict[int, Quadruple] = {}

    def insert(self, entry_id: int, quadruple: Quadruple) -> None:
        """Register one entry under its four characteristic curves.

        Buckets are *replaced*, not mutated: a reader holding the old
        set (``candidates`` unions buckets without a lock) never sees
        it change size mid-iteration, so a live table can absorb
        concurrent ingest.
        """
        self._signatures[entry_id] = quadruple
        for quarter, curve in enumerate(quadruple, start=1):
            if curve == EMPTY_QUARTER:
                continue
            bucket = self._buckets.get((quarter, curve))
            self._buckets[(quarter, curve)] = \
                (bucket | {entry_id}) if bucket else {entry_id}

    def remove(self, entry_id: int) -> None:
        quadruple = self._signatures.pop(entry_id, None)
        if quadruple is None:
            return
        for quarter, curve in enumerate(quadruple, start=1):
            bucket = self._buckets.get((quarter, curve))
            if bucket is not None and entry_id in bucket:
                remaining = bucket - {entry_id}
                if remaining:
                    self._buckets[(quarter, curve)] = remaining
                else:
                    del self._buckets[(quarter, curve)]

    def signature(self, entry_id: int) -> Optional[Quadruple]:
        return self._signatures.get(entry_id)

    def candidates(self, quadruple: Quadruple,
                   neighbor_radius: int = 0) -> Set[int]:
        """Union of the buckets of the query's curves (plus neighbours).

        ``neighbor_radius`` widens each lookup to the ``2r`` adjacent
        curves — the paper notes that close shapes may land on
        *neighbouring* curves.
        """
        found: Set[int] = set()
        for quarter, curve in enumerate(quadruple, start=1):
            if curve == EMPTY_QUARTER:
                continue
            lo = max(1, curve - neighbor_radius)
            hi = min(self.family.k, curve + neighbor_radius)
            for index in range(lo, hi + 1):
                found |= self._buckets.get((quarter, index), set())
        return found

    def occupancy(self) -> Counter:
        """Histogram: bucket size -> number of buckets (diagnostics)."""
        return Counter(len(bucket) for bucket in self._buckets.values())

    @property
    def num_buckets(self) -> int:
        return len(self._buckets)

    def __len__(self) -> int:
        return len(self._signatures)


class ApproximateRetriever:
    """Hashing-based approximate matcher over a :class:`ShapeBase`.

    This is the fallback path of the GeoSIR pipeline: when the
    envelope-fattening matcher exhausts its epsilon budget without a
    sufficiently similar shape, the hash table supplies approximate
    candidates in (expected) constant bucket size.
    """

    def __init__(self, base: ShapeBase, k_curves: int = 50,
                 neighbor_radius: int = 1):
        self.base = base
        self.family = HashCurveFamily(k_curves)
        self.neighbor_radius = int(neighbor_radius)
        self.table = GeometricHashTable(self.family)
        # Computing a characteristic quadruple walks every vertex of
        # every entry; reuse the base's cache (filled by a previous
        # retriever build or a v3 snapshot) when one exists for this
        # curve family, and fill it otherwise.
        cached = base.cached_signatures(k_curves)
        if cached is not None:
            signatures = [(int(a), int(b), int(c), int(d))
                          for a, b, c, d in cached]
        else:
            signatures = [characteristic_quadruple(entry.shape, self.family)
                          for entry in base]
            if len(base):
                base.set_signature_cache(k_curves, signatures)
        for entry, quadruple in zip(base, signatures):
            self.table.insert(entry.entry_id, quadruple)

    def add_entries(self, entry_ids) -> None:
        """Patch freshly appended base entries into the live table.

        The incremental half of the streaming write path: instead of
        rebuilding the retriever on ingest, only the new entries are
        hashed and inserted (reusing the base's signature cache rows
        when the ingest path has already appended them).  Bit-for-bit
        equivalent to a rebuild because insertion is order-independent
        set union.
        """
        cached = self.base.cached_signatures(self.family.k)
        for entry_id in entry_ids:
            entry_id = int(entry_id)
            if cached is not None:
                quadruple = tuple(int(v) for v in cached[entry_id])
            else:
                quadruple = characteristic_quadruple(
                    self.base.entry(entry_id).shape, self.family)
            self.table.insert(entry_id, quadruple)

    def query(self, query: Shape, k: int = 1,
              neighbor_radius: Optional[int] = None) -> List[Match]:
        """Up to ``k`` approximate matches ranked by average distance."""
        from ..core.matcher import GeometricSimilarityMatcher
        normalized = GeometricSimilarityMatcher(self.base).normalize_query(query)
        quadruple = characteristic_quadruple(normalized, self.family)
        radius = self.neighbor_radius if neighbor_radius is None \
            else neighbor_radius
        candidate_entries = self.table.candidates(quadruple, radius)
        engine = BoundaryDistance(normalized)
        best: Dict[int, Tuple[float, int]] = {}
        for entry_id in candidate_entries:
            entry = self.base.entry(entry_id)
            value = float(engine.distances(
                self.base.entry_vertices(entry_id)).mean())
            current = best.get(entry.shape_id)
            if current is None or value < current[0]:
                best[entry.shape_id] = (value, entry_id)
        ranked = sorted(best.items(), key=lambda kv: kv[1][0])[:k]
        return [Match(shape_id=sid,
                      image_id=self.base.image_of_shape(sid),
                      distance=value, entry_id=entry_id, approximate=True)
                for sid, (value, entry_id) in ranked]

    def signature_of(self, shape: Shape) -> Quadruple:
        """Characteristic quadruple of an arbitrary (raw) shape."""
        from ..core.matcher import GeometricSimilarityMatcher
        normalized = GeometricSimilarityMatcher(self.base).normalize_query(shape)
        return characteristic_quadruple(normalized, self.family)
