"""Characteristic hash curves of a normalized shape (paper Section 3).

A normalized shape's vertices are partitioned over the four lune
quarters; for each non-empty quarter the *characteristic curve* is the
family member minimizing the average vertex distance (Figure 6).  The
resulting quadruple ``(c1, c2, c3, c4)`` is the shape's hash signature
and also the sort key of the external storage layouts of Section 4.1.

Vertices falling outside the lune (alpha-diameter copies) are treated
as lying on the lune boundary, per the paper.
"""

from __future__ import annotations

from typing import Tuple

from ..geometry.lune import clamp_to_lune, quarters_of
from ..geometry.polyline import Shape
from .curves import HashCurveFamily

#: Sentinel for "no vertices in this quarter".
EMPTY_QUARTER = 0

Quadruple = Tuple[int, int, int, int]


def characteristic_quadruple(shape: Shape, family: HashCurveFamily,
                             exhaustive: bool = False) -> Quadruple:
    """Hash signature of one *normalized* shape.

    ``exhaustive`` switches the per-quarter curve search from the
    logarithmic ternary search to the linear oracle (tests compare the
    two).  Quarters containing no vertices yield :data:`EMPTY_QUARTER`.
    """
    points = clamp_to_lune(shape.vertices)
    quarters = quarters_of(points)
    signature = []
    for quarter in (1, 2, 3, 4):
        mask = quarters == quarter
        if not mask.any():
            signature.append(EMPTY_QUARTER)
            continue
        subset = points[mask]
        if exhaustive:
            signature.append(family.closest_curve_exhaustive(subset, quarter))
        else:
            signature.append(family.closest_curve(subset, quarter))
    return tuple(signature)


def quadruple_mean_curve(quadruple: Quadruple) -> int:
    """Sort key (i) of Section 4.1: round of the mean over the quadruple.

    Empty-quarter sentinels are excluded from the mean (a zero would
    drag shapes with sparse quarters towards the low curves for no
    geometric reason).
    """
    values = [c for c in quadruple if c != EMPTY_QUARTER]
    if not values:
        return EMPTY_QUARTER
    return int(round(sum(values) / len(values)))


def quadruple_median_curve(quadruple: Quadruple) -> int:
    """Sort key (iii) of Section 4.1.

    Sort the four elements, take the two medians, and of those return
    the one closest to the mean of all four.
    """
    values = sorted(c for c in quadruple if c != EMPTY_QUARTER)
    if not values:
        return EMPTY_QUARTER
    if len(values) <= 2:
        return values[0]
    mid_low = values[(len(values) - 1) // 2]
    mid_high = values[len(values) // 2]
    mean = sum(values) / len(values)
    if abs(mid_low - mean) <= abs(mid_high - mean):
        return mid_low
    return mid_high


def quadruple_distance(a: Quadruple, b: Quadruple) -> float:
    """L1 distance between signatures over the shared non-empty quarters.

    Used by tests and diagnostics: similar shapes should land on the
    same or neighbouring curves, i.e. small quadruple distance.
    """
    total = 0.0
    counted = 0
    for ca, cb in zip(a, b):
        if ca == EMPTY_QUARTER or cb == EMPTY_QUARTER:
            continue
        total += abs(ca - cb)
        counted += 1
    if counted == 0:
        return float("inf")
    return total / counted
