"""Shape similarity measures (paper Sections 2.1-2.2).

Implements the full ladder the paper walks through:

* directed and symmetric Hausdorff distance,
* the generalized (k-th ranked) Hausdorff distance of Huttenlocher and
  Rucklidge,
* the paper's contribution, the *average minimum point distance*
  ``h_avg(A, B) = average_{a in A} min_{b in B} d(a, b)`` — in a
  discrete (vertex) form and in the continuous form the paper actually
  defines, where the average runs over all points of the boundary of A
  (approximated by arc-length quadrature).

All functions accept :class:`~repro.geometry.Shape` instances; a
precomputed :class:`~repro.geometry.BoundaryDistance` for the target
can be supplied to amortize work across many sources (the matcher does
this with the query shape, standing in for the paper's "Voronoi diagram
of Q").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geometry.nearest import BoundaryDistance
from ..geometry.polyline import Shape


def _target_engine(target: Shape,
                   engine: Optional[BoundaryDistance]) -> BoundaryDistance:
    if engine is not None:
        if engine.shape is not target and engine.shape != target:
            raise ValueError("distance engine was built for a different shape")
        return engine
    return BoundaryDistance(target)


def directed_hausdorff(source: Shape, target: Shape,
                       engine: Optional[BoundaryDistance] = None) -> float:
    """``h(A, B) = max_{a in A} min_{b in B} d(a, b)`` over A's vertices.

    The max runs over the source's vertices while min-distances are
    measured to the target's *continuous* boundary.
    """
    distances = _target_engine(target, engine).distances(source.vertices)
    return float(distances.max())


def hausdorff(a: Shape, b: Shape) -> float:
    """Symmetric Hausdorff distance ``H(A, B) = max(h(A,B), h(B,A))``."""
    return max(directed_hausdorff(a, b), directed_hausdorff(b, a))


def directed_kth_hausdorff(source: Shape, target: Shape, k: Optional[int] = None,
                           engine: Optional[BoundaryDistance] = None) -> float:
    """Generalized Hausdorff ``h_k``: the k-th *largest* min-distance.

    ``k = 1`` recovers the directed Hausdorff distance; the literature
    default (and ours, when ``k`` is omitted) is ``k = m/2``, the
    median.  Used as a baseline; the paper notes it only applies to
    finite point sets and fails the metric axioms.
    """
    distances = _target_engine(target, engine).distances(source.vertices)
    m = len(distances)
    if k is None:
        k = max(1, m // 2)
    if not 1 <= k <= m:
        raise ValueError(f"k must be in [1, {m}], got {k}")
    return float(np.sort(distances)[m - k])


def kth_hausdorff(a: Shape, b: Shape, k: Optional[int] = None) -> float:
    """Symmetric generalized Hausdorff distance."""
    return max(directed_kth_hausdorff(a, b, k), directed_kth_hausdorff(b, a, k))


def directed_average_distance(source: Shape, target: Shape,
                              engine: Optional[BoundaryDistance] = None
                              ) -> float:
    """Discrete ``h_avg``: average over the source's *vertices*.

    This is the variant the matcher's early-termination bound speaks
    about: a shape with a fraction ``beta`` of its vertices outside the
    ``epsilon``-envelope has discrete ``h_avg > beta * epsilon``.
    """
    distances = _target_engine(target, engine).distances(source.vertices)
    return float(distances.mean())


def continuous_average_distance(source: Shape, target: Shape,
                                engine: Optional[BoundaryDistance] = None,
                                samples_per_edge: int = 8) -> float:
    """Continuous ``h_avg``: boundary-length-weighted average distance.

    The paper's definition (Section 2.2, "we compute the average over
    all points of the continuous shape A").  The boundary integral
    ``(1 / |A|) * \\int_A dist(a, B) da`` is evaluated with a midpoint
    rule of ``samples_per_edge`` nodes per edge; the error is
    O(spacing^2) because the integrand is piecewise smooth.
    """
    points, weights = source.boundary_quadrature(samples_per_edge)
    distances = _target_engine(target, engine).distances(points)
    total = float(weights.sum())
    if total <= 0:
        raise ValueError("source shape has zero-length boundary")
    return float((distances * weights).sum() / total)


def average_distance(a: Shape, b: Shape, continuous: bool = True,
                     samples_per_edge: int = 8) -> float:
    """Symmetric average-distance measure ``max(h_avg(A,B), h_avg(B,A))``.

    Symmetrized the same way the Hausdorff family is; the paper ranks
    matches by the directed value but the symmetric form is what the
    ``g_similar`` predicate of Section 5.1 evaluates between two
    database shapes.
    """
    if continuous:
        return max(continuous_average_distance(a, b, samples_per_edge=samples_per_edge),
                   continuous_average_distance(b, a, samples_per_edge=samples_per_edge))
    return max(directed_average_distance(a, b), directed_average_distance(b, a))


def similarity_score(a: Shape, b: Shape, continuous: bool = True) -> float:
    """Convenience ``1 / (1 + h_avg)`` score in ``(0, 1]`` (1 = identical)."""
    return 1.0 / (1.0 + average_distance(a, b, continuous=continuous))
