"""Nonlinear elastic matching — the dynamic-programming baseline.

Section 2.1 discusses the nonlinear elastic matching measure of Fagin
and Stockmeyer [12] and dismisses it for large bases because computing a
match costs ``O(n_A * n_B)`` by dynamic programming [3].  We implement
it so the measure-cost benchmark can demonstrate exactly that quadratic
growth against ``h_avg``'s linear one.

The formulation follows Arkin et al. / Fagin-Stockmeyer: an order-
preserving correspondence between the two vertex cycles where every
vertex of each shape is matched to at least one vertex of the other
(stretching allowed, no crossings), scored by the sum of matched-pair
distances; the elastic distance is the minimum score over
correspondences, normalized by the number of matched pairs.  For closed
shapes all cyclic rotations of the second sequence are tried, keeping
the measure start-point independent (the "derived starting points"
problem the paper mentions).
"""

from __future__ import annotations

import numpy as np

from ..geometry.polyline import Shape


def _elastic_dp(a: np.ndarray, b: np.ndarray) -> float:
    """Min-cost order-preserving correspondence of two open sequences.

    Classic edit-style DP: ``cost[i][j]`` is the best score matching
    prefixes ``a[:i+1]`` and ``b[:j+1]`` with ``(i, j)`` matched; moves
    are (i-1,j-1), (i-1,j), (i,j-1) — diagonal advances both, the others
    stretch one vertex over several partners.  O(n_A * n_B).
    """
    na, nb = len(a), len(b)
    diff = a[:, None, :] - b[None, :, :]
    pair = np.hypot(diff[..., 0], diff[..., 1])     # (na, nb) distances
    cost = np.full((na, nb), np.inf)
    count = np.zeros((na, nb), dtype=np.int64)
    cost[0, 0] = pair[0, 0]
    count[0, 0] = 1
    for j in range(1, nb):
        cost[0, j] = cost[0, j - 1] + pair[0, j]
        count[0, j] = j + 1
    for i in range(1, na):
        cost[i, 0] = cost[i - 1, 0] + pair[i, 0]
        count[i, 0] = i + 1
        row_cost = cost[i]
        prev_cost = cost[i - 1]
        row_count = count[i]
        prev_count = count[i - 1]
        for j in range(1, nb):
            best = prev_cost[j - 1]
            best_count = prev_count[j - 1]
            if prev_cost[j] < best:
                best = prev_cost[j]
                best_count = prev_count[j]
            if row_cost[j - 1] < best:
                best = row_cost[j - 1]
                best_count = row_count[j - 1]
            row_cost[j] = best + pair[i, j]
            row_count[j] = best_count + 1
    return float(cost[na - 1, nb - 1] / count[na - 1, nb - 1])


def elastic_matching_distance(a: Shape, b: Shape,
                              rotations: str = "all") -> float:
    """Nonlinear elastic matching distance between two shapes.

    ``rotations`` controls start-point handling for closed shapes:
    ``"all"`` tries every cyclic rotation of ``b`` (cost multiplies by
    ``n_b``, faithfully expensive), ``"none"`` matches the sequences as
    given (what a system with "derived starting points" would do after
    its preprocessing).
    """
    va = np.asarray(a.vertices, dtype=np.float64)
    vb = np.asarray(b.vertices, dtype=np.float64)
    if rotations not in ("all", "none"):
        raise ValueError("rotations must be 'all' or 'none'")
    if rotations == "none" or not (a.closed and b.closed):
        return _elastic_dp(va, vb)
    best = np.inf
    for shift in range(len(vb)):
        rotated = np.roll(vb, -shift, axis=0)
        best = min(best, _elastic_dp(va, rotated))
    return float(best)
