"""Epsilon scheduling for the envelope-fattening matcher (Section 2.5).

Three ingredients, straight from the paper:

* an *initial* width chosen so the first envelope is likely to contain
  about one shape's worth of vertices (step 1 "iteratively adjusts" from
  there);
* a growth rule for subsequent widths (geometric, factor configurable);
* the *termination threshold* of step 5,
  ``eps_max = A / (2 p l_Q) * log^3 n``, where ``A`` is the area of the
  locus of normalized shapes (the lune), ``p`` the number of shapes,
  ``n`` the total vertex count and ``l_Q`` the query perimeter.

All formulas use the first-order envelope-area estimate
``area(eps-envelope) ~ 2 * eps * l_Q`` and the uniform-density
assumption ``n / A`` vertices per unit area.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..geometry.lune import LUNE_AREA
from ..geometry.polyline import Shape


@dataclass(frozen=True)
class EpsilonSchedule:
    """Concrete schedule for one query against one base."""

    initial: float
    growth: float
    maximum: float

    def __post_init__(self):
        if self.initial <= 0:
            raise ValueError("initial epsilon must be positive")
        if self.growth <= 1.0:
            raise ValueError("growth factor must exceed 1")
        if self.maximum <= 0:
            raise ValueError("maximum epsilon must be positive")

    def widths(self):
        """Yield eps_1, eps_2, ... capped at the termination threshold.

        The final yielded value is exactly ``maximum`` when the
        geometric sequence would overshoot it, so the last envelope the
        matcher examines is the paper's threshold envelope.
        """
        eps = min(self.initial, self.maximum)
        while True:
            yield eps
            if eps >= self.maximum:
                return
            eps = min(eps * self.growth, self.maximum)


def expected_band_count(total_vertices: int, perimeter: float, eps: float,
                        locus_area: float = LUNE_AREA) -> float:
    """Expected vertices inside an eps-envelope under uniform density."""
    return total_vertices * 2.0 * eps * perimeter / locus_area


def initial_epsilon(total_vertices: int, perimeter: float,
                    target_count: float,
                    locus_area: float = LUNE_AREA) -> float:
    """Width whose envelope is expected to hold ``target_count`` vertices."""
    if total_vertices <= 0 or perimeter <= 0 or target_count <= 0:
        raise ValueError("all inputs must be positive")
    return target_count * locus_area / (2.0 * total_vertices * perimeter)


def termination_epsilon(num_shapes: int, total_vertices: int,
                        perimeter: float,
                        locus_area: float = LUNE_AREA,
                        slack: float = 1.0) -> float:
    """The paper's step-5 threshold ``A / (2 p l_Q) * log^3 n``.

    ``slack`` scales the threshold (ablation knob); natural log as the
    paper leaves the base unspecified, with a floor of 1 on the log term
    so tiny bases still search a non-degenerate range.
    """
    if num_shapes <= 0 or perimeter <= 0:
        raise ValueError("num_shapes and perimeter must be positive")
    log_term = max(1.0, math.log(max(2, total_vertices))) ** 3
    return slack * locus_area / (2.0 * num_shapes * perimeter) * log_term


def schedule_for(query: Shape, num_shapes: int, total_vertices: int,
                 average_vertices: float, growth: float = 1.6,
                 locus_area: float = LUNE_AREA,
                 slack: float = 1.0) -> EpsilonSchedule:
    """Build the full schedule for one query.

    The initial width targets one average shape's worth of vertices in
    the first envelope — the likely-hit heuristic of step 1.
    """
    perimeter = query.perimeter
    first = initial_epsilon(total_vertices, perimeter,
                            max(1.0, average_vertices), locus_area)
    last = termination_epsilon(num_shapes, total_vertices, perimeter,
                               locus_area, slack)
    return EpsilonSchedule(initial=min(first, last), growth=growth,
                           maximum=last)
