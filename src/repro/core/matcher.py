"""The incremental-fattening retrieval algorithm (paper Section 2.5).

Given a query shape Q the matcher:

1. normalizes Q about its diameter (the base already holds every shape
   normalized about its alpha-diameters, both endpoint orders, so one
   canonical query copy suffices);
2. grows a sequence of epsilon-envelopes around the normalized query;
3. per iteration, decomposes the envelope difference into O(m)
   triangles and asks the simplex range-search index for the base
   vertices inside them, re-checking each report against the exact
   distance predicate and a visited set so every vertex is processed
   exactly once;
4. bumps a counter per normalized copy; a copy with a fraction
   ``>= 1 - beta`` of its (indexed) vertices inside the current
   envelope becomes a *candidate* and gets its exact measure evaluated;
5. stops as soon as the k-th best evaluated measure is ``<= beta *
   eps_i`` — every copy that is not yet a candidate has more than a
   ``beta`` fraction of vertices at distance ``> eps_i``, hence a
   discrete average distance ``> beta * eps_i``, so no unseen copy can
   beat the current winners — or when the envelope exceeds the paper's
   termination threshold, in which case the caller should fall back to
   geometric hashing (Section 3).
"""

from __future__ import annotations

import heapq
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.envelope import band_cover_triangles
from ..geometry.nearest import BoundaryDistance
from ..geometry.polyline import Shape
from ..geometry.primitives import EPSILON
from ..geometry.transform import normalize_about_diameter
from .epsilon import EpsilonSchedule, schedule_for
from .measures import continuous_average_distance
from .shapebase import ShapeBase, ShapeEntry


@dataclass
class Match:
    """One retrieved shape, ranked by its average-distance measure."""

    shape_id: int
    image_id: Optional[int]
    distance: float
    entry_id: int
    approximate: bool = False     # True when produced by hashing fallback

    def __repr__(self) -> str:
        tag = " approx" if self.approximate else ""
        return (f"Match(shape={self.shape_id}, image={self.image_id}, "
                f"distance={self.distance:.6f}{tag})")


@dataclass
class MatchStats:
    """Work accounting for one query (drives the scaling benchmarks)."""

    iterations: int = 0
    epsilons: List[float] = field(default_factory=list)
    triangles_queried: int = 0
    vertices_reported: int = 0
    vertices_processed: int = 0
    candidates_evaluated: int = 0
    guaranteed: bool = False      # early-terminated with a guarantee
    exhausted: bool = False       # hit the termination envelope
    #: Per-stage wall time in seconds (``normalize``, ``calibrate``,
    #: ``range_search``, ``filter``, ``exact_measures``) — the source
    #: of the CLI's ``--profile`` breakdown.
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def total_reported(self) -> int:
        return self.vertices_reported


#: Per-shape best: shape id -> (measure value, entry id).
BestByShape = Dict[int, Tuple[float, int]]


class _TopK:
    """Exact bounded tracker of the ``k`` smallest per-shape values.

    Replaces the per-iteration full sort in ``kth_best_guaranteed``.
    ``offer`` is called whenever a shape's best value improves; values
    per shape only ever decrease, which is what makes rejection at
    insert time safe: a rejected value is ``>=`` every retained one,
    and the shape is re-offered if it later improves.  Stale heap
    entries (left behind by improvements and evictions) are discarded
    lazily by checking them against the membership map.
    """

    __slots__ = ("k", "_heap", "_member")

    def __init__(self, k: int):
        self.k = k
        self._heap: List[Tuple[float, int]] = []   # (-value, shape_id)
        self._member: Dict[int, float] = {}        # shape_id -> value

    def _clean(self) -> None:
        heap, member = self._heap, self._member
        while heap and member.get(heap[0][1]) != -heap[0][0]:
            heapq.heappop(heap)

    def offer(self, shape_id: int, value: float) -> None:
        member = self._member
        current = member.get(shape_id)
        if current is not None:
            if value >= current:
                return
            member[shape_id] = value
            heapq.heappush(self._heap, (-value, shape_id))
            return
        if len(member) < self.k:
            member[shape_id] = value
            heapq.heappush(self._heap, (-value, shape_id))
            return
        self._clean()
        if value >= -self._heap[0][0]:
            return
        member[shape_id] = value
        heapq.heappush(self._heap, (-value, shape_id))
        self._clean()
        _, evicted = heapq.heappop(self._heap)
        del member[evicted]

    def kth(self) -> Optional[float]:
        """The k-th smallest value seen, or ``None`` with fewer than k."""
        if len(self._member) < self.k:
            return None
        self._clean()
        return -self._heap[0][0]


class _QueryScratch:
    """Reusable per-query buffers for the fattening driver.

    One query's worth of visited/inside-count/evaluated state plus the
    (read-only, shared) candidate thresholds.  Pooled by the matcher so
    repeated queries stop paying the O(n + entries) allocations.

    A scratch additionally pins the epoch it was checked out against:
    ``index``/``points``/``owner`` are the consistent base view captured
    at checkout, which the driver reads instead of the live base — a
    concurrent ingest batch can swap the base's arrays mid-query
    without the query ever mixing generations.
    """

    __slots__ = ("visited", "inside_counts", "evaluated", "thresholds",
                 "index", "points", "owner")

    def __init__(self, num_points: int, num_entries: int,
                 thresholds: np.ndarray):
        self.visited = np.zeros(num_points, dtype=bool)
        self.inside_counts = np.zeros(num_entries, dtype=np.int64)
        self.evaluated = np.zeros(num_entries, dtype=bool)
        self.thresholds = thresholds
        self.index = None
        self.points = None
        self.owner = None

    def reset(self) -> None:
        self.visited[:] = False
        self.inside_counts[:] = 0
        self.evaluated[:] = False


class GeometricSimilarityMatcher:
    """Retrieval by incremental envelope fattening over a ShapeBase.

    Parameters
    ----------
    base:
        The populated :class:`ShapeBase`.
    beta:
        Candidate tolerance of step 3: a copy needs a fraction
        ``>= 1 - beta`` of its vertices inside the envelope.  Must be in
        ``(0, 1)`` for the early-termination guarantee to be active.
    growth:
        Geometric growth factor of the envelope widths.
    measure:
        ``"discrete"`` ranks candidates by the vertex-average distance
        (the form the termination bound is stated for); ``"continuous"``
        refines candidate values with the boundary-integrated measure;
        ``"symmetric"`` uses ``max`` of both discrete directions, which
        additionally requires the candidate to cover the query's
        boundary (the ``g_similar`` semantics of Section 5.1 — and the
        regime in which Figure 10's inverse V_S relationship holds).
        The candidate/termination machinery stays sound for all three:
        each refined value upper-bounds the discrete directed one, so a
        value passing the ``beta * eps`` bound under them also passes it
        under the discrete measure.
    cap_sectors:
        Fan resolution of the conservative envelope cover.
    slack:
        Multiplier on the paper's termination threshold (ablation knob).
    """

    def __init__(self, base: ShapeBase, beta: float = 0.25,
                 growth: float = 1.6, measure: str = "discrete",
                 cap_sectors: int = 8, slack: float = 1.0,
                 samples_per_edge: int = 8):
        if not 0.0 < beta < 1.0:
            raise ValueError("beta must be in (0, 1)")
        if measure not in ("discrete", "continuous", "symmetric"):
            raise ValueError("measure must be 'discrete', 'continuous' "
                             "or 'symmetric'")
        self.base = base
        self.beta = float(beta)
        self.growth = float(growth)
        self.measure = measure
        self.cap_sectors = int(cap_sectors)
        self.slack = float(slack)
        self.samples_per_edge = int(samples_per_edge)
        # Scratch pool: shards are queried from several worker threads
        # at once, so buffers are checked out under a lock rather than
        # living on the matcher; keyed on the base version so mutations
        # invalidate them.  The pool is additionally keyed on the
        # owning pid: a matcher inherited across ``fork`` (process
        # workers, chaos harnesses) must rebuild its pool in the child
        # instead of sharing checked-out buffers with the parent.
        self._scratch_lock = threading.Lock()
        self._scratch_pool: List[_QueryScratch] = []
        self._scratch_key: Optional[Tuple[int, int, int]] = None
        self._scratch_pid = os.getpid()
        self._thresholds: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @contextmanager
    def _scratch(self) -> Iterator[_QueryScratch]:
        """Check a clean scratch object out of the pool (thread-safe).

        Safe across ``fork``: a child process detects the inherited
        pool via the pid stamp and starts from an empty pool, so two
        processes never hand out (or mutate) the same scratch buffers
        even though they began life as the same object.
        """
        # One consistent capture per checkout: the index is read before
        # the arrays (the writer publishes it after them), so every id
        # it can report is in range for the arrays — and the buffers
        # are sized from this capture, not from the live base.
        version = self.base.version
        index, points, owner, sizes, _ = self.base.reader_view()
        num_points = len(points)
        num_entries = len(sizes)
        key = (version, num_points, num_entries)
        with self._scratch_lock:
            if self._scratch_pid != os.getpid():
                self._scratch_pool = []
                self._scratch_key = None
                self._scratch_pid = os.getpid()
            if self._scratch_key != key:
                self._scratch_pool = []
                # ceil((1 - beta) * size): the step-3 candidate
                # threshold, shared read-only by every scratch.
                thresholds = np.ceil(
                    (1.0 - self.beta) * sizes
                ).astype(np.int64)
                np.maximum(thresholds, 1, out=thresholds)
                self._thresholds = thresholds
                self._scratch_key = key
            scratch = (self._scratch_pool.pop() if self._scratch_pool
                       else _QueryScratch(num_points, num_entries,
                                          self._thresholds))
        scratch.index = index
        scratch.points = points
        scratch.owner = owner
        try:
            yield scratch
        finally:
            scratch.reset()
            scratch.index = scratch.points = scratch.owner = None
            with self._scratch_lock:
                if self._scratch_key == key:
                    self._scratch_pool.append(scratch)

    # ------------------------------------------------------------------
    def normalize_query(self, query: Shape) -> Shape:
        """Normalize the query about its diameter (Section 2.3)."""
        return normalize_about_diameter(query).shape

    def _entry_measure(self, entry: ShapeEntry, engine: BoundaryDistance,
                       normalized_query: Shape) -> float:
        vertices = self.base.entry_vertices(entry.entry_id)
        discrete = float(engine.distances(vertices).mean())
        if self.measure == "discrete":
            return discrete
        if self.measure == "symmetric":
            reverse = BoundaryDistance(entry.shape)
            other = float(reverse.distances(
                normalized_query.vertices).mean())
            return max(discrete, other)
        return continuous_average_distance(
            entry.shape, normalized_query, engine=engine,
            samples_per_edge=self.samples_per_edge)

    def _entry_measures(self, entries: Sequence[ShapeEntry],
                        entry_ids: np.ndarray, engine: BoundaryDistance,
                        normalized_query: Shape) -> List[float]:
        """Exact measures of a whole candidate batch.

        For the discrete measure every per-row distance is independent
        of the other rows, so one engine call over the concatenated
        vertices followed by per-entry slice means reproduces the
        per-entry calls bit-for-bit (same values, same summation
        order).  The continuous and symmetric measures need per-entry
        reverse engines, so they keep the scalar path.
        """
        if self.measure != "discrete" or len(entries) <= 1:
            return [self._entry_measure(entry, engine, normalized_query)
                    for entry in entries]
        stacked, offsets = self.base.entry_vertices_batch(entry_ids)
        distances = engine.distances(stacked)
        return [float(distances[offsets[i]:offsets[i + 1]].mean())
                for i in range(len(entries))]

    def make_schedule(self, normalized_query: Shape) -> EpsilonSchedule:
        return schedule_for(normalized_query, self.base.num_shapes,
                            self.base.total_vertices,
                            self.base.average_vertices_per_entry,
                            growth=self.growth, slack=self.slack)

    def calibrate_initial_epsilon(self, normalized_query: Shape,
                                  max_rounds: int = 32,
                                  stats: Optional[MatchStats] = None
                                  ) -> float:
        """Step 1 of the paper: adjust eps_1 by simplex range *counting*.

        Starting from the density-heuristic width, the envelope is
        grown until the range-counting structure reports at least one
        vertex inside it (cover-triangle counts over-estimate slightly
        because the triangles overlap near joints, which only makes the
        calibration conservative).  Returns the calibrated width,
        capped at the termination threshold.  All of a round's cover
        triangles are counted in one batched index call; with ``stats``
        given, the wall time lands in ``stats.timings["calibrate"]``.
        """
        started = perf_counter()
        schedule = self.make_schedule(normalized_query)
        index = self.base.index
        eps = schedule.initial
        for _ in range(max_rounds):
            triangles = band_cover_triangles(normalized_query, 0.0,
                                             eps, self.cap_sectors)
            occupied = bool(index.count_triangles(triangles).any())
            if occupied or eps >= schedule.maximum:
                break
            eps = min(eps * self.growth, schedule.maximum)
        if stats is not None:
            stats.timings["calibrate"] = (
                stats.timings.get("calibrate", 0.0) +
                perf_counter() - started)
        return eps

    # ------------------------------------------------------------------
    # The shared fattening driver (steps 2-5 of the paper's algorithm)
    # ------------------------------------------------------------------
    def _drive(self, normalized_query: Shape, engine: BoundaryDistance,
               schedule: EpsilonSchedule, stats: MatchStats,
               on_candidate: Optional[Callable[[ShapeEntry], None]],
               should_stop: Callable[[float, BestByShape], bool],
               abort: Optional[Callable[[], bool]] = None,
               scratch: Optional[_QueryScratch] = None,
               on_improved: Optional[Callable[[int, float], None]] = None
               ) -> BestByShape:
        """Grow envelopes until ``should_stop(eps, best)`` or exhaustion.

        Maintains the per-copy inside counters, promotes candidates and
        evaluates their exact measures; sets ``stats.guaranteed`` or
        ``stats.exhausted`` according to how the loop ended.  Each
        iteration issues *one* batched range-search call for the whole
        cover-triangle ring and *one* distance-engine call over the
        concatenated candidate vertices (discrete measure).

        ``abort`` is a cooperative cancellation hook (e.g. a deadline):
        it is polled once per envelope iteration, and a ``True`` return
        ends the loop immediately *without* the termination guarantee —
        ``stats.exhausted`` is set, exactly as if the epsilon budget had
        run out, so callers fall back to geometric hashing.

        ``scratch`` is a clean checked-out :class:`_QueryScratch`
        (allocated ad hoc when omitted); ``on_improved(shape_id,
        value)`` fires whenever a shape's best value improves — the
        top-k tracker's feed.
        """
        if scratch is None:
            with self._scratch() as owned:
                return self._drive(normalized_query, engine, schedule,
                                   stats, on_candidate, should_stop,
                                   abort=abort, scratch=owned,
                                   on_improved=on_improved)
        points = scratch.points
        owner = scratch.owner
        index = scratch.index
        visited = scratch.visited
        inside_counts = scratch.inside_counts
        evaluated = scratch.evaluated
        thresholds = scratch.thresholds
        best_by_shape: BestByShape = {}
        timings = stats.timings
        timings.setdefault("range_search", 0.0)
        timings.setdefault("filter", 0.0)
        timings.setdefault("exact_measures", 0.0)

        eps_prev = 0.0
        for eps in schedule.widths():
            if abort is not None and abort():
                stats.exhausted = True
                return best_by_shape
            stats.iterations += 1
            stats.epsilons.append(eps)
            started = perf_counter()
            triangles = band_cover_triangles(normalized_query, eps_prev,
                                             eps, self.cap_sectors)
            stats.triangles_queried += len(triangles)
            ids = index.report_triangles(triangles)
            timings["range_search"] += perf_counter() - started
            started = perf_counter()
            stats.vertices_reported += int(ids.size)
            ids = ids[~visited[ids]]
            if len(ids):
                distances = engine.distances(points[ids])
                inside = ids[distances <= eps + EPSILON]
                visited[inside] = True
                stats.vertices_processed += len(inside)
                np.add.at(inside_counts, owner[inside], 1)
                touched = np.unique(owner[inside])
            else:
                touched = np.zeros(0, dtype=np.int64)

            fresh = touched[(inside_counts[touched] >= thresholds[touched])
                            & ~evaluated[touched]]
            timings["filter"] += perf_counter() - started
            if len(fresh):
                started = perf_counter()
                evaluated[fresh] = True
                entries = [self.base.entry(int(e)) for e in fresh]
                values = self._entry_measures(entries, fresh, engine,
                                              normalized_query)
                stats.candidates_evaluated += len(fresh)
                for entry, value in zip(entries, values):
                    if on_candidate is not None:
                        on_candidate(entry)
                    current = best_by_shape.get(entry.shape_id)
                    if current is None or value < current[0]:
                        best_by_shape[entry.shape_id] = (value,
                                                         entry.entry_id)
                        if on_improved is not None:
                            on_improved(entry.shape_id, value)
                timings["exact_measures"] += perf_counter() - started

            if should_stop(eps, best_by_shape):
                stats.guaranteed = True
                return best_by_shape
            eps_prev = eps
        stats.exhausted = True
        return best_by_shape

    # ------------------------------------------------------------------
    def query(self, query: Shape, k: int = 1,
              on_candidate: Optional[Callable[[ShapeEntry], None]] = None,
              abort: Optional[Callable[[], bool]] = None
              ) -> Tuple[List[Match], MatchStats]:
        """Return up to ``k`` best matches and the work statistics.

        ``on_candidate`` fires, in evaluation order, for every entry
        whose exact measure is computed — the access trace the external
        storage experiments of Section 4 replay.  ``abort`` (polled per
        iteration) cancels the search cooperatively; see :meth:`_drive`.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if self.base.num_entries == 0:
            stats = MatchStats()
            stats.exhausted = True
            return [], stats
        with self._scratch() as scratch:
            return self._query_one(query, k, on_candidate, abort, scratch)

    def query_batch(self, queries: Sequence[Shape], k: int = 1,
                    on_candidate: Optional[Callable[[ShapeEntry], None]]
                    = None,
                    abort: Optional[Callable[[], bool]] = None
                    ) -> List[Tuple[List[Match], MatchStats]]:
        """Answer several queries, amortizing the per-query setup.

        Returns exactly ``[query(q, k) for q in queries]`` — one
        normalization and schedule per query, but a single scratch
        checkout shared (serially) across the whole batch.  The service
        tier feeds cache misses through this path.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if self.base.num_entries == 0:
            results = []
            for _ in queries:
                stats = MatchStats()
                stats.exhausted = True
                results.append(([], stats))
            return results
        results = []
        with self._scratch() as scratch:
            for query in queries:
                results.append(self._query_one(query, k, on_candidate,
                                               abort, scratch))
                scratch.reset()
        return results

    def _query_one(self, query: Shape, k: int,
                   on_candidate: Optional[Callable[[ShapeEntry], None]],
                   abort: Optional[Callable[[], bool]],
                   scratch: _QueryScratch
                   ) -> Tuple[List[Match], MatchStats]:
        """One top-k query against a clean checked-out scratch."""
        stats = MatchStats()
        started = perf_counter()
        normalized_query = self.normalize_query(query)
        engine = BoundaryDistance(normalized_query)
        schedule = self.make_schedule(normalized_query)
        stats.timings["normalize"] = perf_counter() - started
        tracker = _TopK(k)
        beta = self.beta

        def kth_best_guaranteed(eps: float, best: BestByShape) -> bool:
            kth_value = tracker.kth()
            return (kth_value is not None and
                    kth_value <= beta * eps + EPSILON)

        best_by_shape = self._drive(normalized_query, engine, schedule,
                                    stats, on_candidate,
                                    kth_best_guaranteed, abort=abort,
                                    scratch=scratch,
                                    on_improved=tracker.offer)
        return self._rank(best_by_shape, k), stats

    # ------------------------------------------------------------------
    def query_threshold(self, query: Shape, distance_threshold: float,
                        on_candidate: Optional[Callable[[ShapeEntry], None]]
                        = None,
                        abort: Optional[Callable[[], bool]] = None
                        ) -> Tuple[List[Match], MatchStats]:
        """All shapes whose measure is ``<= distance_threshold``.

        This is the ``shape_similar(Q)`` primitive of Section 5.2.
        Guarantee: a copy with discrete average distance ``<= t`` has at
        most a fraction ``t / eps`` of vertices outside the
        eps-envelope, so iterating until ``eps >= t / beta`` makes every
        qualifying copy a candidate.  The envelope is therefore grown to
        ``max(threshold / beta, paper threshold)``.
        """
        if distance_threshold < 0:
            raise ValueError("distance_threshold must be non-negative")
        if self.base.num_entries == 0:
            stats = MatchStats()
            stats.exhausted = True
            return [], stats
        with self._scratch() as scratch:
            return self._query_threshold_one(query, distance_threshold,
                                             on_candidate, abort, scratch)

    def query_threshold_batch(self, queries: Sequence[Shape],
                              distance_threshold: float,
                              abort: Optional[Callable[[], bool]] = None
                              ) -> List[Tuple[List[Match], MatchStats]]:
        """``[query_threshold(q, t) for q in queries]``, one scratch.

        The algebra engine's ``similar`` leaves arrive in groups (every
        distinct query shape of a composite plan); this amortizes the
        scratch checkout the same way :meth:`query_batch` does for the
        service tier's top-k misses.
        """
        if distance_threshold < 0:
            raise ValueError("distance_threshold must be non-negative")
        if self.base.num_entries == 0:
            results = []
            for _ in queries:
                stats = MatchStats()
                stats.exhausted = True
                results.append(([], stats))
            return results
        results = []
        with self._scratch() as scratch:
            for query in queries:
                results.append(self._query_threshold_one(
                    query, distance_threshold, None, abort, scratch))
                scratch.reset()
        return results

    def _query_threshold_one(self, query: Shape, distance_threshold: float,
                             on_candidate: Optional[Callable[[ShapeEntry],
                                                             None]],
                             abort: Optional[Callable[[], bool]],
                             scratch: _QueryScratch
                             ) -> Tuple[List[Match], MatchStats]:
        stats = MatchStats()
        started = perf_counter()
        normalized_query = self.normalize_query(query)
        engine = BoundaryDistance(normalized_query)
        base_schedule = self.make_schedule(normalized_query)
        stats.timings["normalize"] = perf_counter() - started
        needed = distance_threshold / self.beta
        schedule = EpsilonSchedule(
            initial=base_schedule.initial, growth=base_schedule.growth,
            maximum=max(base_schedule.maximum, needed,
                        base_schedule.initial))

        def envelope_wide_enough(eps: float, best: BestByShape) -> bool:
            return eps >= needed

        best_by_shape = self._drive(normalized_query, engine, schedule,
                                    stats, on_candidate,
                                    envelope_wide_enough, abort=abort,
                                    scratch=scratch)
        qualifying = {sid: bv for sid, bv in best_by_shape.items()
                      if bv[0] <= distance_threshold + EPSILON}
        return self._rank(qualifying, len(qualifying) or 1), stats

    # ------------------------------------------------------------------
    def _rank(self, best_by_shape: BestByShape, k: int) -> List[Match]:
        ranked = sorted(best_by_shape.items(), key=lambda kv: kv[1][0])[:k]
        return [Match(shape_id=sid,
                      image_id=self.base.image_of_shape(sid),
                      distance=value, entry_id=entry_id)
                for sid, (value, entry_id) in ranked]
