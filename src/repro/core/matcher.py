"""The incremental-fattening retrieval algorithm (paper Section 2.5).

Given a query shape Q the matcher:

1. normalizes Q about its diameter (the base already holds every shape
   normalized about its alpha-diameters, both endpoint orders, so one
   canonical query copy suffices);
2. grows a sequence of epsilon-envelopes around the normalized query;
3. per iteration, decomposes the envelope difference into O(m)
   triangles and asks the simplex range-search index for the base
   vertices inside them, re-checking each report against the exact
   distance predicate and a visited set so every vertex is processed
   exactly once;
4. bumps a counter per normalized copy; a copy with a fraction
   ``>= 1 - beta`` of its (indexed) vertices inside the current
   envelope becomes a *candidate* and gets its exact measure evaluated;
5. stops as soon as the k-th best evaluated measure is ``<= beta *
   eps_i`` — every copy that is not yet a candidate has more than a
   ``beta`` fraction of vertices at distance ``> eps_i``, hence a
   discrete average distance ``> beta * eps_i``, so no unseen copy can
   beat the current winners — or when the envelope exceeds the paper's
   termination threshold, in which case the caller should fall back to
   geometric hashing (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..geometry.envelope import band_cover_triangles
from ..geometry.nearest import BoundaryDistance
from ..geometry.polyline import Shape
from ..geometry.primitives import EPSILON
from ..geometry.transform import normalize_about_diameter
from .epsilon import EpsilonSchedule, schedule_for
from .measures import continuous_average_distance
from .shapebase import ShapeBase, ShapeEntry


@dataclass
class Match:
    """One retrieved shape, ranked by its average-distance measure."""

    shape_id: int
    image_id: Optional[int]
    distance: float
    entry_id: int
    approximate: bool = False     # True when produced by hashing fallback

    def __repr__(self) -> str:
        tag = " approx" if self.approximate else ""
        return (f"Match(shape={self.shape_id}, image={self.image_id}, "
                f"distance={self.distance:.6f}{tag})")


@dataclass
class MatchStats:
    """Work accounting for one query (drives the scaling benchmarks)."""

    iterations: int = 0
    epsilons: List[float] = field(default_factory=list)
    triangles_queried: int = 0
    vertices_reported: int = 0
    vertices_processed: int = 0
    candidates_evaluated: int = 0
    guaranteed: bool = False      # early-terminated with a guarantee
    exhausted: bool = False       # hit the termination envelope

    @property
    def total_reported(self) -> int:
        return self.vertices_reported


#: Per-shape best: shape id -> (measure value, entry id).
BestByShape = Dict[int, Tuple[float, int]]


class GeometricSimilarityMatcher:
    """Retrieval by incremental envelope fattening over a ShapeBase.

    Parameters
    ----------
    base:
        The populated :class:`ShapeBase`.
    beta:
        Candidate tolerance of step 3: a copy needs a fraction
        ``>= 1 - beta`` of its vertices inside the envelope.  Must be in
        ``(0, 1)`` for the early-termination guarantee to be active.
    growth:
        Geometric growth factor of the envelope widths.
    measure:
        ``"discrete"`` ranks candidates by the vertex-average distance
        (the form the termination bound is stated for); ``"continuous"``
        refines candidate values with the boundary-integrated measure;
        ``"symmetric"`` uses ``max`` of both discrete directions, which
        additionally requires the candidate to cover the query's
        boundary (the ``g_similar`` semantics of Section 5.1 — and the
        regime in which Figure 10's inverse V_S relationship holds).
        The candidate/termination machinery stays sound for all three:
        each refined value upper-bounds the discrete directed one, so a
        value passing the ``beta * eps`` bound under them also passes it
        under the discrete measure.
    cap_sectors:
        Fan resolution of the conservative envelope cover.
    slack:
        Multiplier on the paper's termination threshold (ablation knob).
    """

    def __init__(self, base: ShapeBase, beta: float = 0.25,
                 growth: float = 1.6, measure: str = "discrete",
                 cap_sectors: int = 8, slack: float = 1.0,
                 samples_per_edge: int = 8):
        if not 0.0 < beta < 1.0:
            raise ValueError("beta must be in (0, 1)")
        if measure not in ("discrete", "continuous", "symmetric"):
            raise ValueError("measure must be 'discrete', 'continuous' "
                             "or 'symmetric'")
        self.base = base
        self.beta = float(beta)
        self.growth = float(growth)
        self.measure = measure
        self.cap_sectors = int(cap_sectors)
        self.slack = float(slack)
        self.samples_per_edge = int(samples_per_edge)

    # ------------------------------------------------------------------
    def normalize_query(self, query: Shape) -> Shape:
        """Normalize the query about its diameter (Section 2.3)."""
        return normalize_about_diameter(query).shape

    def _entry_measure(self, entry: ShapeEntry, engine: BoundaryDistance,
                       normalized_query: Shape) -> float:
        vertices = self.base.entry_vertices(entry.entry_id)
        discrete = float(engine.distances(vertices).mean())
        if self.measure == "discrete":
            return discrete
        if self.measure == "symmetric":
            reverse = BoundaryDistance(entry.shape)
            other = float(reverse.distances(
                normalized_query.vertices).mean())
            return max(discrete, other)
        return continuous_average_distance(
            entry.shape, normalized_query, engine=engine,
            samples_per_edge=self.samples_per_edge)

    def make_schedule(self, normalized_query: Shape) -> EpsilonSchedule:
        return schedule_for(normalized_query, self.base.num_shapes,
                            self.base.total_vertices,
                            self.base.average_vertices_per_entry,
                            growth=self.growth, slack=self.slack)

    def calibrate_initial_epsilon(self, normalized_query: Shape,
                                  max_rounds: int = 32) -> float:
        """Step 1 of the paper: adjust eps_1 by simplex range *counting*.

        Starting from the density-heuristic width, the envelope is
        grown until the range-counting structure reports at least one
        vertex inside it (cover-triangle counts over-estimate slightly
        because the triangles overlap near joints, which only makes the
        calibration conservative).  Returns the calibrated width,
        capped at the termination threshold.
        """
        schedule = self.make_schedule(normalized_query)
        index = self.base.index
        eps = schedule.initial
        for _ in range(max_rounds):
            count = 0
            for triangle in band_cover_triangles(normalized_query, 0.0,
                                                 eps, self.cap_sectors):
                count += index.count_triangle(triangle[0], triangle[1],
                                              triangle[2])
                if count:
                    break
            if count or eps >= schedule.maximum:
                break
            eps = min(eps * self.growth, schedule.maximum)
        return eps

    # ------------------------------------------------------------------
    # The shared fattening driver (steps 2-5 of the paper's algorithm)
    # ------------------------------------------------------------------
    def _drive(self, normalized_query: Shape, engine: BoundaryDistance,
               schedule: EpsilonSchedule, stats: MatchStats,
               on_candidate: Optional[Callable[[ShapeEntry], None]],
               should_stop: Callable[[float, BestByShape], bool],
               abort: Optional[Callable[[], bool]] = None) -> BestByShape:
        """Grow envelopes until ``should_stop(eps, best)`` or exhaustion.

        Maintains the per-copy inside counters, promotes candidates and
        evaluates their exact measures; sets ``stats.guaranteed`` or
        ``stats.exhausted`` according to how the loop ended.

        ``abort`` is a cooperative cancellation hook (e.g. a deadline):
        it is polled once per envelope iteration, and a ``True`` return
        ends the loop immediately *without* the termination guarantee —
        ``stats.exhausted`` is set, exactly as if the epsilon budget had
        run out, so callers fall back to geometric hashing.
        """
        points = self.base.vertex_points
        owner = self.base.vertex_owner
        sizes = self.base.entry_sizes
        index = self.base.index
        # ceil((1 - beta) * size): the step-3 candidate threshold.
        thresholds = np.ceil((1.0 - self.beta) * sizes).astype(np.int64)
        np.maximum(thresholds, 1, out=thresholds)

        visited = np.zeros(len(points), dtype=bool)
        inside_counts = np.zeros(self.base.num_entries, dtype=np.int64)
        evaluated = np.zeros(self.base.num_entries, dtype=bool)
        best_by_shape: BestByShape = {}

        eps_prev = 0.0
        for eps in schedule.widths():
            if abort is not None and abort():
                stats.exhausted = True
                return best_by_shape
            stats.iterations += 1
            stats.epsilons.append(eps)
            triangles = band_cover_triangles(normalized_query, eps_prev,
                                             eps, self.cap_sectors)
            stats.triangles_queried += len(triangles)
            reported: List[np.ndarray] = []
            for triangle in triangles:
                hits = index.report_triangle(triangle[0], triangle[1],
                                             triangle[2])
                if len(hits):
                    reported.append(hits)
            if reported:
                ids = np.unique(np.concatenate(reported))
                stats.vertices_reported += int(ids.size)
                ids = ids[~visited[ids]]
            else:
                ids = np.zeros(0, dtype=np.int64)
            if len(ids):
                distances = engine.distances(points[ids])
                inside = ids[distances <= eps + EPSILON]
                visited[inside] = True
                stats.vertices_processed += len(inside)
                np.add.at(inside_counts, owner[inside], 1)
                touched = np.unique(owner[inside])
            else:
                touched = np.zeros(0, dtype=np.int64)

            fresh = touched[(inside_counts[touched] >= thresholds[touched])
                            & ~evaluated[touched]]
            for entry_id in fresh:
                entry = self.base.entry(int(entry_id))
                value = self._entry_measure(entry, engine, normalized_query)
                evaluated[entry_id] = True
                stats.candidates_evaluated += 1
                if on_candidate is not None:
                    on_candidate(entry)
                current = best_by_shape.get(entry.shape_id)
                if current is None or value < current[0]:
                    best_by_shape[entry.shape_id] = (value, entry.entry_id)

            if should_stop(eps, best_by_shape):
                stats.guaranteed = True
                return best_by_shape
            eps_prev = eps
        stats.exhausted = True
        return best_by_shape

    # ------------------------------------------------------------------
    def query(self, query: Shape, k: int = 1,
              on_candidate: Optional[Callable[[ShapeEntry], None]] = None,
              abort: Optional[Callable[[], bool]] = None
              ) -> Tuple[List[Match], MatchStats]:
        """Return up to ``k`` best matches and the work statistics.

        ``on_candidate`` fires, in evaluation order, for every entry
        whose exact measure is computed — the access trace the external
        storage experiments of Section 4 replay.  ``abort`` (polled per
        iteration) cancels the search cooperatively; see :meth:`_drive`.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        stats = MatchStats()
        if self.base.num_entries == 0:
            stats.exhausted = True
            return [], stats
        normalized_query = self.normalize_query(query)
        engine = BoundaryDistance(normalized_query)
        schedule = self.make_schedule(normalized_query)

        def kth_best_guaranteed(eps: float, best: BestByShape) -> bool:
            if len(best) < k:
                return False
            kth_value = sorted(v for v, _ in best.values())[k - 1]
            return kth_value <= self.beta * eps + EPSILON

        best_by_shape = self._drive(normalized_query, engine, schedule,
                                    stats, on_candidate,
                                    kth_best_guaranteed, abort=abort)
        return self._rank(best_by_shape, k), stats

    # ------------------------------------------------------------------
    def query_threshold(self, query: Shape, distance_threshold: float,
                        on_candidate: Optional[Callable[[ShapeEntry], None]]
                        = None,
                        abort: Optional[Callable[[], bool]] = None
                        ) -> Tuple[List[Match], MatchStats]:
        """All shapes whose measure is ``<= distance_threshold``.

        This is the ``shape_similar(Q)`` primitive of Section 5.2.
        Guarantee: a copy with discrete average distance ``<= t`` has at
        most a fraction ``t / eps`` of vertices outside the
        eps-envelope, so iterating until ``eps >= t / beta`` makes every
        qualifying copy a candidate.  The envelope is therefore grown to
        ``max(threshold / beta, paper threshold)``.
        """
        if distance_threshold < 0:
            raise ValueError("distance_threshold must be non-negative")
        stats = MatchStats()
        if self.base.num_entries == 0:
            stats.exhausted = True
            return [], stats
        normalized_query = self.normalize_query(query)
        engine = BoundaryDistance(normalized_query)
        base_schedule = self.make_schedule(normalized_query)
        needed = distance_threshold / self.beta
        schedule = EpsilonSchedule(
            initial=base_schedule.initial, growth=base_schedule.growth,
            maximum=max(base_schedule.maximum, needed,
                        base_schedule.initial))

        def envelope_wide_enough(eps: float, best: BestByShape) -> bool:
            return eps >= needed

        best_by_shape = self._drive(normalized_query, engine, schedule,
                                    stats, on_candidate,
                                    envelope_wide_enough, abort=abort)
        qualifying = {sid: bv for sid, bv in best_by_shape.items()
                      if bv[0] <= distance_threshold + EPSILON}
        return self._rank(qualifying, len(qualifying) or 1), stats

    # ------------------------------------------------------------------
    def _rank(self, best_by_shape: BestByShape, k: int) -> List[Match]:
        ranked = sorted(best_by_shape.items(), key=lambda kv: kv[1][0])[:k]
        return [Match(shape_id=sid,
                      image_id=self.base.image_of_shape(sid),
                      distance=value, entry_id=entry_id)
                for sid, (value, entry_id) in ranked]
