"""The shape base: normalized copies of every database shape (Section 2.4).

Each shape added to the base is normalized about all of its
alpha-diameters, twice per pair (both endpoint orders), and every
normalized copy becomes an *entry*.  The base maintains flat numpy
arrays over the vertices of all entries — the static point set the
simplex range-search index is built on — plus the bookkeeping the
matcher needs (per-entry vertex slices, owner lookup, per-shape entry
lists, per-image shape lists).
"""

from __future__ import annotations

import threading

from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

import numpy as np

from ..geometry.polyline import Shape
from ..geometry.transform import (NormalizedCopy, batch_normalized_copies,
                                  normalized_copies)
from ..rangesearch import IncrementalIndex, TriangleRangeIndex, make_index


def validate_shape(shape: Shape) -> None:
    """Reject shapes that would corrupt the index if ingested.

    Normalization divides by inter-vertex distances and the range
    index assumes finite coordinates, so a NaN/inf vertex or a shape
    with fewer than 3 distinct vertices (no triangle, no diameter
    pair worth normalizing about) must be refused at the door with a
    clear error rather than poisoning every later query.
    """
    vertices = np.asarray(shape.vertices, dtype=float)
    if vertices.ndim != 2 or vertices.shape[1] != 2:
        raise ValueError(
            f"shape vertices must be an (n, 2) array, "
            f"got shape {vertices.shape}")
    if not np.all(np.isfinite(vertices)):
        raise ValueError("shape contains NaN or infinite coordinates")
    if not _has_three_distinct(vertices):
        raise ValueError(
            "shape must have at least 3 distinct vertices")


def _has_three_distinct(vertices: np.ndarray) -> bool:
    """True when the rows contain at least three distinct points.

    Equivalent to ``len(np.unique(vertices, axis=0)) >= 3`` (exact
    comparison, no tolerance) but without the full sort — validation is
    on the bulk-ingest hot path.
    """
    first = vertices[0]
    not_first = (vertices[:, 0] != first[0]) | (vertices[:, 1] != first[1])
    second_pos = np.argmax(not_first)
    if not not_first[second_pos]:
        return False                       # all rows identical
    second = vertices[second_pos]
    not_second = (vertices[:, 0] != second[0]) | (vertices[:, 1] != second[1])
    return bool(np.any(not_first & not_second))


class ShapeEntry:
    """One normalized copy stored in the base."""

    __slots__ = ("entry_id", "shape_id", "image_id", "copy")

    def __init__(self, entry_id: int, shape_id: int,
                 image_id: Optional[int], copy: NormalizedCopy):
        self.entry_id = entry_id
        self.shape_id = shape_id
        self.image_id = image_id
        self.copy = copy

    @property
    def shape(self) -> Shape:
        """The normalized shape of this entry."""
        return self.copy.shape

    def __repr__(self) -> str:
        return (f"ShapeEntry(id={self.entry_id}, shape={self.shape_id}, "
                f"image={self.image_id}, pair={self.copy.pair})")


class ShapeBase:
    """Database of normalized shape copies.

    Parameters
    ----------
    alpha:
        The alpha-diameter tolerance of Section 2.4 (``0`` stores only
        the true diameter pair; larger values add copies and distortion
        tolerance at the cost of space — the paper's test base averages
        ~10 copies per shape).
    backend:
        Range-search backend name passed to
        :func:`repro.rangesearch.make_index`.
    """

    def __init__(self, alpha: float = 0.1, backend: str = "kdtree"):
        if not 0.0 <= alpha < 1.0:
            raise ValueError("alpha must be in [0, 1)")
        self.alpha = float(alpha)
        self.backend = backend
        #: When True (the default) ingest folds the incremental index
        #: tail inline once it passes the threshold.  A streaming
        #: service sets this False and folds from a background
        #: scheduler instead, keeping rebuilds off the write path.
        self.auto_fold = True
        self.entries: List[ShapeEntry] = []
        self.shapes: Dict[int, Shape] = {}
        self.shape_image: Dict[int, Optional[int]] = {}
        self._entries_by_shape: Dict[int, List[int]] = {}
        self._shapes_by_image: Dict[int, List[int]] = {}
        self._next_shape_id = 0
        self.version = 0
        # Serializes the cold lazy array build against appends.  Warm
        # readers never touch it (the publish-order contract in
        # ``_register_new_entries`` covers them); only a reader that
        # finds the arrays unbuilt, and every writer, take it — a
        # concurrent cold build would otherwise iterate ``entries``
        # mid-append and tear.
        self._build_lock = threading.Lock()
        self._index: Optional[TriangleRangeIndex] = None
        self._vertex_points: Optional[np.ndarray] = None
        self._vertex_owner: Optional[np.ndarray] = None
        self._entry_sizes: Optional[np.ndarray] = None
        self._entry_offsets: Optional[np.ndarray] = None
        # Cached per-entry hashing signatures: ``(num_curves, (E, 4)
        # int16 array)`` aligned with ``entries``.  Populated by the
        # hashing layer or a v3 snapshot; invalidated/patched alongside
        # the vertex arrays so it can never go stale.
        self._signature_cache: Optional[Tuple[int, np.ndarray]] = None
        # Cached per-entry ANN MinHash sketches: ``((num_hashes, grid,
        # seed), (E, num_hashes) int64 array)`` aligned with
        # ``entries``.  Populated by the ann layer or a v4 snapshot;
        # maintained under mutation exactly like the signature cache.
        self._sketch_cache: Optional[
            Tuple[Tuple[int, int, int], np.ndarray]] = None
        # How this base's arrays are backed: "memory" (built in
        # process), "eager" (snapshot read into memory), "mmap"
        # (zero-copy views over a file mapping) or "shm" (views over a
        # shared-memory segment).  ``_backing_buffer`` pins the
        # mapping/segment for the life of the base.
        self.snapshot_backing = "memory"
        self._backing_buffer = None

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add_shape(self, shape: Shape, image_id: Optional[int] = None,
                  shape_id: Optional[int] = None) -> int:
        """Add one original shape; returns its shape id.

        The shape is normalized about all its alpha-diameters (both
        orders) and each copy becomes an entry.  Invalidates the
        range-search index, which is rebuilt lazily.  Shapes with
        non-finite coordinates or fewer than 3 distinct vertices are
        rejected (:func:`validate_shape`).
        """
        validate_shape(shape)
        with self._build_lock:
            if shape_id is None:
                shape_id = self._next_shape_id
            if shape_id in self.shapes:
                raise ValueError(f"shape id {shape_id} already present")
            self._next_shape_id = max(self._next_shape_id, shape_id + 1)
            self.shapes[shape_id] = shape
            self.shape_image[shape_id] = image_id
            entry_ids: List[int] = []
            new_entries: List[ShapeEntry] = []
            for copy in normalized_copies(shape, self.alpha):
                entry_id = len(self.entries)
                entry = ShapeEntry(entry_id, shape_id, image_id, copy)
                self.entries.append(entry)
                entry_ids.append(entry_id)
                new_entries.append(entry)
            self._entries_by_shape[shape_id] = entry_ids
            if image_id is not None:
                self._shapes_by_image.setdefault(image_id,
                                                 []).append(shape_id)
            self._register_new_entries(new_entries)
            self.version += 1
        return shape_id

    def add_shapes(self, shapes: Sequence[Shape],
                   image_id: Optional[int] = None, *,
                   image_ids: Optional[Sequence[Optional[int]]] = None,
                   shape_ids: Optional[Sequence[int]] = None) -> List[int]:
        """Add several shapes in one vectorized pass; returns their ids.

        Validation, alpha-diameter computation and all normalized-copy
        coordinates run as stacked numpy passes over every shape at
        once (:func:`repro.geometry.batch_normalized_copies`), producing
        entries bit-for-bit identical to a loop of :meth:`add_shape`
        calls in the same order.

        ``image_id`` assigns every shape to one image (the legacy
        signature); ``image_ids`` gives one image per shape and wins
        over ``image_id``.  ``shape_ids`` pins explicit ids (same
        semantics as :meth:`add_shape`'s).  Unlike the scalar loop, the
        bulk path validates everything *before* mutating, so a rejected
        shape leaves the base untouched.
        """
        shapes = list(shapes)
        if not shapes:
            return []
        if image_ids is None:
            per_image: List[Optional[int]] = [image_id] * len(shapes)
        else:
            per_image = list(image_ids)
            if len(per_image) != len(shapes):
                raise ValueError("image_ids must match shapes in length")
        self._validate_batch(shapes)
        with self._build_lock:
            if shape_ids is None:
                ids = list(range(self._next_shape_id,
                                 self._next_shape_id + len(shapes)))
            else:
                ids = [int(s) for s in shape_ids]
                if len(ids) != len(shapes):
                    raise ValueError(
                        "shape_ids must match shapes in length")
            seen = set()
            for sid in ids:
                if sid in self.shapes or sid in seen:
                    raise ValueError(f"shape id {sid} already present")
                seen.add(sid)
            copies_per_shape = batch_normalized_copies(shapes, self.alpha)
            new_entries: List[ShapeEntry] = []
            for shape, sid, iid, copies in zip(shapes, ids, per_image,
                                               copies_per_shape):
                self._next_shape_id = max(self._next_shape_id, sid + 1)
                self.shapes[sid] = shape
                self.shape_image[sid] = iid
                entry_ids: List[int] = []
                for copy in copies:
                    entry_id = len(self.entries)
                    entry = ShapeEntry(entry_id, sid, iid, copy)
                    self.entries.append(entry)
                    entry_ids.append(entry_id)
                    new_entries.append(entry)
                self._entries_by_shape[sid] = entry_ids
                if iid is not None:
                    self._shapes_by_image.setdefault(iid, []).append(sid)
            self._register_new_entries(new_entries)
            self.version += 1
        return ids

    def _validate_batch(self, shapes: Sequence[Shape]) -> None:
        """Batched :func:`validate_shape` with identical error messages."""
        flat = np.concatenate([s.vertices for s in shapes], axis=0)
        if not np.all(np.isfinite(flat)):
            for shape in shapes:       # find the offender, raise exactly
                validate_shape(shape)
        for shape in shapes:
            if not _has_three_distinct(shape.vertices):
                raise ValueError(
                    "shape must have at least 3 distinct vertices")

    def _register_new_entries(self, new_entries: List[ShapeEntry],
                              sig_rows: Optional[np.ndarray] = None,
                              sketch_rows: Optional[np.ndarray] = None
                              ) -> None:
        """Absorb freshly appended entries into the derived structures.

        With cold caches this just leaves everything to the next lazy
        build.  With live flat arrays the new entries' non-anchor
        vertices are appended in place and the range index is extended
        incrementally (:meth:`IncrementalIndex.extended`) instead of
        being thrown away — the single-shape ingest fast path.  Warm
        signature/sketch caches are likewise patched by appending the
        new entries' rows (computed here, or passed in by a snapshot
        delta that already carries them) rather than invalidated.

        Publication order matters for lock-free readers: every array is
        replaced (never written in place) with its old contents as a
        prefix, and the range index — whose point ids bound every other
        access — is published *last*.  A reader that captures the index
        first therefore sees arrays at least as new as the ids it will
        probe (see ``reader_view``).
        """
        if not new_entries:
            return
        self._patch_entry_caches(new_entries, sig_rows, sketch_rows)
        if self._vertex_points is None or self._index is None:
            self._index = None
            self._vertex_points = None
            return
        counts = np.array([e.shape.num_vertices for e in new_entries],
                          dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        flat = np.concatenate([e.shape.vertices for e in new_entries],
                              axis=0)
        pairs = np.array([e.copy.pair for e in new_entries], dtype=np.int64)
        mask = np.ones(len(flat), dtype=bool)
        mask[offsets[:-1] + pairs[:, 0]] = False
        mask[offsets[:-1] + pairs[:, 1]] = False
        new_points = flat[mask]
        new_sizes = counts - 2
        first_new = len(self.entries) - len(new_entries)
        self._vertex_points = np.concatenate(
            [self._vertex_points, new_points], axis=0)
        self._entry_sizes = np.concatenate([self._entry_sizes, new_sizes])
        offsets_all = np.zeros(len(self._entry_sizes) + 1, dtype=np.int64)
        np.cumsum(self._entry_sizes, out=offsets_all[1:])
        self._entry_offsets = offsets_all
        self._vertex_owner = np.concatenate(
            [self._vertex_owner,
             np.repeat(np.arange(first_new, len(self.entries)), new_sizes)])
        self._index = IncrementalIndex.extended(self._index, new_points,
                                                self.backend,
                                                fold=self.auto_fold)

    def _patch_entry_caches(self, new_entries: List[ShapeEntry],
                            sig_rows: Optional[np.ndarray],
                            sketch_rows: Optional[np.ndarray]) -> None:
        """Append the new entries' rows to any warm signature/sketch
        cache (identical to what a cold rebuild would compute for
        them, so cache consumers stay bit-for-bit)."""
        if self._signature_cache is not None:
            num_curves, rows = self._signature_cache
            if sig_rows is None:
                from ..hashing.characteristic import characteristic_quadruple
                from ..hashing.curves import HashCurveFamily
                family = HashCurveFamily(num_curves)
                sig_rows = np.array(
                    [characteristic_quadruple(e.shape, family)
                     for e in new_entries], dtype=np.int16)
            sig_rows = np.asarray(sig_rows, dtype=np.int16).reshape(-1, 4)
            self._signature_cache = (
                num_curves, np.concatenate([rows, sig_rows], axis=0))
        if self._sketch_cache is not None:
            key, rows = self._sketch_cache
            if sketch_rows is None:
                from ..ann.sketch import SketchConfig, sketch_vertex_sets
                sketch_rows = sketch_vertex_sets(
                    [e.shape.vertices for e in new_entries],
                    [e.shape.closed for e in new_entries],
                    SketchConfig(*key))
            sketch_rows = np.asarray(sketch_rows,
                                     dtype=np.int64).reshape(-1, key[0])
            self._sketch_cache = (
                key, np.concatenate([rows, sketch_rows], axis=0))

    def remove_shape(self, shape_id: int) -> None:
        """Remove a shape and all its normalized copies.

        Entry ids are compacted (entries are renumbered), so any
        externally held entry ids become stale — rebuild dependent
        structures (hash tables, external stores) after removals.  The
        range index is rebuilt lazily on next use.  This is the
        "dynamic environments" operation the paper's related-work
        section contrasts against [5, 7].
        """
        if shape_id not in self.shapes:
            raise KeyError(f"shape id {shape_id} not in the base")
        del self.shapes[shape_id]
        image_id = self.shape_image.pop(shape_id)
        removed_ids = self._entries_by_shape.pop(shape_id)
        if image_id is not None:
            remaining = [s for s in self._shapes_by_image[image_id]
                         if s != shape_id]
            if remaining:
                self._shapes_by_image[image_id] = remaining
            else:
                del self._shapes_by_image[image_id]
        entry_keep = np.ones(len(self.entries), dtype=bool)
        entry_keep[removed_ids] = False
        new_ids = np.cumsum(entry_keep) - 1      # old entry id -> new id
        # Renumbered survivors become *new* ShapeEntry objects (the
        # prefix before the first removed id keeps its identity): a
        # copy-on-write clone mutated through this path never touches
        # entries still referenced by the donor's readers.
        renumbered: List[ShapeEntry] = []
        for entry in self.entries:
            if not entry_keep[entry.entry_id]:
                continue
            new_id = int(new_ids[entry.entry_id])
            if new_id == entry.entry_id:
                renumbered.append(entry)
            else:
                renumbered.append(ShapeEntry(new_id, entry.shape_id,
                                             entry.image_id, entry.copy))
        self.entries = renumbered
        for sid, ids in self._entries_by_shape.items():
            self._entries_by_shape[sid] = [int(new_ids[i]) for i in ids]
        if self._vertex_points is not None and self._index is not None:
            # Patch the flat arrays and the index in place of a rebuild:
            # drop the removed entries' vertex rows, renumber owners
            # densely and shrink the kd-tree structurally.
            point_keep = np.repeat(entry_keep, self._entry_sizes)
            self._index = self._index.removed(point_keep)
            self._vertex_points = self._index.points
            self._entry_sizes = self._entry_sizes[entry_keep]
            offsets = np.zeros(len(self._entry_sizes) + 1, dtype=np.int64)
            np.cumsum(self._entry_sizes, out=offsets[1:])
            self._entry_offsets = offsets
            self._vertex_owner = np.repeat(
                np.arange(len(self.entries)), self._entry_sizes)
        if self._signature_cache is not None:
            num_curves, rows = self._signature_cache
            self._signature_cache = (num_curves, rows[entry_keep])
        if self._sketch_cache is not None:
            sketch_key, rows = self._sketch_cache
            self._sketch_cache = (sketch_key, rows[entry_keep])
        self.version += 1

    # ------------------------------------------------------------------
    # Copy-on-write support (streaming ingest)
    # ------------------------------------------------------------------
    def clone_cow(self) -> "ShapeBase":
        """A writable structurally-shared copy of this base.

        Top-level containers (entry list, shape/image dicts and their
        id lists) are copied; the numpy arrays, the range index, the
        ``Shape``/``NormalizedCopy`` objects and the caches are shared.
        Every mutation path replaces arrays rather than writing them in
        place, so mutating the clone never perturbs the donor — the
        shard layer uses this to apply a removal as a new epoch while
        in-flight readers finish against the old one.
        """
        clone = ShapeBase.__new__(ShapeBase)
        clone.alpha = self.alpha
        clone.backend = self.backend
        clone.auto_fold = self.auto_fold
        clone.entries = list(self.entries)
        clone.shapes = dict(self.shapes)
        clone.shape_image = dict(self.shape_image)
        clone._entries_by_shape = {sid: list(ids) for sid, ids
                                   in self._entries_by_shape.items()}
        clone._shapes_by_image = {iid: list(ids) for iid, ids
                                  in self._shapes_by_image.items()}
        clone._next_shape_id = self._next_shape_id
        clone.version = self.version
        clone._build_lock = threading.Lock()
        clone._index = self._index
        clone._vertex_points = self._vertex_points
        clone._vertex_owner = self._vertex_owner
        clone._entry_sizes = self._entry_sizes
        clone._entry_offsets = self._entry_offsets
        clone._signature_cache = self._signature_cache
        clone._sketch_cache = self._sketch_cache
        clone.snapshot_backing = self.snapshot_backing
        clone._backing_buffer = self._backing_buffer
        return clone

    def reader_view(self) -> Tuple[TriangleRangeIndex, np.ndarray,
                                   np.ndarray, np.ndarray, np.ndarray]:
        """A self-consistent ``(index, points, owner, sizes, offsets)``
        capture for a lock-free reader under concurrent appends.

        Appends publish the replaced arrays *before* the extended index
        (see ``_register_new_entries``), and every replacement keeps
        the old contents as a prefix.  Capturing the index first
        therefore guarantees each id it can report is in range for the
        arrays captured after it, whichever interleaving the writer is
        at — the core of the copy-on-write epoch contract.
        """
        self._ensure_arrays()
        index = self._index
        return (index, self._vertex_points, self._vertex_owner,
                self._entry_sizes, self._entry_offsets)

    @property
    def index_delta_size(self) -> int:
        """Unfolded tail points in the incremental index (0 if static)."""
        index = self._index
        return index.tail_size if isinstance(index, IncrementalIndex) else 0

    # ------------------------------------------------------------------
    # Statistics (the paper's p, n, ...)
    # ------------------------------------------------------------------
    @property
    def num_shapes(self) -> int:
        """``p``: the number of distinct database shapes."""
        return len(self.shapes)

    @property
    def num_entries(self) -> int:
        """Number of normalized copies stored."""
        return len(self.entries)

    @property
    def num_images(self) -> int:
        return len(self._shapes_by_image)

    @property
    def total_vertices(self) -> int:
        """``n``: total *indexed* (non-anchor) vertices over all copies.

        Every copy additionally holds its two anchor vertices at
        (0, 0)/(1, 0); those are excluded from the index (see
        ``_ensure_arrays``) and from this count, which is the ``n`` the
        density formulas use.
        """
        self._ensure_arrays()
        return len(self._vertex_points)

    @property
    def average_vertices_per_entry(self) -> float:
        if not self.entries:
            return 0.0
        return self.total_vertices / self.num_entries

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def entry(self, entry_id: int) -> ShapeEntry:
        return self.entries[entry_id]

    def entries_of_shape(self, shape_id: int) -> List[int]:
        return list(self._entries_by_shape.get(shape_id, []))

    def shapes_of_image(self, image_id: int) -> List[int]:
        return list(self._shapes_by_image.get(image_id, []))

    def image_of_shape(self, shape_id: int) -> Optional[int]:
        """``S.image`` in the paper's notation (Section 5)."""
        return self.shape_image[shape_id]

    def image_ids(self) -> List[int]:
        return sorted(self._shapes_by_image)

    def shape_ids(self) -> List[int]:
        return sorted(self.shapes)

    def __iter__(self) -> Iterator[ShapeEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    # Shard-friendly iteration and splitting (service layer)
    # ------------------------------------------------------------------
    def iter_shapes(self) -> Iterator[Tuple[int, Shape, Optional[int]]]:
        """Yield ``(shape_id, original shape, image_id)`` triples.

        Iterates the *originals* (not the normalized copies) in shape-id
        order — the unit a partitioner distributes across shards.
        """
        for shape_id in sorted(self.shapes):
            yield shape_id, self.shapes[shape_id], self.shape_image[shape_id]

    def subset(self, shape_ids: Sequence[int]) -> "ShapeBase":
        """A new base holding only ``shape_ids`` (ids preserved).

        The already-normalized entries are *carried over* (the
        immutable ``NormalizedCopy`` objects are shared, entry ids are
        renumbered locally), so taking a subset costs O(entries
        copied) instead of re-running normalization — structurally the
        result is identical to a base built fresh from those originals
        in the same order.  Cached hashing signatures come along too.
        """
        out = ShapeBase(alpha=self.alpha, backend=self.backend)
        old_entry_ids: List[int] = []
        for shape_id in shape_ids:
            if shape_id not in self.shapes:
                raise KeyError(f"shape id {shape_id} not in the base")
            image_id = self.shape_image[shape_id]
            out._next_shape_id = max(out._next_shape_id, shape_id + 1)
            out.shapes[shape_id] = self.shapes[shape_id]
            out.shape_image[shape_id] = image_id
            entry_ids: List[int] = []
            for old_id in self._entries_by_shape[shape_id]:
                entry = self.entries[old_id]
                new_id = len(out.entries)
                out.entries.append(ShapeEntry(new_id, shape_id, image_id,
                                              entry.copy))
                entry_ids.append(new_id)
                old_entry_ids.append(old_id)
            out._entries_by_shape[shape_id] = entry_ids
            if image_id is not None:
                out._shapes_by_image.setdefault(image_id, []) \
                    .append(shape_id)
            out.version += 1
        if self._signature_cache is not None and out.entries:
            num_curves, rows = self._signature_cache
            out._signature_cache = (num_curves,
                                    rows[np.array(old_entry_ids)])
        if self._sketch_cache is not None and out.entries:
            sketch_key, rows = self._sketch_cache
            out._sketch_cache = (sketch_key,
                                 rows[np.array(old_entry_ids)])
        return out

    def split(self, num_parts: int,
              partitioner: Optional[Callable[[int], int]] = None
              ) -> List["ShapeBase"]:
        """Partition the base into ``num_parts`` disjoint sub-bases.

        ``partitioner`` maps a shape id to its part index (values are
        taken modulo ``num_parts``); the default is the deterministic
        multiplicative hash of :func:`repro.service.shards.shard_for`,
        so a base split here agrees with the service layer's routing.
        Every shape lands in exactly one part, ids preserved.
        """
        if num_parts < 1:
            raise ValueError("num_parts must be at least 1")
        if partitioner is None:
            from ..service.shards import shard_for
            partitioner = lambda sid: shard_for(sid, num_parts)
        assignments: List[List[int]] = [[] for _ in range(num_parts)]
        for shape_id in sorted(self.shapes):
            assignments[partitioner(shape_id) % num_parts].append(shape_id)
        return [self.subset(ids) for ids in assignments]

    # ------------------------------------------------------------------
    # Flattened vertex arrays and the range index
    # ------------------------------------------------------------------
    def _ensure_arrays(self) -> None:
        """Build the flat vertex arrays and the range-search index.

        The two *anchor* vertices of every copy sit at exactly (0, 0)
        and (1, 0) by construction, so any query envelope of any width
        contains all of them — they carry zero discriminative
        information and, left in the index, make the per-iteration
        output K grow linearly with the base size (breaking the paper's
        uniform-density analysis).  They are therefore excluded from
        the indexed point set and from the candidate-counter sizes;
        exact measures still use the full vertex set via
        :meth:`entry_vertices`.
        """
        if self._vertex_points is not None and self._index is not None:
            return
        # Cold build: serialize with writers — a concurrent append
        # would grow ``entries`` between the passes below and tear the
        # derived arrays.  Warm readers never reach this branch.
        with self._build_lock:
            if self._vertex_points is None:
                if self.entries:
                    counts = np.array(
                        [e.shape.num_vertices for e in self.entries],
                        dtype=np.int64)
                    shape_offsets = np.concatenate(([0],
                                                    np.cumsum(counts)))
                    flat = np.concatenate(
                        [e.shape.vertices for e in self.entries], axis=0)
                    pairs = np.array([e.copy.pair for e in self.entries],
                                     dtype=np.int64)
                    if np.any(pairs < 0) or \
                            np.any(pairs >= counts[:, None]):
                        raise IndexError("entry anchor pair out of range")
                    mask = np.ones(len(flat), dtype=bool)
                    mask[shape_offsets[:-1] + pairs[:, 0]] = False
                    mask[shape_offsets[:-1] + pairs[:, 1]] = False
                    points = flat[mask]
                    sizes = counts - 2
                    owner = np.repeat(np.arange(len(self.entries)), sizes)
                else:
                    points = np.zeros((0, 2))
                    sizes = np.zeros(0, dtype=np.int64)
                    owner = np.zeros(0, dtype=np.int64)
                offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
                np.cumsum(sizes, out=offsets[1:])
                self._entry_sizes = sizes
                self._entry_offsets = offsets
                self._vertex_owner = owner
                # Points last: ``_register_new_entries`` keys its
                # warm-or-lazy decision off this field.
                self._vertex_points = points
            if self._index is None:
                self._index = make_index(self._vertex_points, self.backend)

    @property
    def vertex_points(self) -> np.ndarray:
        """``(n, 2)`` array of all entry vertices."""
        self._ensure_arrays()
        return self._vertex_points

    @property
    def vertex_owner(self) -> np.ndarray:
        """For each vertex row, the owning entry id."""
        self._ensure_arrays()
        return self._vertex_owner

    @property
    def entry_sizes(self) -> np.ndarray:
        """Indexed (non-anchor) vertex count of each entry."""
        self._ensure_arrays()
        return self._entry_sizes

    def entry_vertices(self, entry_id: int) -> np.ndarray:
        """The *full* vertex set of one entry (anchors included).

        Exact measure evaluation uses all vertices; only the
        range-search index drops the anchors.
        """
        return self.entries[entry_id].shape.vertices

    def entry_vertices_batch(self, entry_ids) -> Tuple[np.ndarray,
                                                       np.ndarray]:
        """Concatenated full vertex sets of several entries.

        Returns ``(stacked, offsets)``: ``stacked`` is the row-wise
        concatenation of :meth:`entry_vertices` over ``entry_ids`` and
        ``offsets[i]:offsets[i+1]`` delimits entry ``i``'s rows — the
        layout the matcher's batched exact-measure evaluation consumes
        (one distance-engine call for the whole candidate set).
        """
        arrays = [self.entries[int(e)].shape.vertices for e in entry_ids]
        offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
        if not arrays:
            return np.zeros((0, 2)), offsets
        np.cumsum([len(a) for a in arrays], out=offsets[1:])
        return np.vstack(arrays), offsets

    def entry_indexed_vertices(self, entry_id: int) -> np.ndarray:
        """The indexed (non-anchor) vertex slice of one entry."""
        self._ensure_arrays()
        lo = self._entry_offsets[entry_id]
        hi = self._entry_offsets[entry_id + 1]
        return self._vertex_points[lo:hi]

    @property
    def index(self) -> TriangleRangeIndex:
        """The simplex range-search index over all entry vertices."""
        self._ensure_arrays()
        return self._index

    # ------------------------------------------------------------------
    # Hashing-signature cache (filled by the hashing layer / snapshots)
    # ------------------------------------------------------------------
    def cached_signatures(self, num_curves: int) -> Optional[np.ndarray]:
        """Per-entry characteristic quadruples, if cached for this family.

        Returns an ``(E, 4)`` int array aligned with ``entries`` or
        ``None`` when nothing is cached for a ``num_curves``-curve hash
        family.  The cache is invalidated on ingest and compacted on
        removal, so a non-``None`` answer is always current.
        """
        if self._signature_cache is None:
            return None
        cached_curves, rows = self._signature_cache
        if cached_curves != num_curves or len(rows) != len(self.entries):
            return None
        return rows

    def set_signature_cache(self, num_curves: int,
                            signatures: Sequence[Sequence[int]]) -> None:
        """Remember per-entry signatures for a ``num_curves`` family."""
        rows = np.asarray(signatures, dtype=np.int16)
        if rows.shape != (len(self.entries), 4):
            raise ValueError("signatures must be one quadruple per entry")
        self._signature_cache = (int(num_curves), rows)

    # ------------------------------------------------------------------
    # ANN-sketch cache (filled by the ann layer / v4 snapshots)
    # ------------------------------------------------------------------
    def cached_sketches(self, key: Tuple[int, int, int]
                        ) -> Optional[np.ndarray]:
        """Per-entry MinHash sketches, if cached for this family.

        ``key`` is ``SketchConfig.key`` — ``(num_hashes, grid,
        seed)``.  Returns an ``(E, num_hashes)`` int64 array aligned
        with ``entries`` or ``None`` when nothing is cached for that
        family.  Maintained like the signature cache: invalidated on
        ingest, compacted on removal, carried by :meth:`subset`.
        """
        if self._sketch_cache is None:
            return None
        cached_key, rows = self._sketch_cache
        if cached_key != tuple(key) or len(rows) != len(self.entries):
            return None
        return rows

    def set_sketch_cache(self, key: Tuple[int, int, int],
                         sketches: np.ndarray) -> None:
        """Remember per-entry ANN sketches for one sketch family."""
        rows = np.asarray(sketches, dtype=np.int64)
        if rows.shape != (len(self.entries), int(key[0])):
            raise ValueError("sketches must be one row per entry")
        self._sketch_cache = (tuple(int(k) for k in key), rows)

    def __repr__(self) -> str:
        return (f"ShapeBase(shapes={self.num_shapes}, "
                f"entries={self.num_entries}, alpha={self.alpha}, "
                f"backend={self.backend!r})")
