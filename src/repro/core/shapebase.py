"""The shape base: normalized copies of every database shape (Section 2.4).

Each shape added to the base is normalized about all of its
alpha-diameters, twice per pair (both endpoint orders), and every
normalized copy becomes an *entry*.  The base maintains flat numpy
arrays over the vertices of all entries — the static point set the
simplex range-search index is built on — plus the bookkeeping the
matcher needs (per-entry vertex slices, owner lookup, per-shape entry
lists, per-image shape lists).
"""

from __future__ import annotations

from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

import numpy as np

from ..geometry.polyline import Shape
from ..geometry.transform import NormalizedCopy, normalized_copies
from ..rangesearch import TriangleRangeIndex, make_index


def validate_shape(shape: Shape) -> None:
    """Reject shapes that would corrupt the index if ingested.

    Normalization divides by inter-vertex distances and the range
    index assumes finite coordinates, so a NaN/inf vertex or a shape
    with fewer than 3 distinct vertices (no triangle, no diameter
    pair worth normalizing about) must be refused at the door with a
    clear error rather than poisoning every later query.
    """
    vertices = np.asarray(shape.vertices, dtype=float)
    if vertices.ndim != 2 or vertices.shape[1] != 2:
        raise ValueError(
            f"shape vertices must be an (n, 2) array, "
            f"got shape {vertices.shape}")
    if not np.all(np.isfinite(vertices)):
        raise ValueError("shape contains NaN or infinite coordinates")
    if len(np.unique(vertices, axis=0)) < 3:
        raise ValueError(
            "shape must have at least 3 distinct vertices")


class ShapeEntry:
    """One normalized copy stored in the base."""

    __slots__ = ("entry_id", "shape_id", "image_id", "copy")

    def __init__(self, entry_id: int, shape_id: int,
                 image_id: Optional[int], copy: NormalizedCopy):
        self.entry_id = entry_id
        self.shape_id = shape_id
        self.image_id = image_id
        self.copy = copy

    @property
    def shape(self) -> Shape:
        """The normalized shape of this entry."""
        return self.copy.shape

    def __repr__(self) -> str:
        return (f"ShapeEntry(id={self.entry_id}, shape={self.shape_id}, "
                f"image={self.image_id}, pair={self.copy.pair})")


class ShapeBase:
    """Database of normalized shape copies.

    Parameters
    ----------
    alpha:
        The alpha-diameter tolerance of Section 2.4 (``0`` stores only
        the true diameter pair; larger values add copies and distortion
        tolerance at the cost of space — the paper's test base averages
        ~10 copies per shape).
    backend:
        Range-search backend name passed to
        :func:`repro.rangesearch.make_index`.
    """

    def __init__(self, alpha: float = 0.1, backend: str = "kdtree"):
        if not 0.0 <= alpha < 1.0:
            raise ValueError("alpha must be in [0, 1)")
        self.alpha = float(alpha)
        self.backend = backend
        self.entries: List[ShapeEntry] = []
        self.shapes: Dict[int, Shape] = {}
        self.shape_image: Dict[int, Optional[int]] = {}
        self._entries_by_shape: Dict[int, List[int]] = {}
        self._shapes_by_image: Dict[int, List[int]] = {}
        self._next_shape_id = 0
        self.version = 0
        self._index: Optional[TriangleRangeIndex] = None
        self._vertex_points: Optional[np.ndarray] = None
        self._vertex_owner: Optional[np.ndarray] = None
        self._entry_sizes: Optional[np.ndarray] = None
        self._entry_offsets: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add_shape(self, shape: Shape, image_id: Optional[int] = None,
                  shape_id: Optional[int] = None) -> int:
        """Add one original shape; returns its shape id.

        The shape is normalized about all its alpha-diameters (both
        orders) and each copy becomes an entry.  Invalidates the
        range-search index, which is rebuilt lazily.  Shapes with
        non-finite coordinates or fewer than 3 distinct vertices are
        rejected (:func:`validate_shape`).
        """
        validate_shape(shape)
        if shape_id is None:
            shape_id = self._next_shape_id
        if shape_id in self.shapes:
            raise ValueError(f"shape id {shape_id} already present")
        self._next_shape_id = max(self._next_shape_id, shape_id + 1)
        self.shapes[shape_id] = shape
        self.shape_image[shape_id] = image_id
        entry_ids: List[int] = []
        for copy in normalized_copies(shape, self.alpha):
            entry_id = len(self.entries)
            self.entries.append(ShapeEntry(entry_id, shape_id, image_id, copy))
            entry_ids.append(entry_id)
        self._entries_by_shape[shape_id] = entry_ids
        if image_id is not None:
            self._shapes_by_image.setdefault(image_id, []).append(shape_id)
        self._index = None
        self._vertex_points = None
        self.version += 1
        return shape_id

    def add_shapes(self, shapes: Sequence[Shape],
                   image_id: Optional[int] = None) -> List[int]:
        """Add several shapes belonging to the same image."""
        return [self.add_shape(s, image_id=image_id) for s in shapes]

    def remove_shape(self, shape_id: int) -> None:
        """Remove a shape and all its normalized copies.

        Entry ids are compacted (entries are renumbered), so any
        externally held entry ids become stale — rebuild dependent
        structures (hash tables, external stores) after removals.  The
        range index is rebuilt lazily on next use.  This is the
        "dynamic environments" operation the paper's related-work
        section contrasts against [5, 7].
        """
        if shape_id not in self.shapes:
            raise KeyError(f"shape id {shape_id} not in the base")
        del self.shapes[shape_id]
        image_id = self.shape_image.pop(shape_id)
        del self._entries_by_shape[shape_id]
        if image_id is not None:
            remaining = [s for s in self._shapes_by_image[image_id]
                         if s != shape_id]
            if remaining:
                self._shapes_by_image[image_id] = remaining
            else:
                del self._shapes_by_image[image_id]
        survivors = [e for e in self.entries if e.shape_id != shape_id]
        self.entries = []
        self._entries_by_shape = {sid: [] for sid in self.shapes}
        for entry in survivors:
            entry.entry_id = len(self.entries)
            self.entries.append(entry)
            self._entries_by_shape[entry.shape_id].append(entry.entry_id)
        self._index = None
        self._vertex_points = None
        self.version += 1

    # ------------------------------------------------------------------
    # Statistics (the paper's p, n, ...)
    # ------------------------------------------------------------------
    @property
    def num_shapes(self) -> int:
        """``p``: the number of distinct database shapes."""
        return len(self.shapes)

    @property
    def num_entries(self) -> int:
        """Number of normalized copies stored."""
        return len(self.entries)

    @property
    def num_images(self) -> int:
        return len(self._shapes_by_image)

    @property
    def total_vertices(self) -> int:
        """``n``: total *indexed* (non-anchor) vertices over all copies.

        Every copy additionally holds its two anchor vertices at
        (0, 0)/(1, 0); those are excluded from the index (see
        ``_ensure_arrays``) and from this count, which is the ``n`` the
        density formulas use.
        """
        self._ensure_arrays()
        return len(self._vertex_points)

    @property
    def average_vertices_per_entry(self) -> float:
        if not self.entries:
            return 0.0
        return self.total_vertices / self.num_entries

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def entry(self, entry_id: int) -> ShapeEntry:
        return self.entries[entry_id]

    def entries_of_shape(self, shape_id: int) -> List[int]:
        return list(self._entries_by_shape.get(shape_id, []))

    def shapes_of_image(self, image_id: int) -> List[int]:
        return list(self._shapes_by_image.get(image_id, []))

    def image_of_shape(self, shape_id: int) -> Optional[int]:
        """``S.image`` in the paper's notation (Section 5)."""
        return self.shape_image[shape_id]

    def image_ids(self) -> List[int]:
        return sorted(self._shapes_by_image)

    def shape_ids(self) -> List[int]:
        return sorted(self.shapes)

    def __iter__(self) -> Iterator[ShapeEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    # Shard-friendly iteration and splitting (service layer)
    # ------------------------------------------------------------------
    def iter_shapes(self) -> Iterator[Tuple[int, Shape, Optional[int]]]:
        """Yield ``(shape_id, original shape, image_id)`` triples.

        Iterates the *originals* (not the normalized copies) in shape-id
        order — the unit a partitioner distributes across shards.
        """
        for shape_id in sorted(self.shapes):
            yield shape_id, self.shapes[shape_id], self.shape_image[shape_id]

    def subset(self, shape_ids: Sequence[int]) -> "ShapeBase":
        """A new base holding only ``shape_ids`` (ids preserved).

        The shapes are re-normalized on insertion, so the subset is
        structurally identical to a base built fresh from those
        originals; entry ids are local to the subset.
        """
        out = ShapeBase(alpha=self.alpha, backend=self.backend)
        for shape_id in shape_ids:
            if shape_id not in self.shapes:
                raise KeyError(f"shape id {shape_id} not in the base")
            out.add_shape(self.shapes[shape_id],
                          image_id=self.shape_image[shape_id],
                          shape_id=shape_id)
        return out

    def split(self, num_parts: int,
              partitioner: Optional[Callable[[int], int]] = None
              ) -> List["ShapeBase"]:
        """Partition the base into ``num_parts`` disjoint sub-bases.

        ``partitioner`` maps a shape id to its part index (values are
        taken modulo ``num_parts``); the default is the deterministic
        multiplicative hash of :func:`repro.service.shards.shard_for`,
        so a base split here agrees with the service layer's routing.
        Every shape lands in exactly one part, ids preserved.
        """
        if num_parts < 1:
            raise ValueError("num_parts must be at least 1")
        if partitioner is None:
            from ..service.shards import shard_for
            partitioner = lambda sid: shard_for(sid, num_parts)
        assignments: List[List[int]] = [[] for _ in range(num_parts)]
        for shape_id in sorted(self.shapes):
            assignments[partitioner(shape_id) % num_parts].append(shape_id)
        return [self.subset(ids) for ids in assignments]

    # ------------------------------------------------------------------
    # Flattened vertex arrays and the range index
    # ------------------------------------------------------------------
    def _ensure_arrays(self) -> None:
        """Build the flat vertex arrays and the range-search index.

        The two *anchor* vertices of every copy sit at exactly (0, 0)
        and (1, 0) by construction, so any query envelope of any width
        contains all of them — they carry zero discriminative
        information and, left in the index, make the per-iteration
        output K grow linearly with the base size (breaking the paper's
        uniform-density analysis).  They are therefore excluded from
        the indexed point set and from the candidate-counter sizes;
        exact measures still use the full vertex set via
        :meth:`entry_vertices`.
        """
        if self._vertex_points is not None and self._index is not None:
            return
        points_list = []
        sizes = np.zeros(len(self.entries), dtype=np.int64)
        for position, entry in enumerate(self.entries):
            vertices = entry.shape.vertices
            i, j = entry.copy.pair
            mask = np.ones(len(vertices), dtype=bool)
            mask[i] = mask[j] = False
            non_anchor = vertices[mask]
            sizes[position] = len(non_anchor)
            points_list.append(non_anchor)
        offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        if self.entries:
            points = np.vstack(points_list)
            owner = np.repeat(np.arange(len(self.entries)), sizes)
        else:
            points = np.zeros((0, 2))
            owner = np.zeros(0, dtype=np.int64)
        self._entry_sizes = sizes
        self._entry_offsets = offsets
        self._vertex_points = points
        self._vertex_owner = owner
        self._index = make_index(points, self.backend)

    @property
    def vertex_points(self) -> np.ndarray:
        """``(n, 2)`` array of all entry vertices."""
        self._ensure_arrays()
        return self._vertex_points

    @property
    def vertex_owner(self) -> np.ndarray:
        """For each vertex row, the owning entry id."""
        self._ensure_arrays()
        return self._vertex_owner

    @property
    def entry_sizes(self) -> np.ndarray:
        """Indexed (non-anchor) vertex count of each entry."""
        self._ensure_arrays()
        return self._entry_sizes

    def entry_vertices(self, entry_id: int) -> np.ndarray:
        """The *full* vertex set of one entry (anchors included).

        Exact measure evaluation uses all vertices; only the
        range-search index drops the anchors.
        """
        return self.entries[entry_id].shape.vertices

    def entry_vertices_batch(self, entry_ids) -> Tuple[np.ndarray,
                                                       np.ndarray]:
        """Concatenated full vertex sets of several entries.

        Returns ``(stacked, offsets)``: ``stacked`` is the row-wise
        concatenation of :meth:`entry_vertices` over ``entry_ids`` and
        ``offsets[i]:offsets[i+1]`` delimits entry ``i``'s rows — the
        layout the matcher's batched exact-measure evaluation consumes
        (one distance-engine call for the whole candidate set).
        """
        arrays = [self.entries[int(e)].shape.vertices for e in entry_ids]
        offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
        if not arrays:
            return np.zeros((0, 2)), offsets
        np.cumsum([len(a) for a in arrays], out=offsets[1:])
        return np.vstack(arrays), offsets

    def entry_indexed_vertices(self, entry_id: int) -> np.ndarray:
        """The indexed (non-anchor) vertex slice of one entry."""
        self._ensure_arrays()
        lo = self._entry_offsets[entry_id]
        hi = self._entry_offsets[entry_id + 1]
        return self._vertex_points[lo:hi]

    @property
    def index(self) -> TriangleRangeIndex:
        """The simplex range-search index over all entry vertices."""
        self._ensure_arrays()
        return self._index

    def __repr__(self) -> str:
        return (f"ShapeBase(shapes={self.num_shapes}, "
                f"entries={self.num_entries}, alpha={self.alpha}, "
                f"backend={self.backend!r})")
