"""Core contribution of the paper: the average-point-distance similarity
measure and the incremental envelope-fattening retrieval algorithm.
"""

from .elastic import elastic_matching_distance
from .epsilon import (EpsilonSchedule, expected_band_count, initial_epsilon,
                      schedule_for, termination_epsilon)
from .matcher import GeometricSimilarityMatcher, Match, MatchStats
from .measures import (average_distance, continuous_average_distance,
                       directed_average_distance, directed_hausdorff,
                       directed_kth_hausdorff, hausdorff, kth_hausdorff,
                       similarity_score)
from .shapebase import ShapeBase, ShapeEntry

__all__ = [
    "EpsilonSchedule", "GeometricSimilarityMatcher", "Match", "MatchStats",
    "ShapeBase", "ShapeEntry", "average_distance",
    "continuous_average_distance", "directed_average_distance",
    "directed_hausdorff", "directed_kth_hausdorff",
    "elastic_matching_distance", "expected_band_count", "hausdorff",
    "initial_epsilon", "kth_hausdorff", "schedule_for", "similarity_score",
    "termination_epsilon",
]
