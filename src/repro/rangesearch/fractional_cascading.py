"""Fractional cascading over a chain of sorted catalogs.

The classic Chazelle-Guibas technique the paper leans on: once the
position of a query value is known in one *augmented* catalog, its
position in the next catalog follows in O(1) via bridge pointers, so
searching the same value in ``k`` catalogs of total size ``n`` costs
``O(log n + k)`` instead of ``O(k log n)``.

The layered range tree (see :mod:`.layered_range_tree`) uses the
pairwise parent->child form of this idea; :class:`FractionalCascade`
is the standalone chain form, exposed because the paper's envelope
iteration re-searches the *same* y-interval in many per-node catalogs
— exactly the iterated-search pattern fractional cascading was made
for.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class FractionalCascade:
    """Iterated successor search over a chain of sorted catalogs.

    Parameters
    ----------
    catalogs:
        Sequence of one-dimensional sorted arrays (ascending).  Empty
        catalogs are allowed.

    ``query(x)`` returns, for every catalog ``L_i``, the index of the
    first element ``>= x`` (``len(L_i)`` when no such element exists) —
    the same contract as ``numpy.searchsorted(L_i, x, side="left")``,
    but with a single ``O(log n)`` binary search for the whole chain.
    """

    def __init__(self, catalogs: Sequence[Sequence[float]]):
        self.catalogs: List[np.ndarray] = [
            np.asarray(c, dtype=np.float64) for c in catalogs]
        for c in self.catalogs:
            if c.ndim != 1:
                raise ValueError("catalogs must be one-dimensional")
            if len(c) > 1 and np.any(np.diff(c) < 0):
                raise ValueError("catalogs must be sorted ascending")
        k = len(self.catalogs)
        # Augmented catalogs M_i = merge(L_i, every 2nd element of M_{i+1}).
        self._augmented: List[np.ndarray] = [None] * k
        #: for each augmented element, index of first own element >= it
        self._own: List[np.ndarray] = [None] * k
        #: for each augmented element, index into M_{i+1} of first >= it
        self._down: List[np.ndarray] = [None] * k
        previous = np.zeros(0)
        for i in range(k - 1, -1, -1):
            sampled = previous[::2]
            merged = np.concatenate([self.catalogs[i], sampled])
            merged.sort(kind="mergesort")
            self._augmented[i] = merged
            self._own[i] = np.searchsorted(self.catalogs[i], merged,
                                           side="left")
            self._down[i] = np.searchsorted(previous, merged, side="left")
            previous = merged

    def query(self, x: float) -> List[int]:
        """Index of the first element ``>= x`` in every catalog."""
        k = len(self.catalogs)
        result: List[int] = [0] * k
        if k == 0:
            return result
        # One true binary search, in the top augmented catalog.
        pos = int(np.searchsorted(self._augmented[0], x, side="left"))
        for i in range(k):
            aug = self._augmented[i]
            # Walk back over stale bridge slack: the bridge position is
            # guaranteed to be within O(1) of the true successor because
            # M_i contains every other element of M_{i+1}.
            while pos > 0 and aug[pos - 1] >= x:
                pos -= 1
            while pos < len(aug) and aug[pos] < x:
                pos += 1
            if pos < len(aug):
                result[i] = int(self._own[i][pos])
                down = int(self._down[i][pos])
            else:
                result[i] = len(self.catalogs[i])
                down = len(self._augmented[i + 1]) if i + 1 < k else 0
            pos = down
        return result

    def query_bruteforce(self, x: float) -> List[int]:
        """Reference implementation (independent searches); for tests."""
        return [int(np.searchsorted(c, x, side="left"))
                for c in self.catalogs]
