"""Incremental point insertion over the static range-search backends.

The tree backends are built once over a static point set — ideal for
bulk ingest and snapshot loads, wasteful when single shapes trickle in
and each insert triggers a full O(n log n) rebuild.
:class:`IncrementalIndex` is the standard static-to-dynamic bridge: a
frozen *core* index plus a small brute-force *tail* holding the points
added since the last build.  Queries answer from both parts (tail ids
are offset past the core, so the combined answer is exactly what a
fresh index over the concatenated points would report), and the tail is
folded into a new core build once it grows past a fraction of the core.

``IncrementalIndex.extended`` is the single entry point: give it any
index plus new points and it either grows the tail or re-builds,
whichever is cheaper.
"""

from __future__ import annotations

import numpy as np

from ..geometry.primitives import as_points
from .base import Point, TriangleRangeIndex, make_index
from .brute import BruteForceIndex

#: The tail is folded into a fresh core build when it exceeds
#: ``max(_TAIL_MIN, _TAIL_FRACTION * len(core))`` points.
_TAIL_MIN = 64
_TAIL_FRACTION = 0.25


def fold_threshold(core_size: int) -> float:
    """Tail size past which folding beats brute-force scans."""
    return max(_TAIL_MIN, _TAIL_FRACTION * core_size)


class IncrementalIndex(TriangleRangeIndex):
    """A static core index plus a brute-force tail of recent inserts.

    Point ids are positions in ``concat(core.points, tail_points)``:
    core points keep their ids, tail points get ids past the core.
    Since every backend reports sorted ids and all tail ids exceed all
    core ids, concatenating the two sorted answers is already sorted.
    """

    def __init__(self, core: TriangleRangeIndex, tail_points: np.ndarray):
        tail = as_points(tail_points)
        super().__init__(np.concatenate([core.points, tail], axis=0)
                         if len(tail) else core.points)
        self._core = core
        self._tail = BruteForceIndex(tail)
        self._offset = len(core.points)

    # -- growth / shrinkage --------------------------------------------
    @classmethod
    def extended(cls, index: TriangleRangeIndex, new_points: np.ndarray,
                 backend: str = "kdtree", fold: bool = True,
                 **kwargs) -> TriangleRangeIndex:
        """``index`` grown by ``new_points`` (appended, ids past the end).

        Wraps (or extends the wrap of) ``index`` with a brute tail while
        the tail stays small, otherwise folds everything into one fresh
        ``make_index`` build.  Always returns a new object.

        With ``fold=False`` the tail grows without bound and the fold
        decision moves to the caller (a background scheduler calling
        :meth:`fold` off the write path).
        """
        added = as_points(new_points)
        if isinstance(index, IncrementalIndex):
            core = index._core
            tail = np.concatenate([index._tail.points, added], axis=0) \
                if len(added) else index._tail.points
        else:
            core = index
            tail = added
        if fold and len(tail) > fold_threshold(len(core.points)):
            return make_index(np.concatenate([core.points, tail], axis=0),
                              backend, **kwargs)
        return cls(core, tail)

    @property
    def tail_size(self) -> int:
        """Points in the brute-force tail (the unfolded delta)."""
        return len(self._tail.points)

    @property
    def core_size(self) -> int:
        return self._offset

    def needs_fold(self) -> bool:
        """True once the tail has outgrown the core's fold threshold."""
        return self.tail_size > fold_threshold(self.core_size)

    def fold(self, backend: str = "kdtree", **kwargs) -> TriangleRangeIndex:
        """A fresh static build over all points (core + tail).

        Pure: ``self`` is untouched, so a scheduler can fold off the hot
        path and atomically swap the result in afterwards.
        """
        return make_index(self.points, backend, **kwargs)

    def removed(self, keep_mask: np.ndarray) -> TriangleRangeIndex:
        keep = np.asarray(keep_mask, dtype=bool)
        if keep.shape != (len(self.points),):
            raise ValueError("keep_mask must have one flag per point")
        core_keep = keep[:self._offset]
        tail_keep = keep[self._offset:]
        new_core = self._core.removed(core_keep)
        new_tail = self._tail.points[tail_keep]
        if len(new_tail) == 0:
            return new_core
        return IncrementalIndex(new_core, new_tail)

    # -- queries --------------------------------------------------------
    def report_triangle(self, a: Point, b: Point, c: Point) -> np.ndarray:
        core_hits = self._core.report_triangle(a, b, c)
        tail_hits = self._tail.report_triangle(a, b, c)
        if not len(tail_hits):
            return core_hits
        return np.concatenate([core_hits, tail_hits + self._offset])

    def count_triangle(self, a: Point, b: Point, c: Point) -> int:
        return (self._core.count_triangle(a, b, c) +
                self._tail.count_triangle(a, b, c))

    def report_triangles(self, triangles) -> np.ndarray:
        core_hits = self._core.report_triangles(triangles)
        tail_hits = self._tail.report_triangles(triangles)
        if not len(tail_hits):
            return core_hits
        return np.concatenate([core_hits, tail_hits + self._offset])

    def count_triangles(self, triangles) -> np.ndarray:
        return (self._core.count_triangles(triangles) +
                self._tail.count_triangles(triangles))

    def report_box(self, xmin: float, ymin: float, xmax: float,
                   ymax: float) -> np.ndarray:
        core_hits = self._core.report_box(xmin, ymin, xmax, ymax)
        tail_hits = self._tail.report_box(xmin, ymin, xmax, ymax)
        if not len(tail_hits):
            return core_hits
        return np.concatenate([core_hits, tail_hits + self._offset])

    def count_box(self, xmin: float, ymin: float, xmax: float,
                  ymax: float) -> int:
        return (self._core.count_box(xmin, ymin, xmax, ymax) +
                self._tail.count_box(xmin, ymin, xmax, ymax))
