"""Simplex range-search substrate (paper Section 2.5).

Three interchangeable backends behind :func:`make_index`:

* ``"kdtree"`` — array-backed kd-tree (the default; fastest in pure
  Python on the paper's workloads),
* ``"rangetree"`` — layered range tree with fractional cascading (the
  paper's headline technique, reproduced verbatim on the orthogonal
  sub-problem),
* ``"brute"`` — the linear-scan oracle.
"""

from .base import TriangleRangeIndex, make_index
from .brute import BruteForceIndex
from .dynamic import IncrementalIndex
from .external import ExternalSpatialIndex
from .fractional_cascading import FractionalCascade
from .kdtree import KdTreeIndex
from .layered_range_tree import LayeredRangeTreeIndex

__all__ = [
    "BruteForceIndex", "ExternalSpatialIndex", "FractionalCascade",
    "IncrementalIndex", "KdTreeIndex", "LayeredRangeTreeIndex",
    "TriangleRangeIndex", "make_index",
]
