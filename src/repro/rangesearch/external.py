"""External-memory range search (paper Section 4, citing [2, 25]).

The paper keeps its auxiliary geometric data structures on disk using
optimal external range-search indexes (Arge-Samoladas-Vitter).  This
module provides the working equivalent: a bulk-loaded, block-packed
spatial tree (kd-style recursive tiling with multi-way nodes — the
classic kdB/STR packing) stored on the simulated
:class:`~repro.storage.disk.BlockDevice` and queried through an LRU
:class:`~repro.storage.buffer.BufferPool`, so every query's I/O cost is
measurable exactly like the shape-store experiments.

Layout
------
* leaf block:     ``[kind=0][count] count x (index u64, x f64, y f64)``
* internal block: ``[kind=1][count] count x (child u64, bbox 4 x f64)``

Queries return the same index sets as the in-memory backends
(property-tested against the brute oracle); only the cost model
differs.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

import numpy as np

from ..geometry.predicates import points_in_triangle
from .base import Point, TriangleRangeIndex
from .kdtree import _TrianglePruner

_BLOCK_HEADER = struct.Struct("<BH")        # kind, entry count
_LEAF_ENTRY = struct.Struct("<Qdd")         # point index, x, y
_NODE_ENTRY = struct.Struct("<Qdddd")       # child block, bbox


class ExternalSpatialIndex(TriangleRangeIndex):
    """Disk-resident triangle/box range reporting with I/O accounting.

    Parameters
    ----------
    points:
        The static point set.
    block_size:
        Device block size in bytes (the paper's experiments use 1 KB).
    buffer_blocks:
        LRU pool capacity for queries.
    """

    def __init__(self, points: np.ndarray, block_size: int = 1024,
                 buffer_blocks: int = 8):
        super().__init__(points)
        from ..storage.buffer import BufferPool
        from ..storage.disk import BlockDevice
        self.device = BlockDevice(block_size)
        self.buffer = BufferPool(self.device, buffer_blocks)
        self.leaf_capacity = (block_size - _BLOCK_HEADER.size) \
            // _LEAF_ENTRY.size
        self.fanout = (block_size - _BLOCK_HEADER.size) \
            // _NODE_ENTRY.size
        if self.leaf_capacity < 1 or self.fanout < 2:
            raise ValueError("block size too small for index nodes")
        self._root: Optional[int] = None
        self._root_bbox: Optional[Tuple[float, float, float, float]] = None
        if len(self.points):
            indices = np.arange(len(self.points))
            self._root, self._root_bbox = self._build(indices, 0)

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    def _write_leaf(self, indices: np.ndarray) -> Tuple[int, Tuple]:
        payload = bytearray(_BLOCK_HEADER.pack(0, len(indices)))
        for index in indices:
            x, y = self.points[index]
            payload.extend(_LEAF_ENTRY.pack(int(index), float(x), float(y)))
        block_id = self.device.allocate(bytes(payload))
        sub = self.points[indices]
        bbox = (float(sub[:, 0].min()), float(sub[:, 1].min()),
                float(sub[:, 0].max()), float(sub[:, 1].max()))
        return block_id, bbox

    def _build(self, indices: np.ndarray, depth: int) -> Tuple[int, Tuple]:
        if len(indices) <= self.leaf_capacity:
            return self._write_leaf(indices)
        # Multi-way kd split: order along the alternating dimension and
        # cut into up to `fanout` equal contiguous runs.
        dim = depth % 2
        order = indices[np.argsort(self.points[indices, dim],
                                   kind="mergesort")]
        # Children sized so the subtree roughly fills its leaves.
        import math
        needed_leaves = math.ceil(len(indices) / self.leaf_capacity)
        num_children = min(self.fanout, needed_leaves)
        chunks = np.array_split(order, num_children)
        children: List[Tuple[int, Tuple]] = [
            self._build(chunk, depth + 1) for chunk in chunks if len(chunk)]
        payload = bytearray(_BLOCK_HEADER.pack(1, len(children)))
        xmin = min(b[0] for _, b in children)
        ymin = min(b[1] for _, b in children)
        xmax = max(b[2] for _, b in children)
        ymax = max(b[3] for _, b in children)
        for child_id, bbox in children:
            payload.extend(_NODE_ENTRY.pack(child_id, *bbox))
        block_id = self.device.allocate(bytes(payload))
        return block_id, (xmin, ymin, xmax, ymax)

    # ------------------------------------------------------------------
    # Block decoding
    # ------------------------------------------------------------------
    def _read_block(self, block_id: int):
        payload = self.buffer.read_block(block_id)
        kind, count = _BLOCK_HEADER.unpack_from(payload, 0)
        offset = _BLOCK_HEADER.size
        if kind == 0:
            entries = [_LEAF_ENTRY.unpack_from(payload, offset +
                                               i * _LEAF_ENTRY.size)
                       for i in range(count)]
            return "leaf", entries
        entries = [_NODE_ENTRY.unpack_from(payload, offset +
                                           i * _NODE_ENTRY.size)
                   for i in range(count)]
        return "node", entries

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def report_triangle(self, a: Point, b: Point, c: Point) -> np.ndarray:
        if self._root is None:
            return np.zeros(0, dtype=np.int64)
        pruner = _TrianglePruner(a, b, c)
        hits: List[int] = []
        stack = [self._root]
        while stack:
            kind, entries = self._read_block(stack.pop())
            if kind == "leaf":
                if not entries:
                    continue
                indices = np.array([e[0] for e in entries], dtype=np.int64)
                pts = np.array([(e[1], e[2]) for e in entries])
                mask = points_in_triangle(pts, a, b, c)
                hits.extend(indices[mask].tolist())
                continue
            for child_id, xmin, ymin, xmax, ymax in entries:
                if pruner.classify(xmin, ymin, xmax, ymax):
                    stack.append(int(child_id))
        out = np.array(sorted(hits), dtype=np.int64)
        return out

    def report_box(self, xmin: float, ymin: float, xmax: float,
                   ymax: float) -> np.ndarray:
        if self._root is None:
            return np.zeros(0, dtype=np.int64)
        hits: List[int] = []
        stack = [self._root]
        while stack:
            kind, entries = self._read_block(stack.pop())
            if kind == "leaf":
                for index, x, y in entries:
                    if xmin <= x <= xmax and ymin <= y <= ymax:
                        hits.append(int(index))
                continue
            for child_id, bxmin, bymin, bxmax, bymax in entries:
                if bxmin <= xmax and bxmax >= xmin and \
                        bymin <= ymax and bymax >= ymin:
                    stack.append(int(child_id))
        return np.array(sorted(hits), dtype=np.int64)

    # ------------------------------------------------------------------
    def io_reads(self) -> int:
        """Device reads so far (buffer misses only)."""
        return self.device.stats.reads

    def reset_io(self, clear_buffer: bool = True) -> None:
        """Zero the I/O counters (and optionally cool the buffer)."""
        self.device.reset_stats()
        if clear_buffer:
            self.buffer.reset()

    def __repr__(self) -> str:
        return (f"ExternalSpatialIndex(points={len(self.points)}, "
                f"blocks={self.device.num_blocks}, "
                f"fanout={self.fanout}, leaf={self.leaf_capacity})")
