"""Kd-tree triangle range search.

A static, array-backed 2-d tree whose nodes own *contiguous* slices of a
permutation array, so a subtree fully inside the query triangle is
reported as one numpy slice — that is what makes the output-sensitive
``+ kappa`` term of the paper's query bound cheap in practice.

Pruning uses a separating-axis triangle/AABB test; leaves are resolved
with the vectorized point-in-triangle predicate.  On the uniform-ish
vertex distributions the paper assumes, queries over the O(m) skinny
envelope triangles touch O(poly-log n + kappa) nodes on average.

Batch queries (``report_triangles`` / ``count_triangles``) answer all
of an envelope ring's cover triangles in one *flat* traversal: the
frontier is a pair array ``(node, triangle)`` advanced one tree level
at a time, with every live pair classified against its node box in a
single vectorized separating-axis pass (:class:`_TriangleBatch`).  A
node fully inside *some* triangle is emitted once as a slice and all
pairs on it retire — the union over triangles is what the matcher
consumes, so fused reporting stays exact while the per-triangle,
per-node Python loop disappears.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..geometry.predicates import points_in_triangle
from ..geometry.primitives import EPSILON
from .base import Point, TriangleRangeIndex, as_triangle_array


class _TrianglePruner:
    """Per-query precomputation for fast triangle/AABB classification.

    The same query triangle is tested against many tree-node boxes; the
    separating-axis data (bbox and the three edge-normal projections of
    the triangle) is computed once here instead of per node.
    """

    __slots__ = ("xmin", "xmax", "ymin", "ymax", "axes")

    def __init__(self, a: Point, b: Point, c: Point):
        xs = (a[0], b[0], c[0])
        ys = (a[1], b[1], c[1])
        self.xmin, self.xmax = min(xs), max(xs)
        self.ymin, self.ymax = min(ys), max(ys)
        vertices = (a, b, c)
        axes = []
        for i in range(3):
            p, q = vertices[i], vertices[(i + 1) % 3]
            nx, ny = q[1] - p[1], p[0] - q[0]
            projections = [nx * vx + ny * vy for vx, vy in vertices]
            axes.append((nx, ny, min(projections), max(projections)))
        self.axes = axes

    def classify(self, bxmin: float, bymin: float, bxmax: float,
                 bymax: float) -> int:
        """0 = disjoint, 1 = partial overlap, 2 = box inside triangle."""
        if self.xmax < bxmin - EPSILON or self.xmin > bxmax + EPSILON or \
                self.ymax < bymin - EPSILON or self.ymin > bymax + EPSILON:
            return 0
        inside = (bxmin >= self.xmin and bxmax <= self.xmax and
                  bymin >= self.ymin and bymax <= self.ymax)
        for nx, ny, lo, hi in self.axes:
            # Project the box on the axis via its extreme corners.
            if nx >= 0.0:
                box_lo_x, box_hi_x = bxmin, bxmax
            else:
                box_lo_x, box_hi_x = bxmax, bxmin
            if ny >= 0.0:
                box_lo_y, box_hi_y = bymin, bymax
            else:
                box_lo_y, box_hi_y = bymax, bymin
            box_lo = nx * box_lo_x + ny * box_lo_y
            box_hi = nx * box_hi_x + ny * box_hi_y
            if hi < box_lo - EPSILON or lo > box_hi + EPSILON:
                return 0
            # Box fully on the inner side of this edge?
            if inside:
                inside = lo - EPSILON <= box_lo and box_hi <= hi + EPSILON
        return 2 if inside else 1


class _TriangleBatch:
    """Stacked SAT data for a whole batch of query triangles.

    The same quantities :class:`_TrianglePruner` derives per triangle —
    bbox plus the three edge-normal projection ranges — precomputed for
    all ``m`` triangles as ``(m, ...)`` arrays, so one traversal level
    classifies every live (node, triangle) pair with a handful of
    vectorized operations.  The arithmetic mirrors the scalar pruner
    operation for operation, which keeps batched and per-triangle
    classification decisions identical.
    """

    __slots__ = ("tris", "bbox", "nx", "ny", "lo", "hi")

    def __init__(self, tris: np.ndarray):
        self.tris = tris                                   # (m, 3, 2)
        xs, ys = tris[:, :, 0], tris[:, :, 1]
        self.bbox = np.column_stack([xs.min(axis=1), ys.min(axis=1),
                                     xs.max(axis=1), ys.max(axis=1)])
        nxt = tris[:, [1, 2, 0], :]
        self.nx = nxt[:, :, 1] - tris[:, :, 1]             # (m, 3)
        self.ny = tris[:, :, 0] - nxt[:, :, 0]
        proj = (self.nx[:, :, None] * xs[:, None, :] +
                self.ny[:, :, None] * ys[:, None, :])      # (m, 3, 3)
        self.lo = proj.min(axis=2)
        self.hi = proj.max(axis=2)

    def classify_pairs(self, boxes: np.ndarray, tri_ids: np.ndarray):
        """Classify ``(node box, triangle)`` pairs in one pass.

        ``boxes`` is ``(p, 4)`` as ``(xmin, ymin, xmax, ymax)``;
        ``tri_ids`` selects each pair's triangle.  Returns boolean
        masks ``(disjoint, inside)`` matching the scalar pruner's kinds
        0 and 2 (everything else is a partial overlap).
        """
        bxmin, bymin = boxes[:, 0], boxes[:, 1]
        bxmax, bymax = boxes[:, 2], boxes[:, 3]
        tb = self.bbox[tri_ids]
        disjoint = ((tb[:, 2] < bxmin - EPSILON) |
                    (tb[:, 0] > bxmax + EPSILON) |
                    (tb[:, 3] < bymin - EPSILON) |
                    (tb[:, 1] > bymax + EPSILON))
        inside = ((bxmin >= tb[:, 0]) & (bxmax <= tb[:, 2]) &
                  (bymin >= tb[:, 1]) & (bymax <= tb[:, 3]))
        nx, ny = self.nx[tri_ids], self.ny[tri_ids]        # (p, 3)
        lo, hi = self.lo[tri_ids], self.hi[tri_ids]
        box_lo_x = np.where(nx >= 0.0, bxmin[:, None], bxmax[:, None])
        box_hi_x = np.where(nx >= 0.0, bxmax[:, None], bxmin[:, None])
        box_lo_y = np.where(ny >= 0.0, bymin[:, None], bymax[:, None])
        box_hi_y = np.where(ny >= 0.0, bymax[:, None], bymin[:, None])
        box_lo = nx * box_lo_x + ny * box_lo_y
        box_hi = nx * box_hi_x + ny * box_hi_y
        disjoint |= ((hi < box_lo - EPSILON) |
                     (lo > box_hi + EPSILON)).any(axis=1)
        inside &= ((lo - EPSILON <= box_lo) &
                   (box_hi <= hi + EPSILON)).all(axis=1)
        return disjoint, inside & ~disjoint

    def points_in_any(self, px: np.ndarray, py: np.ndarray,
                      tri_ids: np.ndarray) -> np.ndarray:
        """Exact containment of point i in triangle ``tri_ids[i]``.

        Same half-plane + bbox arithmetic as
        :func:`~repro.geometry.predicates.points_in_triangle`, applied
        elementwise to (point, triangle) pairs.
        """
        t = self.tris[tri_ids]
        ax, ay = t[:, 0, 0], t[:, 0, 1]
        bx, by = t[:, 1, 0], t[:, 1, 1]
        cx, cy = t[:, 2, 0], t[:, 2, 1]
        d1 = (bx - ax) * (py - ay) - (by - ay) * (px - ax)
        d2 = (cx - bx) * (py - by) - (cy - by) * (px - bx)
        d3 = (ax - cx) * (py - cy) - (ay - cy) * (px - cx)
        has_neg = (d1 < -EPSILON) | (d2 < -EPSILON) | (d3 < -EPSILON)
        has_pos = (d1 > EPSILON) | (d2 > EPSILON) | (d3 > EPSILON)
        tb = self.bbox[tri_ids]
        in_box = ((px >= tb[:, 0] - EPSILON) & (px <= tb[:, 2] + EPSILON) &
                  (py >= tb[:, 1] - EPSILON) & (py <= tb[:, 3] + EPSILON))
        return ~(has_neg & has_pos) & in_box


class KdTreeIndex(TriangleRangeIndex):
    """Array-backed static kd-tree over a 2-d point set."""

    def __init__(self, points: np.ndarray, leaf_size: int = 32):
        super().__init__(points)
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.leaf_size = int(leaf_size)
        n = len(self.points)
        self._perm = np.arange(n)
        # Node arrays; grown as lists during construction.
        starts: List[int] = []
        ends: List[int] = []
        lefts: List[int] = []
        rights: List[int] = []
        boxes: List[tuple] = []
        if n:
            stack = [(0, n, -1, False)]      # (start, end, parent, is_right)
            while stack:
                start, end, parent, is_right = stack.pop()
                node = len(starts)
                if parent >= 0:
                    if is_right:
                        rights[parent] = node
                    else:
                        lefts[parent] = node
                slice_points = self.points[self._perm[start:end]]
                boxes.append((slice_points[:, 0].min(), slice_points[:, 1].min(),
                              slice_points[:, 0].max(), slice_points[:, 1].max()))
                starts.append(start)
                ends.append(end)
                lefts.append(-1)
                rights.append(-1)
                if end - start <= self.leaf_size:
                    continue
                xmin, ymin, xmax, ymax = boxes[-1]
                dim = 0 if (xmax - xmin) >= (ymax - ymin) else 1
                mid = (start + end) // 2
                segment = self._perm[start:end]
                order = np.argpartition(self.points[segment, dim],
                                        mid - start)
                self._perm[start:end] = segment[order]
                stack.append((mid, end, node, True))
                stack.append((start, mid, node, False))
        self._starts = np.asarray(starts, dtype=np.int64)
        self._ends = np.asarray(ends, dtype=np.int64)
        self._lefts = np.asarray(lefts, dtype=np.int64)
        self._rights = np.asarray(rights, dtype=np.int64)
        self._boxes = np.asarray(boxes, dtype=np.float64) if boxes else \
            np.zeros((0, 4))
        # Plain tuples for the traversal hot loop (numpy scalar indexing
        # is ~5x slower than tuple unpacking).
        self._box_tuples = [(float(b[0]), float(b[1]), float(b[2]),
                             float(b[3])) for b in boxes]
        # Point count at the last full build; removed() rebuilds once
        # fewer than half of those points survive.
        self._built_n = n

    def removed(self, keep_mask: np.ndarray) -> "KdTreeIndex":
        """Shrink the tree to ``points[keep_mask]`` without rebuilding.

        The node topology and bounding boxes are *shared* with the old
        tree: boxes become conservative supersets of their surviving
        points, which keeps every disjoint / fully-inside classification
        correct (a superset box inside a triangle still implies all its
        points are; a superset box disjoint from it would have been
        disjoint anyway had it shrunk).  Only the permutation array and
        the node start/end offsets are recomputed, in O(n).  Once fewer
        than half of the last fully-built point set survives, the boxes
        are stale enough that a fresh build pays for itself.
        """
        keep = np.asarray(keep_mask, dtype=bool)
        if keep.shape != (len(self.points),):
            raise ValueError("keep_mask must have one flag per point")
        kept = int(keep.sum())
        if kept < max(1, self._built_n) * 0.5:
            return KdTreeIndex(self.points[keep], leaf_size=self.leaf_size)
        clone = object.__new__(KdTreeIndex)
        new_points = self.points[keep]
        new_points.setflags(write=False)
        clone.points = new_points
        clone.leaf_size = self.leaf_size
        kept_at = keep[self._perm]           # survival per perm position
        prefix = np.concatenate(([0], np.cumsum(kept_at)))
        new_id = np.cumsum(keep) - 1         # old point id -> new id
        clone._perm = new_id[self._perm[kept_at]]
        clone._starts = prefix[self._starts]
        clone._ends = prefix[self._ends]
        clone._lefts = self._lefts
        clone._rights = self._rights
        clone._boxes = self._boxes
        clone._box_tuples = self._box_tuples
        clone._built_n = self._built_n
        return clone

    # ------------------------------------------------------------------
    def report_triangle(self, a: Point, b: Point, c: Point) -> np.ndarray:
        if len(self.points) == 0:
            return np.zeros(0, dtype=np.int64)
        pruner = _TrianglePruner(a, b, c)
        boxes = self._box_tuples
        lefts = self._lefts
        chunks: List[np.ndarray] = []
        stack = [0]
        while stack:
            node = stack.pop()
            box = boxes[node]
            kind = pruner.classify(box[0], box[1], box[2], box[3])
            if kind == 0:
                continue
            start, end = self._starts[node], self._ends[node]
            if kind == 2:
                chunks.append(self._perm[start:end])
                continue
            left = lefts[node]
            if left < 0:            # leaf
                slice_perm = self._perm[start:end]
                mask = points_in_triangle(self.points[slice_perm], a, b, c)
                if mask.any():
                    chunks.append(slice_perm[mask])
                continue
            stack.append(left)
            stack.append(self._rights[node])
        if not chunks:
            return np.zeros(0, dtype=np.int64)
        out = np.concatenate(chunks)
        out.sort()
        return out

    def count_triangle(self, a: Point, b: Point, c: Point) -> int:
        if len(self.points) == 0:
            return 0
        pruner = _TrianglePruner(a, b, c)
        boxes = self._box_tuples
        total = 0
        stack = [0]
        while stack:
            node = stack.pop()
            box = boxes[node]
            kind = pruner.classify(box[0], box[1], box[2], box[3])
            if kind == 0:
                continue
            start, end = self._starts[node], self._ends[node]
            if kind == 2:
                total += int(end - start)
                continue
            left = self._lefts[node]
            if left < 0:
                slice_perm = self._perm[start:end]
                total += int(points_in_triangle(self.points[slice_perm],
                                                a, b, c).sum())
                continue
            stack.append(left)
            stack.append(self._rights[node])
        return total

    # ------------------------------------------------------------------
    # Batch queries: one flat traversal for a whole triangle batch.
    # ------------------------------------------------------------------
    def report_triangles(self, triangles) -> np.ndarray:
        tris = as_triangle_array(triangles)
        m = len(tris)
        if len(self.points) == 0 or m == 0:
            return np.zeros(0, dtype=np.int64)
        batch = _TriangleBatch(tris)
        starts, ends = self._starts, self._ends
        lefts, rights = self._lefts, self._rights
        num_nodes = len(starts)
        # Frontier of live (node, triangle) pairs, advanced level by
        # level so each level costs O(1) vectorized passes.
        nodes = np.zeros(m, dtype=np.int64)
        tri_ids = np.arange(m, dtype=np.int64)
        chunks: List[np.ndarray] = []
        leaf_nodes: List[np.ndarray] = []
        leaf_tris: List[np.ndarray] = []
        covered = np.zeros(num_nodes, dtype=bool)
        while len(nodes):
            disjoint, inside = batch.classify_pairs(self._boxes[nodes],
                                                    tri_ids)
            if inside.any():
                # Union semantics: a node inside *any* triangle is
                # emitted once and every pair on it retires.
                covered[:] = False
                covered[nodes[inside]] = True
                for node in np.unique(nodes[inside]):
                    chunks.append(self._perm[starts[node]:ends[node]])
                live = ~(disjoint | covered[nodes])
            else:
                live = ~disjoint
            nodes, tri_ids = nodes[live], tri_ids[live]
            if not len(nodes):
                break
            is_leaf = lefts[nodes] < 0
            if is_leaf.any():
                leaf_nodes.append(nodes[is_leaf])
                leaf_tris.append(tri_ids[is_leaf])
                nodes, tri_ids = nodes[~is_leaf], tri_ids[~is_leaf]
            if len(nodes):
                tri_ids = np.concatenate([tri_ids, tri_ids])
                nodes = np.concatenate([lefts[nodes], rights[nodes]])
        if leaf_nodes:
            hits = self._batch_leaf_hits(batch, np.concatenate(leaf_nodes),
                                         np.concatenate(leaf_tris))
            if len(hits):
                chunks.append(hits)
        if not chunks:
            return np.zeros(0, dtype=np.int64)
        # Emitted subtree slices are pairwise disjoint (each node emitted
        # once, never both an ancestor and its descendant) and disjoint
        # from leaf hits, so a plain sort suffices after the leaf dedup.
        out = np.concatenate(chunks)
        out.sort()
        return out

    def _batch_leaf_hits(self, batch: _TriangleBatch, nodes: np.ndarray,
                         tri_ids: np.ndarray) -> np.ndarray:
        """Resolve all partially-overlapped leaf pairs in one pass.

        Expands every (leaf, triangle) pair into its point instances and
        applies the exact point-in-triangle predicate elementwise;
        returns unique hit point ids.
        """
        starts = self._starts[nodes]
        lengths = (self._ends[nodes] - starts)
        total = int(lengths.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64)
        first = np.zeros(len(nodes), dtype=np.int64)
        np.cumsum(lengths[:-1], out=first[1:])
        pos = np.arange(total, dtype=np.int64) - np.repeat(first, lengths)
        point_idx = self._perm[np.repeat(starts, lengths) + pos]
        t = np.repeat(tri_ids, lengths)
        pts = self.points[point_idx]
        mask = batch.points_in_any(pts[:, 0], pts[:, 1], t)
        return np.unique(point_idx[mask])

    def count_triangles(self, triangles) -> np.ndarray:
        tris = as_triangle_array(triangles)
        m = len(tris)
        counts = np.zeros(m, dtype=np.int64)
        if len(self.points) == 0 or m == 0:
            return counts
        batch = _TriangleBatch(tris)
        starts, ends = self._starts, self._ends
        lefts, rights = self._lefts, self._rights
        nodes = np.zeros(m, dtype=np.int64)
        tri_ids = np.arange(m, dtype=np.int64)
        leaf_nodes: List[np.ndarray] = []
        leaf_tris: List[np.ndarray] = []
        while len(nodes):
            disjoint, inside = batch.classify_pairs(self._boxes[nodes],
                                                    tri_ids)
            if inside.any():
                # Per-triangle semantics: a covered subtree credits its
                # span to that pair's triangle only — no cross-triangle
                # pruning here, unlike the union report.
                spans = (ends[nodes[inside]] -
                         starts[nodes[inside]]).astype(np.float64)
                counts += np.bincount(tri_ids[inside], weights=spans,
                                      minlength=m).astype(np.int64)
            live = ~(disjoint | inside)
            nodes, tri_ids = nodes[live], tri_ids[live]
            if not len(nodes):
                break
            is_leaf = lefts[nodes] < 0
            if is_leaf.any():
                leaf_nodes.append(nodes[is_leaf])
                leaf_tris.append(tri_ids[is_leaf])
                nodes, tri_ids = nodes[~is_leaf], tri_ids[~is_leaf]
            if len(nodes):
                tri_ids = np.concatenate([tri_ids, tri_ids])
                nodes = np.concatenate([lefts[nodes], rights[nodes]])
        if leaf_nodes:
            nodes = np.concatenate(leaf_nodes)
            tri_ids = np.concatenate(leaf_tris)
            starts_l = self._starts[nodes]
            lengths = self._ends[nodes] - starts_l
            total = int(lengths.sum())
            if total:
                first = np.zeros(len(nodes), dtype=np.int64)
                np.cumsum(lengths[:-1], out=first[1:])
                pos = (np.arange(total, dtype=np.int64) -
                       np.repeat(first, lengths))
                point_idx = self._perm[np.repeat(starts_l, lengths) + pos]
                t = np.repeat(tri_ids, lengths)
                pts = self.points[point_idx]
                mask = batch.points_in_any(pts[:, 0], pts[:, 1], t)
                counts += np.bincount(t[mask], minlength=m)
        return counts

    # ------------------------------------------------------------------
    def report_box(self, xmin: float, ymin: float, xmax: float,
                   ymax: float) -> np.ndarray:
        if len(self.points) == 0:
            return np.zeros(0, dtype=np.int64)
        chunks: List[np.ndarray] = []
        stack = [0]
        while stack:
            node = stack.pop()
            bxmin, bymin, bxmax, bymax = self._boxes[node]
            if bxmin > xmax or bxmax < xmin or bymin > ymax or bymax < ymin:
                continue
            start, end = self._starts[node], self._ends[node]
            if (bxmin >= xmin and bxmax <= xmax and
                    bymin >= ymin and bymax <= ymax):
                chunks.append(self._perm[start:end])
                continue
            left = self._lefts[node]
            if left < 0:
                slice_perm = self._perm[start:end]
                pts = self.points[slice_perm]
                mask = ((pts[:, 0] >= xmin) & (pts[:, 0] <= xmax) &
                        (pts[:, 1] >= ymin) & (pts[:, 1] <= ymax))
                if mask.any():
                    chunks.append(slice_perm[mask])
                continue
            stack.append(left)
            stack.append(self._rights[node])
        if not chunks:
            return np.zeros(0, dtype=np.int64)
        out = np.concatenate(chunks)
        out.sort()
        return out
