"""Kd-tree triangle range search.

A static, array-backed 2-d tree whose nodes own *contiguous* slices of a
permutation array, so a subtree fully inside the query triangle is
reported as one numpy slice — that is what makes the output-sensitive
``+ kappa`` term of the paper's query bound cheap in practice.

Pruning uses a separating-axis triangle/AABB test; leaves are resolved
with the vectorized point-in-triangle predicate.  On the uniform-ish
vertex distributions the paper assumes, queries over the O(m) skinny
envelope triangles touch O(poly-log n + kappa) nodes on average.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..geometry.predicates import points_in_triangle
from ..geometry.primitives import EPSILON
from .base import Point, TriangleRangeIndex


class _TrianglePruner:
    """Per-query precomputation for fast triangle/AABB classification.

    The same query triangle is tested against many tree-node boxes; the
    separating-axis data (bbox and the three edge-normal projections of
    the triangle) is computed once here instead of per node.
    """

    __slots__ = ("xmin", "xmax", "ymin", "ymax", "axes")

    def __init__(self, a: Point, b: Point, c: Point):
        xs = (a[0], b[0], c[0])
        ys = (a[1], b[1], c[1])
        self.xmin, self.xmax = min(xs), max(xs)
        self.ymin, self.ymax = min(ys), max(ys)
        vertices = (a, b, c)
        axes = []
        for i in range(3):
            p, q = vertices[i], vertices[(i + 1) % 3]
            nx, ny = q[1] - p[1], p[0] - q[0]
            projections = [nx * vx + ny * vy for vx, vy in vertices]
            axes.append((nx, ny, min(projections), max(projections)))
        self.axes = axes

    def classify(self, bxmin: float, bymin: float, bxmax: float,
                 bymax: float) -> int:
        """0 = disjoint, 1 = partial overlap, 2 = box inside triangle."""
        if self.xmax < bxmin - EPSILON or self.xmin > bxmax + EPSILON or \
                self.ymax < bymin - EPSILON or self.ymin > bymax + EPSILON:
            return 0
        inside = (bxmin >= self.xmin and bxmax <= self.xmax and
                  bymin >= self.ymin and bymax <= self.ymax)
        for nx, ny, lo, hi in self.axes:
            # Project the box on the axis via its extreme corners.
            if nx >= 0.0:
                box_lo_x, box_hi_x = bxmin, bxmax
            else:
                box_lo_x, box_hi_x = bxmax, bxmin
            if ny >= 0.0:
                box_lo_y, box_hi_y = bymin, bymax
            else:
                box_lo_y, box_hi_y = bymax, bymin
            box_lo = nx * box_lo_x + ny * box_lo_y
            box_hi = nx * box_hi_x + ny * box_hi_y
            if hi < box_lo - EPSILON or lo > box_hi + EPSILON:
                return 0
            # Box fully on the inner side of this edge?
            if inside:
                inside = lo - EPSILON <= box_lo and box_hi <= hi + EPSILON
        return 2 if inside else 1


class KdTreeIndex(TriangleRangeIndex):
    """Array-backed static kd-tree over a 2-d point set."""

    def __init__(self, points: np.ndarray, leaf_size: int = 32):
        super().__init__(points)
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.leaf_size = int(leaf_size)
        n = len(self.points)
        self._perm = np.arange(n)
        # Node arrays; grown as lists during construction.
        starts: List[int] = []
        ends: List[int] = []
        lefts: List[int] = []
        rights: List[int] = []
        boxes: List[tuple] = []
        if n:
            stack = [(0, n, -1, False)]      # (start, end, parent, is_right)
            while stack:
                start, end, parent, is_right = stack.pop()
                node = len(starts)
                if parent >= 0:
                    if is_right:
                        rights[parent] = node
                    else:
                        lefts[parent] = node
                slice_points = self.points[self._perm[start:end]]
                boxes.append((slice_points[:, 0].min(), slice_points[:, 1].min(),
                              slice_points[:, 0].max(), slice_points[:, 1].max()))
                starts.append(start)
                ends.append(end)
                lefts.append(-1)
                rights.append(-1)
                if end - start <= self.leaf_size:
                    continue
                xmin, ymin, xmax, ymax = boxes[-1]
                dim = 0 if (xmax - xmin) >= (ymax - ymin) else 1
                mid = (start + end) // 2
                segment = self._perm[start:end]
                order = np.argpartition(self.points[segment, dim],
                                        mid - start)
                self._perm[start:end] = segment[order]
                stack.append((mid, end, node, True))
                stack.append((start, mid, node, False))
        self._starts = np.asarray(starts, dtype=np.int64)
        self._ends = np.asarray(ends, dtype=np.int64)
        self._lefts = np.asarray(lefts, dtype=np.int64)
        self._rights = np.asarray(rights, dtype=np.int64)
        self._boxes = np.asarray(boxes, dtype=np.float64) if boxes else \
            np.zeros((0, 4))
        # Plain tuples for the traversal hot loop (numpy scalar indexing
        # is ~5x slower than tuple unpacking).
        self._box_tuples = [(float(b[0]), float(b[1]), float(b[2]),
                             float(b[3])) for b in boxes]

    # ------------------------------------------------------------------
    def report_triangle(self, a: Point, b: Point, c: Point) -> np.ndarray:
        if len(self.points) == 0:
            return np.zeros(0, dtype=np.int64)
        pruner = _TrianglePruner(a, b, c)
        boxes = self._box_tuples
        lefts = self._lefts
        chunks: List[np.ndarray] = []
        stack = [0]
        while stack:
            node = stack.pop()
            box = boxes[node]
            kind = pruner.classify(box[0], box[1], box[2], box[3])
            if kind == 0:
                continue
            start, end = self._starts[node], self._ends[node]
            if kind == 2:
                chunks.append(self._perm[start:end])
                continue
            left = lefts[node]
            if left < 0:            # leaf
                slice_perm = self._perm[start:end]
                mask = points_in_triangle(self.points[slice_perm], a, b, c)
                if mask.any():
                    chunks.append(slice_perm[mask])
                continue
            stack.append(left)
            stack.append(self._rights[node])
        if not chunks:
            return np.zeros(0, dtype=np.int64)
        out = np.concatenate(chunks)
        out.sort()
        return out

    def count_triangle(self, a: Point, b: Point, c: Point) -> int:
        if len(self.points) == 0:
            return 0
        pruner = _TrianglePruner(a, b, c)
        boxes = self._box_tuples
        total = 0
        stack = [0]
        while stack:
            node = stack.pop()
            box = boxes[node]
            kind = pruner.classify(box[0], box[1], box[2], box[3])
            if kind == 0:
                continue
            start, end = self._starts[node], self._ends[node]
            if kind == 2:
                total += int(end - start)
                continue
            left = self._lefts[node]
            if left < 0:
                slice_perm = self._perm[start:end]
                total += int(points_in_triangle(self.points[slice_perm],
                                                a, b, c).sum())
                continue
            stack.append(left)
            stack.append(self._rights[node])
        return total

    # ------------------------------------------------------------------
    def report_box(self, xmin: float, ymin: float, xmax: float,
                   ymax: float) -> np.ndarray:
        if len(self.points) == 0:
            return np.zeros(0, dtype=np.int64)
        chunks: List[np.ndarray] = []
        stack = [0]
        while stack:
            node = stack.pop()
            bxmin, bymin, bxmax, bymax = self._boxes[node]
            if bxmin > xmax or bxmax < xmin or bymin > ymax or bymax < ymin:
                continue
            start, end = self._starts[node], self._ends[node]
            if (bxmin >= xmin and bxmax <= xmax and
                    bymin >= ymin and bymax <= ymax):
                chunks.append(self._perm[start:end])
                continue
            left = self._lefts[node]
            if left < 0:
                slice_perm = self._perm[start:end]
                pts = self.points[slice_perm]
                mask = ((pts[:, 0] >= xmin) & (pts[:, 0] <= xmax) &
                        (pts[:, 1] >= ymin) & (pts[:, 1] <= ymax))
                if mask.any():
                    chunks.append(slice_perm[mask])
                continue
            stack.append(left)
            stack.append(self._rights[node])
        if not chunks:
            return np.zeros(0, dtype=np.int64)
        out = np.concatenate(chunks)
        out.sort()
        return out
