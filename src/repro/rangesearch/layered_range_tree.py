"""Layered range tree with fractional cascading (2-d range reporting).

The textbook structure: a balanced BST over x; every internal node
stores the y-sorted array of the points in its subtree plus *bridge*
arrays into its children's y-arrays.  A query rectangle
``[x1, x2] x [y1, y2]`` does a single binary search for ``y1``/``y2``
at the root and thereafter locates both y-positions in every canonical
node in O(1) via the bridges — fractional cascading brings the query
down from ``O(log^2 n + k)`` to ``O(log n + k)``.

Space is ``O(n log n)``; construction is ``O(n log n)``.  Triangle
queries are answered by reporting the triangle's bounding box and
filtering with the exact point-in-triangle predicate (documented
substitution; see DESIGN.md).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..geometry.predicates import points_in_triangle
from .base import Point, TriangleRangeIndex


class _Node:
    __slots__ = ("split_x", "ys", "idx", "left", "right",
                 "bridge_left", "bridge_right", "point_x")

    def __init__(self):
        self.split_x: float = 0.0
        self.ys: Optional[np.ndarray] = None        # sorted y values
        self.idx: Optional[np.ndarray] = None       # original point indices
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.bridge_left: Optional[np.ndarray] = None
        self.bridge_right: Optional[np.ndarray] = None
        self.point_x: float = 0.0                   # for leaves


class LayeredRangeTreeIndex(TriangleRangeIndex):
    """Fractional-cascading layered range tree."""

    def __init__(self, points: np.ndarray):
        super().__init__(points)
        n = len(self.points)
        self._root: Optional[_Node] = None
        if n == 0:
            return
        order = np.lexsort((self.points[:, 1], self.points[:, 0]))
        self._root = self._build(order)

    def _build(self, order: np.ndarray) -> _Node:
        node = _Node()
        pts = self.points[order]
        y_order = np.argsort(pts[:, 1], kind="mergesort")
        node.idx = order[y_order]
        node.ys = pts[y_order, 1]
        if len(order) == 1:
            node.point_x = float(pts[0, 0])
            node.split_x = node.point_x
            return node
        mid = len(order) // 2
        node.split_x = float(pts[mid - 1, 0])    # max x in the left subtree
        node.left = self._build(order[:mid])
        node.right = self._build(order[mid:])
        # Bridges: for every position p in node.ys (including the
        # one-past-the-end position), the position of the first child
        # element >= node.ys[p].
        node.bridge_left = np.concatenate([
            np.searchsorted(node.left.ys, node.ys, side="left"),
            [len(node.left.ys)]]).astype(np.int64)
        node.bridge_right = np.concatenate([
            np.searchsorted(node.right.ys, node.ys, side="left"),
            [len(node.right.ys)]]).astype(np.int64)
        return node

    # ------------------------------------------------------------------
    # Rectangle queries
    # ------------------------------------------------------------------
    def _collect(self, x1: float, y1: float, x2: float, y2: float,
                 out: List[np.ndarray], count_only: bool) -> int:
        """Walk the tree; append canonical slices to ``out`` (or count)."""
        node = self._root
        if node is None:
            return 0
        plo = int(np.searchsorted(node.ys, y1, side="left"))
        phi = int(np.searchsorted(node.ys, y2, side="right"))
        total = 0

        def leaf_hit(leaf: _Node, lo: int, hi: int) -> int:
            if lo < hi and x1 <= leaf.point_x <= x2:
                if not count_only:
                    out.append(leaf.idx[lo:hi])
                return hi - lo
            return 0

        # Descend to the split node, cascading both y-positions.  The
        # comparisons treat points as distinct composite keys
        # (x, y, index): with duplicates of split_x possibly in both
        # subtrees, "entirely left" needs strict x2 < split_x while
        # "entirely right" needs strict x1 > split_x.
        while node.left is not None:
            if x2 < node.split_x:
                plo = int(node.bridge_left[plo])
                phi = int(node.bridge_left[phi])
                node = node.left
            elif x1 > node.split_x:
                plo = int(node.bridge_right[plo])
                phi = int(node.bridge_right[phi])
                node = node.right
            else:
                break
        if node.left is None:
            return leaf_hit(node, plo, phi)

        split, slo, shi = node, plo, phi
        # Left boundary walk: everything here has x <= split.split_x < x2,
        # so only the lower bound x1 matters.
        v = split.left
        vlo = int(split.bridge_left[slo])
        vhi = int(split.bridge_left[shi])
        while v.left is not None:
            if x1 <= v.split_x:
                rlo = int(v.bridge_right[vlo])
                rhi = int(v.bridge_right[vhi])
                if rlo < rhi:
                    total += rhi - rlo
                    if not count_only:
                        out.append(v.right.idx[rlo:rhi])
                vlo = int(v.bridge_left[vlo])
                vhi = int(v.bridge_left[vhi])
                v = v.left
            else:
                vlo = int(v.bridge_right[vlo])
                vhi = int(v.bridge_right[vhi])
                v = v.right
        total += leaf_hit(v, vlo, vhi)

        # Right boundary walk: everything here has x >= split.split_x
        # >= x1, so only the upper bound x2 matters.  The weak
        # comparison keeps duplicates of split_x on the reported side.
        v = split.right
        vlo = int(split.bridge_right[slo])
        vhi = int(split.bridge_right[shi])
        while v.left is not None:
            if x2 >= v.split_x:
                llo = int(v.bridge_left[vlo])
                lhi = int(v.bridge_left[vhi])
                if llo < lhi:
                    total += lhi - llo
                    if not count_only:
                        out.append(v.left.idx[llo:lhi])
                vlo = int(v.bridge_right[vlo])
                vhi = int(v.bridge_right[vhi])
                v = v.right
            else:
                vlo = int(v.bridge_left[vlo])
                vhi = int(v.bridge_left[vhi])
                v = v.left
        total += leaf_hit(v, vlo, vhi)
        return total

    def report_box(self, xmin: float, ymin: float, xmax: float,
                   ymax: float) -> np.ndarray:
        chunks: List[np.ndarray] = []
        self._collect(xmin, ymin, xmax, ymax, chunks, count_only=False)
        if not chunks:
            return np.zeros(0, dtype=np.int64)
        out = np.concatenate(chunks)
        out.sort()
        return out

    def count_box(self, xmin: float, ymin: float, xmax: float,
                  ymax: float) -> int:
        return self._collect(xmin, ymin, xmax, ymax, [], count_only=True)

    # ------------------------------------------------------------------
    # Triangle queries: bbox report + exact filter
    # ------------------------------------------------------------------
    def report_triangle(self, a: Point, b: Point, c: Point) -> np.ndarray:
        from ..geometry.primitives import EPSILON
        xs = (a[0], b[0], c[0])
        ys = (a[1], b[1], c[1])
        # Inflate by the predicate tolerance so boundary points the
        # exact test accepts are not pruned by the bbox filter.
        candidates = self.report_box(min(xs) - EPSILON, min(ys) - EPSILON,
                                     max(xs) + EPSILON, max(ys) + EPSILON)
        if len(candidates) == 0:
            return candidates
        mask = points_in_triangle(self.points[candidates], a, b, c)
        return candidates[mask]
