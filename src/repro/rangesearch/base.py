"""Common interface for the simplex-range-search backends.

The matcher (Section 2.5) needs two operations over the static set of
all shape-base vertices:

* ``report_triangle(a, b, c)`` — indices of the vertices inside a query
  triangle (simplex range *reporting*, the per-iteration workhorse), and
* ``count_triangle(a, b, c)`` — their number (simplex range *counting*,
  used while calibrating the initial envelope width in step 1).

The paper cites near-quadratic-space structures with
``O(log^3 n + kappa)`` query time [17]; see DESIGN.md for why we
substitute a kd-tree and a fractional-cascading range tree.  All
backends are exact and interchangeable — equivalence against the brute
oracle is property-tested.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..geometry.primitives import as_points

Point = Sequence[float]


class TriangleRangeIndex:
    """Abstract base: a static point set queryable by triangle."""

    def __init__(self, points: np.ndarray):
        self.points = as_points(points)
        self.points.setflags(write=False)

    def __len__(self) -> int:
        return len(self.points)

    def report_triangle(self, a: Point, b: Point, c: Point) -> np.ndarray:
        """Sorted indices of the points inside (or on) triangle ``abc``."""
        raise NotImplementedError

    def count_triangle(self, a: Point, b: Point, c: Point) -> int:
        """Number of points inside (or on) triangle ``abc``."""
        return len(self.report_triangle(a, b, c))

    def report_box(self, xmin: float, ymin: float, xmax: float,
                   ymax: float) -> np.ndarray:
        """Sorted indices of the points inside the closed AABB."""
        raise NotImplementedError

    def count_box(self, xmin: float, ymin: float, xmax: float,
                  ymax: float) -> int:
        return len(self.report_box(xmin, ymin, xmax, ymax))


def make_index(points: np.ndarray, backend: str = "kdtree",
               **kwargs) -> TriangleRangeIndex:
    """Factory for the configured range-search backend.

    ``backend`` is one of ``"kdtree"``, ``"rangetree"`` or ``"brute"``.
    """
    from .brute import BruteForceIndex
    from .external import ExternalSpatialIndex
    from .kdtree import KdTreeIndex
    from .layered_range_tree import LayeredRangeTreeIndex

    backends = {
        "kdtree": KdTreeIndex,
        "rangetree": LayeredRangeTreeIndex,
        "brute": BruteForceIndex,
        "external": ExternalSpatialIndex,
    }
    try:
        cls = backends[backend]
    except KeyError:
        raise ValueError(f"unknown range-search backend {backend!r}; "
                         f"expected one of {sorted(backends)}") from None
    return cls(points, **kwargs)
