"""Common interface for the simplex-range-search backends.

The matcher (Section 2.5) needs two operations over the static set of
all shape-base vertices:

* ``report_triangle(a, b, c)`` — indices of the vertices inside a query
  triangle (simplex range *reporting*, the per-iteration workhorse), and
* ``count_triangle(a, b, c)`` — their number (simplex range *counting*,
  used while calibrating the initial envelope width in step 1).

Each envelope iteration asks about O(m) cover triangles at once, so
every backend also answers the *batch* forms:

* ``report_triangles(triangles)`` — the deduplicated union of the
  per-triangle reports, and
* ``count_triangles(triangles)`` — the per-triangle counts.

The defaults here loop over the scalar methods (exact by construction);
backends with a fused traversal (the kd-tree, the brute scan) override
them.  Batched answers are required to match the per-triangle loop
bit-for-bit — that equivalence is property-tested across all backends.

The paper cites near-quadratic-space structures with
``O(log^3 n + kappa)`` query time [17]; see DESIGN.md for why we
substitute a kd-tree and a fractional-cascading range tree.  All
backends are exact and interchangeable — equivalence against the brute
oracle is property-tested.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..geometry.primitives import as_points

Point = Sequence[float]


def as_triangle_array(triangles) -> np.ndarray:
    """Normalize a batch of triangles to a float64 ``(m, 3, 2)`` array.

    Accepts a sequence of ``(3, 2)`` array-likes (the output of
    :func:`repro.geometry.envelope.band_cover_triangles`) or an already
    stacked ``(m, 3, 2)`` array; zero-copy for the latter.
    """
    if isinstance(triangles, np.ndarray) and triangles.ndim == 3 and \
            triangles.shape[1:] == (3, 2) and triangles.dtype == np.float64:
        return triangles
    array = np.asarray(triangles, dtype=np.float64)
    if array.size == 0:
        return np.zeros((0, 3, 2))
    if array.ndim == 2 and array.shape == (3, 2):
        array = array[None, :, :]
    if array.ndim != 3 or array.shape[1:] != (3, 2):
        raise ValueError(f"expected (m, 3, 2) triangles, got array of "
                         f"shape {array.shape}")
    return array


class TriangleRangeIndex:
    """Abstract base: a static point set queryable by triangle."""

    def __init__(self, points: np.ndarray):
        self.points = as_points(points)
        self.points.setflags(write=False)

    def __len__(self) -> int:
        return len(self.points)

    def report_triangle(self, a: Point, b: Point, c: Point) -> np.ndarray:
        """Sorted indices of the points inside (or on) triangle ``abc``."""
        raise NotImplementedError

    def count_triangle(self, a: Point, b: Point, c: Point) -> int:
        """Number of points inside (or on) triangle ``abc``."""
        return len(self.report_triangle(a, b, c))

    def report_triangles(self, triangles) -> np.ndarray:
        """Sorted unique indices of the points inside *any* triangle.

        Equals ``unique(concat(report_triangle(t) for t in triangles))``
        — the contract the batch-vs-scalar equivalence tests enforce.
        """
        tris = as_triangle_array(triangles)
        chunks = [self.report_triangle(t[0], t[1], t[2]) for t in tris]
        chunks = [c for c in chunks if len(c)]
        if not chunks:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(chunks))

    def count_triangles(self, triangles) -> np.ndarray:
        """Per-triangle point counts, as an ``(m,)`` int64 array.

        A point inside several (overlapping) triangles contributes to
        each of their counts, exactly like the per-triangle loop.
        """
        tris = as_triangle_array(triangles)
        return np.array([self.count_triangle(t[0], t[1], t[2])
                         for t in tris], dtype=np.int64)

    def report_box(self, xmin: float, ymin: float, xmax: float,
                   ymax: float) -> np.ndarray:
        """Sorted indices of the points inside the closed AABB."""
        raise NotImplementedError

    def count_box(self, xmin: float, ymin: float, xmax: float,
                  ymax: float) -> int:
        return len(self.report_box(xmin, ymin, xmax, ymax))

    def removed(self, keep_mask: np.ndarray) -> "TriangleRangeIndex":
        """A new index over ``points[keep_mask]`` (ids renumbered densely).

        The default rebuilds from scratch; backends with a patchable
        layout (the kd-tree) override this with a structural O(n)
        shrink.  The returned index is always a *new* object — callers
        rely on identity change to invalidate derived caches.
        """
        keep = np.asarray(keep_mask, dtype=bool)
        if keep.shape != (len(self.points),):
            raise ValueError("keep_mask must have one flag per point")
        return type(self)(self.points[keep])


def make_index(points: np.ndarray, backend: str = "kdtree",
               **kwargs) -> TriangleRangeIndex:
    """Factory for the configured range-search backend.

    ``backend`` is one of ``"kdtree"``, ``"rangetree"`` or ``"brute"``.
    """
    from .brute import BruteForceIndex
    from .external import ExternalSpatialIndex
    from .kdtree import KdTreeIndex
    from .layered_range_tree import LayeredRangeTreeIndex

    backends = {
        "kdtree": KdTreeIndex,
        "rangetree": LayeredRangeTreeIndex,
        "brute": BruteForceIndex,
        "external": ExternalSpatialIndex,
    }
    try:
        cls = backends[backend]
    except KeyError:
        raise ValueError(f"unknown range-search backend {backend!r}; "
                         f"expected one of {sorted(backends)}") from None
    return cls(points, **kwargs)
