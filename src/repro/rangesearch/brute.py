"""Brute-force range search: the correctness oracle.

O(n) per query; used in tests to validate the tree backends and as a
sane default for tiny bases where building an index is not worth it.
"""

from __future__ import annotations

import numpy as np

from ..geometry.predicates import points_in_triangle
from .base import Point, TriangleRangeIndex, as_triangle_array


class BruteForceIndex(TriangleRangeIndex):
    """Linear-scan implementation of :class:`TriangleRangeIndex`."""

    def report_triangle(self, a: Point, b: Point, c: Point) -> np.ndarray:
        mask = points_in_triangle(self.points, a, b, c)
        return np.nonzero(mask)[0]

    def count_triangle(self, a: Point, b: Point, c: Point) -> int:
        return int(points_in_triangle(self.points, a, b, c).sum())

    def report_triangles(self, triangles) -> np.ndarray:
        # Accumulate one membership mask; nonzero of the union equals
        # the deduplicated concatenation of the per-triangle reports.
        tris = as_triangle_array(triangles)
        if len(self.points) == 0 or len(tris) == 0:
            return np.zeros(0, dtype=np.int64)
        mask = np.zeros(len(self.points), dtype=bool)
        for t in tris:
            mask |= points_in_triangle(self.points, t[0], t[1], t[2])
        return np.nonzero(mask)[0]

    def report_box(self, xmin: float, ymin: float, xmax: float,
                   ymax: float) -> np.ndarray:
        p = self.points
        mask = ((p[:, 0] >= xmin) & (p[:, 0] <= xmax) &
                (p[:, 1] >= ymin) & (p[:, 1] <= ymax))
        return np.nonzero(mask)[0]
