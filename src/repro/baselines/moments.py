"""Dimensionality-reduction baseline (QBIC-style moment features).

QBIC's shape path reduces each shape to a low-dimensional feature
vector and compares vectors with Euclidean distance; the paper notes
this is "sensitive to rotation, translation and scaling" [24].  We use
scale-normalized central moments of the vertex set up to order 3:
translation invariant and scale normalized but deliberately *not*
rotation invariant — the failure mode the motivating benchmarks
demonstrate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

from ..geometry.polyline import Shape

#: (p, q) exponents of the moments used, all orders 2..3.
MOMENT_ORDERS = ((2, 0), (1, 1), (0, 2), (3, 0), (2, 1), (1, 2), (0, 3))


def moment_feature(shape: Shape) -> np.ndarray:
    """Normalized central moments of the vertex set.

    ``mu_pq / mu_00^(1 + (p+q)/2)`` — the classic scale-normalized
    central moments, computed on the vertex point set with unit mass
    per vertex.
    """
    points = shape.vertices
    center = points.mean(axis=0)
    dx = points[:, 0] - center[0]
    dy = points[:, 1] - center[1]
    mu00 = float(len(points))
    spread = float((dx * dx + dy * dy).mean()) ** 0.5
    if spread <= 0:
        spread = 1.0
    dx = dx / spread
    dy = dy / spread
    return np.array([float((dx ** p * dy ** q).sum()) / mu00
                     for p, q in MOMENT_ORDERS])


class MomentFeatureIndex:
    """Nearest-neighbour retrieval on moment vectors."""

    def __init__(self):
        self._vectors: List[np.ndarray] = []
        self._ids: List[int] = []
        self.shapes: Dict[int, Shape] = {}
        self._tree: Optional[cKDTree] = None

    def add_shape(self, shape: Shape, shape_id: int) -> int:
        if shape_id in self.shapes:
            raise ValueError(f"shape id {shape_id} already present")
        self.shapes[shape_id] = shape
        self._vectors.append(moment_feature(shape))
        self._ids.append(shape_id)
        self._tree = None
        return shape_id

    def query(self, shape: Shape, k: int = 1) -> List[Tuple[int, float]]:
        if not self._vectors:
            raise ValueError("index is empty")
        if self._tree is None:
            self._tree = cKDTree(np.vstack(self._vectors))
        fetch = min(k, len(self._vectors))
        distances, indices = self._tree.query(moment_feature(shape), k=fetch)
        distances = np.atleast_1d(distances)
        indices = np.atleast_1d(indices)
        return [(self._ids[int(i)], float(d))
                for d, i in zip(distances, indices)]

    def __repr__(self) -> str:
        return f"MomentFeatureIndex(shapes={len(self.shapes)})"
