"""Baseline retrieval methods the paper compares against: the
Mehrotra-Gary per-edge feature index and a QBIC-style moment-feature
(dimensionality-reduction) matcher.
"""

from .mehrotra_gary import MehrotraGaryIndex, edge_normalized_feature
from .moments import MomentFeatureIndex, moment_feature

__all__ = [
    "MehrotraGaryIndex", "MomentFeatureIndex", "edge_normalized_feature",
    "moment_feature",
]
