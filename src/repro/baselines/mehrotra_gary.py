"""The Mehrotra-Gary edge-normalized feature index (the paper's
principal comparator [15, 16, 21]).

Every shape is stored once per edge, *twice* (both edge directions):
the shape is translated/rotated/scaled so that edge lands on
((0, 0), (1, 0)) and a fixed-dimension feature vector is extracted from
the normalized boundary.  Retrieval normalizes the query about each of
*its* edges and nearest-neighbours the vectors (Euclidean distance).

This reconstruction exposes the two weaknesses the paper calls out:

* space: ~``2 * E`` stored copies per shape versus the diameter
  method's ~2 per alpha-diameter, and
* fragility to local distortion: if no *edge pair* between query and
  target survives distortion intact, every per-edge frame disagrees and
  the match is lost (Figure 2), whereas the global diameter frame is
  stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

from ..geometry.polyline import Shape
from ..geometry.transform import SimilarityTransform
from ..imaging.simplify import resample_polyline


def edge_normalized_feature(shape: Shape, edge_index: int, reverse: bool,
                            samples: int = 16) -> np.ndarray:
    """Feature vector of ``shape`` in the frame of one of its edges.

    The boundary is resampled to ``samples`` points at uniform arc
    length starting from the normalizing edge, after mapping that edge
    to ((0, 0), (1, 0)); the flattened coordinates are the feature.
    """
    starts, ends = shape.edges()
    a, b = starts[edge_index], ends[edge_index]
    if reverse:
        a, b = b, a
    transform = SimilarityTransform.mapping_segment_to_unit(a, b)
    normalized = transform.apply(shape.vertices)
    # Rotate the vertex sequence so the walk starts at the edge.
    rolled = np.roll(normalized, -edge_index, axis=0)
    if shape.closed:
        chain = np.vstack([rolled, rolled[:1]])
    else:
        chain = rolled
    total = float(np.hypot(*np.diff(chain, axis=0).T).sum())
    spacing = max(total / samples, 1e-9)
    resampled = resample_polyline(chain, spacing, closed=False)
    # Uniform count regardless of rounding:
    if len(resampled) >= samples:
        resampled = resampled[:samples]
    else:
        pad = np.repeat(resampled[-1:], samples - len(resampled), axis=0)
        resampled = np.vstack([resampled, pad])
    return resampled.ravel()


@dataclass
class _StoredVector:
    shape_id: int
    edge_index: int
    reverse: bool


class MehrotraGaryIndex:
    """Per-edge feature index with Euclidean nearest-neighbour search."""

    def __init__(self, samples: int = 16):
        if samples < 4:
            raise ValueError("need at least 4 samples")
        self.samples = int(samples)
        self._vectors: List[np.ndarray] = []
        self._records: List[_StoredVector] = []
        self.shapes: Dict[int, Shape] = {}
        self._tree: Optional[cKDTree] = None

    def add_shape(self, shape: Shape, shape_id: int) -> int:
        """Index one shape under all of its edge frames (both ways)."""
        if shape_id in self.shapes:
            raise ValueError(f"shape id {shape_id} already present")
        self.shapes[shape_id] = shape
        for edge_index in range(shape.num_edges):
            for reverse in (False, True):
                vector = edge_normalized_feature(shape, edge_index, reverse,
                                                 self.samples)
                self._vectors.append(vector)
                self._records.append(_StoredVector(shape_id, edge_index,
                                                   reverse))
        self._tree = None
        return shape_id

    @property
    def num_stored_vectors(self) -> int:
        """Space accounting: stored copies (the paper's overhead claim)."""
        return len(self._vectors)

    def _ensure_tree(self) -> cKDTree:
        if self._tree is None:
            if not self._vectors:
                raise ValueError("index is empty")
            self._tree = cKDTree(np.vstack(self._vectors))
        return self._tree

    def query(self, shape: Shape, k: int = 1,
              neighbors_per_edge: int = 4) -> List[Tuple[int, float]]:
        """Best ``k`` shapes for a query, as ``(shape_id, distance)``.

        The query is normalized about each of its edges (both ways);
        each frame fetches its nearest stored vectors and shapes are
        ranked by their best frame-to-frame vector distance.
        """
        tree = self._ensure_tree()
        best: Dict[int, float] = {}
        fetch = min(neighbors_per_edge, len(self._vectors))
        for edge_index in range(shape.num_edges):
            for reverse in (False, True):
                vector = edge_normalized_feature(shape, edge_index, reverse,
                                                 self.samples)
                distances, indices = tree.query(vector, k=fetch)
                distances = np.atleast_1d(distances)
                indices = np.atleast_1d(indices)
                for distance, index in zip(distances, indices):
                    record = self._records[int(index)]
                    previous = best.get(record.shape_id)
                    if previous is None or distance < previous:
                        best[record.shape_id] = float(distance)
        ranked = sorted(best.items(), key=lambda kv: kv[1])
        return ranked[:k]

    def __repr__(self) -> str:
        return (f"MehrotraGaryIndex(shapes={len(self.shapes)}, "
                f"vectors={self.num_stored_vectors}, "
                f"samples={self.samples})")
