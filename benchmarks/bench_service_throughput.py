"""Service-tier throughput: workers x cache sweep over a synthetic base.

Not a paper figure — the service layer (`repro.service`) is repo
infrastructure — but it follows the same harness conventions: scaled
synthetic workload from ``conftest``, a persisted table under
``benchmarks/results/``, and one JSON row per configuration so runs
can be diffed mechanically.

A closed-loop generator (one client thread per worker, each issuing
its next query only when the previous completes) sweeps worker counts
1/2/4 with the query-result cache on and off.  A priming pass absorbs
first-touch costs (numpy initialization, allocator warm-up) so the
first configuration measured is not systematically the slowest.

No hard timing assertions: on a single-core host (common in CI)
multi-worker parity is the ceiling for CPU-bound queries; the cpu
count is recorded in the output so readers can interpret the sweep.
"""

import json
import os
import threading
import time

import numpy as np

from repro.imaging import make_query_set
from repro.service import RetrievalService, ServiceConfig

from .conftest import BENCH_QUERIES, write_table

WORKER_SWEEP = (1, 2, 4)
NUM_SHARDS = 4


def _closed_loop(service, sketches, total_queries, workers):
    """Drive ``total_queries`` through ``workers`` client threads."""
    position = {"next": 0}
    lock = threading.Lock()

    def client():
        while True:
            with lock:
                index = position["next"]
                if index >= total_queries:
                    return
                position["next"] = index + 1
            service.retrieve(sketches[index % len(sketches)], k=1)

    start = time.perf_counter()
    clients = [threading.Thread(target=client) for _ in range(workers)]
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join()
    return time.perf_counter() - start


def test_service_throughput_sweep(base, workload):
    distinct = max(4, BENCH_QUERIES)
    total_queries = distinct * 6
    sketches = [query for query, _ in
                make_query_set(workload, distinct,
                               np.random.default_rng(41), noise=0.012)]

    # Priming pass: pay one-time process costs outside every timed run.
    with RetrievalService.from_base(base, ServiceConfig(
            num_shards=NUM_SHARDS, workers=1, cache_capacity=0)) as primer:
        for sketch in sketches:
            primer.retrieve(sketch, k=1)

    rows = []
    for cache_on in (False, True):
        for workers in WORKER_SWEEP:
            config = ServiceConfig(
                num_shards=NUM_SHARDS, workers=workers,
                cache_capacity=256 if cache_on else 0)
            with RetrievalService.from_base(base, config) as service:
                wall = _closed_loop(service, sketches, total_queries,
                                    workers)
                snapshot = service.snapshot()
            latency = snapshot["histograms"]["latency.total"]
            served = snapshot["counters"].get("queries.served", 0)
            assert served == total_queries      # nothing shed or lost
            rows.append({
                "workers": workers,
                "shards": NUM_SHARDS,
                "cache": cache_on,
                "queries": total_queries,
                "served": served,
                "shed": snapshot["counters"].get("queries.shed", 0),
                "wall_s": round(wall, 4),
                "throughput_qps": round(served / wall, 2),
                "latency_p50_ms": round(latency["p50"] * 1e3, 2),
                "latency_p90_ms": round(latency["p90"] * 1e3, 2),
                "latency_p99_ms": round(latency["p99"] * 1e3, 2),
                "cache_hit_ratio": round(
                    snapshot["rates"]["cache_hit_ratio"], 4),
            })

    lines = [
        "Service throughput: closed-loop workers x cache sweep",
        f"(cpus={os.cpu_count()}, shards={NUM_SHARDS}, "
        f"base={base.num_shapes} shapes, {total_queries} queries, "
        f"{distinct} distinct sketches)",
        "",
        f"{'cache':>6s} {'workers':>8s} {'qps':>9s} {'p50ms':>8s} "
        f"{'p90ms':>8s} {'hit':>7s}",
    ]
    for row in rows:
        lines.append(
            f"{'on' if row['cache'] else 'off':>6s} {row['workers']:>8d} "
            f"{row['throughput_qps']:>9.2f} {row['latency_p50_ms']:>8.2f} "
            f"{row['latency_p90_ms']:>8.2f} {row['cache_hit_ratio']:>7.4f}")
    lines.append("")
    lines.append("JSON rows:")
    lines.extend(json.dumps(row) for row in rows)
    write_table("service_throughput", lines)

    # Structural expectations only (timing is host-dependent):
    cached_rows = [row for row in rows if row["cache"]]
    uncached_rows = [row for row in rows if not row["cache"]]
    # Repeated sketches make the cache do real work...
    assert all(row["cache_hit_ratio"] > 0.5 for row in cached_rows)
    assert all(row["cache_hit_ratio"] == 0.0 for row in uncached_rows)
    # ...which shows up as throughput: every cached config beats the
    # fastest uncached one (cache hits skip the envelope search).
    assert min(r["throughput_qps"] for r in cached_rows) > \
        max(r["throughput_qps"] for r in uncached_rows)


def test_service_single_query_latency(base, workload, benchmark):
    """Micro-benchmark: one warm uncached retrieval through the service."""
    [(sketch, _)] = make_query_set(workload, 1,
                                   np.random.default_rng(43), noise=0.012)
    with RetrievalService.from_base(base, ServiceConfig(
            num_shards=NUM_SHARDS, workers=1, cache_capacity=0)) as service:
        service.retrieve(sketch, k=1)           # warm
        result = benchmark(service.retrieve, sketch, k=1)
    assert result.ok
    assert result.matches
