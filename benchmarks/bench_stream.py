"""Write path under live traffic: the PR 10 acceptance benchmark.

Runs :func:`repro.service.streambench.run_stream_scenario` (the same
engine behind ``repro serve-bench --stream``) over a sweep of corpus
sizes, in thread mode and process mode, and enforces the two headline
gates **at the largest size, in process mode** — the configuration
that serves production traffic:

* **interference** — query p99 while the ingest thread streams batches
  through the copy-on-write write path must stay within
  ``INTERFERENCE_CAP`` (2x) of the idle p99 measured on the *same
  (final) corpus* after quiesce — corpus growth is not interference.
  Writers append behind published epochs and folds run on a background
  scheduler, so readers never queue on a write lock;
* **delta publication** — the bytes shipped to process workers per
  pure-append version bump must be at least ``DELTA_ADVANTAGE`` (10x)
  smaller than a full snapshot republish.  Deltas carry only the new
  rows; full republish cost grows with the whole corpus.

Checkpoint consistency (live core+delta answers bit-for-bit equal to a
service rebuilt from scratch over the same corpus, in *both* execution
modes) is asserted unconditionally at every size — a divergence
anywhere fails the run regardless of the perf numbers.

Rows are appended to ``BENCH_stream.json`` when ``--label`` is given
or ``REPRO_BENCH_LABEL`` is set (same trajectory protocol as the
other BENCH_*.json files).

Usage::

    PYTHONPATH=src python benchmarks/bench_stream.py --smoke
    PYTHONPATH=src python benchmarks/bench_stream.py \
        --sizes 30,60,120 --label "my-change"
"""

import argparse
import os
import sys
from pathlib import Path

from repro.query.workload import record_trajectory
from repro.service.streambench import (STREAM_TRAJECTORY_HEADER,
                                       run_stream_scenario)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_stream.json"
SMOKE_SIZES = (12, 32)
#: Smoke batches are smaller so the 10x delta-vs-full gate is judged
#: fairly at CI scale: a delta round scales with the batch, a full
#: republish with the whole corpus.
SMOKE_BATCH = 4
SIZES = (16, 32, 64)
BATCH = 6
#: Stream-phase p99 may be at most this multiple of the idle p99.
INTERFERENCE_CAP = 2.0
#: Full republish must move at least this many times the bytes of a
#: delta round.
DELTA_ADVANTAGE = 10.0


#: Seconds between ingest batches — the modelled stream arrival
#: cadence.  Back-to-back batches saturate a core with encode work,
#: which on the 1-core CI host measures CPU starvation, not write-path
#: interference (the thing this benchmark gates on).
INGEST_PAUSE = 0.05
#: Process-tier compaction cadence: a full republish resets worker
#: brute tails after this many delta rounds.  In process mode the
#: parent never queries, so its fold scheduler stays idle and the
#: compaction republish is what bounds worker tail growth — the
#: service default (16) is tuned for bigger corpora than this sweep.
COMPACT_EVERY = 4


def run(sizes, seed=20020604, chaos=None, batch_size=BATCH):
    """One streaming sweep; returns all rows (size-annotated)."""
    rows = []
    for num_images in sizes:
        batches = max(6, num_images // 4)
        size_rows, escaped, failures = run_stream_scenario(
            images=num_images,
            queries=24, distinct=10, k=3,
            shards=4,
            modes=[("thread", 2), ("process", 2)],
            batches=batches, batch_size=batch_size, checkpoints=3,
            ingest_pause=INGEST_PAUSE,
            publish_compact_every=COMPACT_EVERY,
            chaos=chaos, seed=seed)
        for row in size_rows:
            row["images"] = num_images
            rows.append(row)
        if escaped:
            raise AssertionError(
                f"escaped exceptions at {num_images} images: {escaped}")
        if failures:
            raise AssertionError(
                f"scenario failures at {num_images} images: {failures}")
    return rows


def render(rows):
    lines = [f"{'images':>7} {'mode':<12} {'corpus':>7} {'idle_p99':>9} "
             f"{'stream_p99':>11} {'quiet_p99':>10} {'x':>6} "
             f"{'ingest/s':>9} {'waits':>6} {'folds':>6} {'ckpt':>5}"]
    for row in rows:
        lines.append(
            f"{row['images']:>7d} {row['mode']:<12} "
            f"{row['corpus_shapes']:>7d} {row['idle_p99_ms']:>9.2f} "
            f"{row['stream_p99_ms']:>11.2f} "
            f"{row['final_idle_p99_ms']:>10.2f} "
            f"{row['p99_interference']:>6.2f} "
            f"{row['ingest_rate_sps']:>9.1f} "
            f"{row['backpressure_waits']:>6d} {row['folds']:>6d} "
            f"{row['checkpoints']:>4d}/{row['checkpoint_mismatches']}")
    for row in rows:
        if "sync" in row:
            sync = row["sync"]
            lines.append(
                f"    {row['images']} images {row['mode']}: "
                f"{sync['delta_rounds']} delta rounds avg "
                f"{row.get('delta_bytes_per_round', 0)} B vs "
                f"{sync['full_rounds']} full rounds avg "
                f"{row.get('full_bytes_per_round', 0)} B")
    print("\n".join(lines))


def check_acceptance(rows):
    """The PR gates, judged at the largest size in process mode."""
    largest = max(row["images"] for row in rows)
    process = [row for row in rows
               if row["images"] == largest
               and row["execution"] == "process"]
    failures = []
    if not process:
        return [f"no process-mode row at {largest} images"]
    row = process[0]
    if row["checkpoint_mismatches"]:
        failures.append(
            f"{row['checkpoint_mismatches']} checkpoint divergences")
    if row["final_idle_p99_ms"] and \
            row["stream_p99_ms"] > \
            INTERFERENCE_CAP * row["final_idle_p99_ms"]:
        failures.append(
            f"stream p99 {row['stream_p99_ms']:.2f} ms > "
            f"{INTERFERENCE_CAP}x same-corpus idle p99 "
            f"{row['final_idle_p99_ms']:.2f} ms")
    delta = row.get("delta_bytes_per_round")
    full = row.get("full_bytes_per_round")
    if not delta or not full:
        failures.append("no delta/full publication rounds to compare "
                        f"(delta={delta}, full={full})")
    elif full < DELTA_ADVANTAGE * delta:
        failures.append(
            f"delta round {delta} B is only "
            f"{full / delta:.1f}x smaller than a full republish "
            f"{full} B (need >= {DELTA_ADVANTAGE}x)")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--sizes", default=None,
                        help="comma-separated base image counts "
                             f"(default {','.join(map(str, SIZES))}; "
                             "sized for a small CI host — raise them "
                             "on real hardware)")
    parser.add_argument("--seed", type=int, default=20020604)
    parser.add_argument("--chaos", type=int, default=None, metavar="SEED",
                        help="SIGKILL process worker SEED %% nprocs "
                             "mid-stream at every size; checkpoints "
                             "must still pass after revive+resync")
    parser.add_argument("--smoke", action="store_true",
                        help=f"quick CI sizes {SMOKE_SIZES}")
    parser.add_argument("--label", default=None,
                        help="append rows to BENCH_stream.json under "
                             "this label (default: REPRO_BENCH_LABEL)")
    args = parser.parse_args(argv)

    if args.smoke:
        sizes, batch_size = SMOKE_SIZES, SMOKE_BATCH
    elif args.sizes:
        sizes = tuple(int(s) for s in args.sizes.split(","))
        batch_size = BATCH
    else:
        sizes, batch_size = SIZES, BATCH
    rows = run(sizes, seed=args.seed, chaos=args.chaos,
               batch_size=batch_size)
    render(rows)

    label = args.label or os.environ.get("REPRO_BENCH_LABEL")
    if label:
        record_trajectory(rows, label, BENCH_JSON,
                          header=STREAM_TRAJECTORY_HEADER)
        print(f"\nrecorded trajectory point {label!r} -> {BENCH_JSON}")

    failures = check_acceptance(rows)
    if failures:
        print("\nFAIL: streaming acceptance gates not met at the "
              "largest size:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    largest = max(row["images"] for row in rows)
    row = [r for r in rows if r["images"] == largest
           and r["execution"] == "process"][0]
    print(f"\nOK: at {largest} images (process mode) stream p99 is "
          f"{row['p99_interference']:.2f}x idle p99 and a delta round "
          f"ships {row['full_bytes_per_round'] / row['delta_bytes_per_round']:.1f}x "
          f"less data than a full republish")
    return 0


if __name__ == "__main__":
    sys.exit(main())
