"""Noise tolerance: the abstract's headline claim, versus baselines.

Regeneration logic: :func:`repro.experiments.noise_tolerance`.
"""

import pytest

from repro.experiments import noise_tolerance
from .conftest import write_table


@pytest.fixture(scope="module")
def noise_experiment():
    result = noise_tolerance()
    write_table("noise_tolerance", [result.render()])
    return result


def test_ours_dominates_on_average(noise_experiment, benchmark):
    benchmark(lambda: None)
    assert noise_experiment.metrics["ours_mean"] >= \
        noise_experiment.metrics["mg_mean"]
    assert noise_experiment.metrics["ours_mean"] > \
        noise_experiment.metrics["moments_mean"]


def test_ours_robust_at_moderate_noise(noise_experiment, benchmark):
    """At 2% vertex noise ours still resolves nearly everything."""
    benchmark(lambda: None)
    assert noise_experiment.metrics["ours_at_0.02"] >= 0.8


def test_moments_fail_under_rotation(noise_experiment, benchmark):
    """The dimensionality-reduction strawman is rotation sensitive —
    even noiseless rotated queries confuse it."""
    benchmark(lambda: None)
    noiseless = noise_experiment.rows[0]
    ours, moments = noiseless[1], noiseless[3]
    assert moments <= ours
