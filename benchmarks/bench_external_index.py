"""Section 4: auxiliary geometric structures in external memory.

The paper stores the range-search structures on disk using optimal
external-memory indexes [2, 25].  This benchmark measures the disk-
resident spatial index directly: I/O per envelope-style query as the
buffer grows, and the selectivity of small queries versus full scans.
"""

import numpy as np
import pytest

from repro.geometry.envelope import band_cover_triangles
from repro.geometry.transform import normalize_about_diameter
from repro.rangesearch import ExternalSpatialIndex
from .conftest import write_table


@pytest.fixture(scope="module")
def external_experiment(base, query_set):
    points = base.vertex_points
    query, _ = query_set[0]
    normalized = normalize_about_diameter(query).shape
    triangles = band_cover_triangles(normalized, 0.0, 0.02)
    rows = [f"points: {len(points)}  query triangles: {len(triangles)}",
            "", f"{'buffer':>7s} {'reads/envelope query':>22s}"]
    series = {}
    for buffer_blocks in (1, 4, 16, 64, 256):
        index = ExternalSpatialIndex(points, buffer_blocks=buffer_blocks)
        index.reset_io()
        for triangle in triangles:
            index.report_triangle(triangle[0], triangle[1], triangle[2])
        series[buffer_blocks] = index.io_reads()
        rows.append(f"{buffer_blocks:7d} {series[buffer_blocks]:22d}")
    index = ExternalSpatialIndex(points, buffer_blocks=4)
    total_blocks = index.device.num_blocks
    rows += ["", f"index size: {total_blocks} blocks"]
    write_table("external_index", [
        "Section 4 reproduction: external-memory range index I/O",
        ""] + rows)
    return series, total_blocks, points, triangles


def test_external_buffer_monotone(external_experiment, benchmark):
    benchmark(lambda: None)
    series, _, _, _ = external_experiment
    buffers = sorted(series)
    for small, large in zip(buffers, buffers[1:]):
        assert series[large] <= series[small]


def test_external_envelope_query_selective(external_experiment, benchmark):
    """A thin-envelope query touches a fraction of the index blocks."""
    benchmark(lambda: None)
    series, total_blocks, _, _ = external_experiment
    assert series[256] < total_blocks


def test_external_query_throughput(external_experiment, benchmark):
    _, _, points, triangles = external_experiment
    index = ExternalSpatialIndex(points, buffer_blocks=64)
    tri = triangles[0]

    def run():
        return index.report_triangle(tri[0], tri[1], tri[2])

    benchmark(run)
