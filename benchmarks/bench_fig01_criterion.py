"""Figure 1: the similarity-criterion motivating example.

The figure shows a query Q matched against two candidates: A (globally
offset) and B (the intuitive answer, penalized by Hausdorff for one far
feature).  Regeneration logic:
:func:`repro.experiments.criterion_example`.
"""

import pytest

from repro.core.measures import average_distance, hausdorff, kth_hausdorff
from repro.experiments import criterion_example
from repro.experiments.criterion import (FIGURE1_A, FIGURE1_B,
                                         FIGURE1_QUERY)
from .conftest import write_table


@pytest.fixture(scope="module")
def figure1():
    result = criterion_example()
    write_table("fig01_criterion", [result.render()])
    return result


def test_fig01_hausdorff_matches_a(figure1, benchmark):
    benchmark(hausdorff, FIGURE1_QUERY, FIGURE1_A)
    assert figure1.metrics["Hausdorff H winner is B"] == 0.0


def test_fig01_average_matches_b(figure1, benchmark):
    benchmark(average_distance, FIGURE1_QUERY, FIGURE1_B)
    assert figure1.metrics["h_avg (ours) winner is B"] == 1.0


def test_fig01_kth_hausdorff_less_dominated(figure1, benchmark):
    """The generalized Hausdorff softens the farthest-point domination
    (here it even flips to B, since the spike is a minority of
    vertices)."""
    benchmark(kth_hausdorff, FIGURE1_QUERY, FIGURE1_B)
    rows = {row[0]: row for row in figure1.rows}
    h_a, h_b = rows["Hausdorff H"][1], rows["Hausdorff H"][2]
    k_a, k_b = rows["k-th Hausdorff"][1], rows["k-th Hausdorff"][2]
    assert (k_b / max(k_a, 1e-12)) < (h_b / max(h_a, 1e-12))
