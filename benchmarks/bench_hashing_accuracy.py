"""Section 3: geometric-hashing approximate retrieval.

The paper claims (a) close shapes land on the same or neighbouring
curves, (b) growing the family keeps expected bucket occupancy small so
lookup is logarithmic in the number of curves, and (c) the fallback
returns good approximate matches.  We sweep the family size k and
report top-1 accuracy, mean bucket occupancy and lookup cost.
"""

import numpy as np
import pytest

from repro.hashing import ApproximateRetriever
from repro.imaging import make_query_set
from .conftest import write_table


@pytest.fixture(scope="module")
def accuracy_sweep(base, workload):
    queries = make_query_set(workload, 10, np.random.default_rng(3),
                             noise=0.012)
    rows = []
    results = {}
    for k_curves in (10, 25, 50, 100):
        retriever = ApproximateRetriever(base, k_curves=k_curves,
                                         neighbor_radius=1)
        hits = 0
        candidate_counts = []
        for query, label in queries:
            matches = retriever.query(query, k=1)
            if not matches:
                continue
            image = workload.images[matches[0].image_id]
            shape_ids = base.shapes_of_image(matches[0].image_id)
            position = shape_ids.index(matches[0].shape_id)
            if position < len(image.labels) and \
                    image.labels[position] == label:
                hits += 1
            quadruple = retriever.signature_of(query)
            candidate_counts.append(
                len(retriever.table.candidates(quadruple, 1)))
        occupancy = retriever.table.occupancy()
        mean_bucket = (sum(size * count for size, count
                           in occupancy.items()) /
                       max(1, sum(occupancy.values())))
        results[k_curves] = {
            "accuracy": hits / len(queries),
            "mean_bucket": mean_bucket,
            "mean_candidates": float(np.mean(candidate_counts)),
        }
        rows.append(f"k={k_curves:4d}  top-1 accuracy {hits}/{len(queries)}"
                    f"  mean bucket {mean_bucket:6.1f}"
                    f"  candidates/query {np.mean(candidate_counts):7.1f}")
    write_table("hashing_accuracy", [
        "Section 3 reproduction: approximate retrieval vs family size k",
        f"base: {base.num_entries} entries", ""] + rows)
    return results


def test_hashing_more_curves_smaller_buckets(accuracy_sweep, benchmark):
    benchmark(lambda: None)
    buckets = [accuracy_sweep[k]["mean_bucket"] for k in (10, 25, 50, 100)]
    assert buckets[-1] < buckets[0]


def test_hashing_accuracy_reasonable(accuracy_sweep, benchmark):
    """With a generous family the approximate path finds the right
    prototype most of the time."""
    benchmark(lambda: None)
    assert accuracy_sweep[100]["accuracy"] >= 0.6


def test_hashing_query_cost(base, workload, benchmark):
    retriever = ApproximateRetriever(base, k_curves=50)
    query = workload.prototypes[0]
    matches = benchmark(retriever.query, query, 1)
    assert matches
