"""Section 4.2: the local-optimization layout.

The paper reports the greedy measure-driven layout cuts average I/O by
~30% relative to the best sort-based method, at the price of an
O(N^1.5 log N) rehash instead of O(N log N).  Regeneration logic:
:func:`repro.experiments.localopt_comparison`.
"""

import pytest

from repro.experiments import localopt_comparison
from repro.storage import rehash_cost_localopt, rehash_cost_sorted
from .conftest import BENCH_IMAGES, BENCH_QUERIES, write_table


@pytest.fixture(scope="module")
def localopt_experiment():
    result = localopt_comparison(num_images=BENCH_IMAGES,
                                 num_queries=BENCH_QUERIES)
    write_table("localopt_layout", [result.render()])
    return result


def test_localopt_beats_or_matches_best_sort(localopt_experiment,
                                             benchmark):
    """At paper scale localopt is ~30% better; at our scaled-down size
    we assert it is at least as good as the best sorting method."""
    benchmark(lambda: None)
    assert localopt_experiment.metrics["io_localopt"] <= \
        localopt_experiment.metrics["best_sort"] * 1.02


def test_rehash_cost_models(benchmark):
    """O(N log N) vs O(N^1.5 log N): the paper's rehash trade-off."""
    benchmark(lambda: None)
    for n in (1_000, 10_000, 100_000, 550_000):
        assert rehash_cost_localopt(n) > rehash_cost_sorted(n)
    ratio_small = rehash_cost_localopt(1_000) / rehash_cost_sorted(1_000)
    ratio_large = rehash_cost_localopt(100_000) / \
        rehash_cost_sorted(100_000)
    assert ratio_large == pytest.approx(ratio_small * 10.0, rel=0.01)


def test_localopt_layout_build_cost(base, benchmark):
    """The greedy layout build is the measured expensive step."""
    from repro.hashing import HashCurveFamily
    from repro.storage import compute_signatures, make_layout
    signatures = compute_signatures(base, HashCurveFamily(50))
    order = benchmark.pedantic(
        make_layout, args=("localopt", base, signatures),
        rounds=1, iterations=1)
    assert sorted(order) == list(range(base.num_entries))
