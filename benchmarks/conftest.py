"""Shared infrastructure for the paper-reproduction benchmarks.

Scale knobs (environment variables):

``REPRO_BENCH_IMAGES``   images in the synthetic base (default 60;
                         the paper used 10,000 — see EXPERIMENTS.md for
                         the scaling rationale)
``REPRO_BENCH_QUERIES``  queries per experiment set (default 8; paper 15)

Every experiment writes its printed table to ``benchmarks/results/`` so
the series can be inspected after a run, and also echoes it to stdout.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro import GeometricSimilarityMatcher, ShapeBase
from repro.imaging import generate_workload, make_query_set

BENCH_IMAGES = int(os.environ.get("REPRO_BENCH_IMAGES", "60"))
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "8"))
RESULTS_DIR = Path(__file__).parent / "results"


def write_table(name: str, lines):
    """Persist one experiment's table and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print()
    print(text)


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(20020604)      # ICDE 2002 vintage seed


@pytest.fixture(scope="session")
def workload(bench_rng):
    """The scaled stand-in for the paper's 10,000-image base."""
    return generate_workload(BENCH_IMAGES, bench_rng,
                             shapes_per_image=5.5, vertices_mean=20.0,
                             noise=0.01, num_prototypes=14)


@pytest.fixture(scope="session")
def base(workload):
    shape_base = ShapeBase(alpha=0.1)
    for image in workload.images:
        for shape in image.shapes:
            shape_base.add_shape(shape, image_id=image.image_id)
    shape_base.index            # force the build outside timed regions
    return shape_base


@pytest.fixture(scope="session")
def matcher(base):
    return GeometricSimilarityMatcher(base)


@pytest.fixture(scope="session")
def query_set(workload, bench_rng):
    """The experiment query set (paper: 15 representative queries)."""
    return make_query_set(workload, BENCH_QUERIES,
                          np.random.default_rng(7), noise=0.012)


@pytest.fixture(scope="session")
def query_traces(matcher, query_set):
    """Candidate-evaluation traces per (query index, k).

    The storage experiments replay these against different layouts; the
    traces are computed once because each matcher run is the expensive
    part.
    """
    ks = (1, 2, 3, 5, 7, 10)
    traces = {}
    for index, (query, _) in enumerate(query_set):
        for k in ks:
            trace = []
            matcher.query(query, k=k,
                          on_candidate=lambda e: trace.append(e.entry_id))
            traces[(index, k)] = trace
    return traces
