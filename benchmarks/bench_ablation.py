"""Ablations over the design choices DESIGN.md calls out.

* range-search backend (kdtree / rangetree / brute) — same answers,
  different query cost profiles;
* candidate tolerance beta and envelope growth factor — convergence
  speed vs evaluated-candidate volume;
* alpha (alpha-diameter multiplicity) — storage cost vs distortion
  recall;
* discrete vs continuous vs symmetric measure — ranking agreement.
"""

import time

import numpy as np
import pytest

from repro import GeometricSimilarityMatcher, Shape, ShapeBase
from repro.imaging import generate_workload, make_query_set
from repro.imaging.synthesis import distort
from .conftest import write_table


@pytest.fixture(scope="module")
def small_workload():
    rng = np.random.default_rng(31)
    workload = generate_workload(30, rng, shapes_per_image=4.0,
                                 noise=0.01, num_prototypes=10)
    return workload


def build_base(workload, alpha=0.1, backend="kdtree"):
    base = ShapeBase(alpha=alpha, backend=backend)
    for image in workload.images:
        for shape in image.shapes:
            base.add_shape(shape, image_id=image.image_id)
    base.index
    return base


# ----------------------------------------------------------------------
# Backend ablation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def backend_ablation(small_workload):
    queries = make_query_set(small_workload, 4, np.random.default_rng(2),
                             noise=0.01)
    rows = []
    results = {}
    for backend in ("brute", "kdtree", "rangetree"):
        base = build_base(small_workload, backend=backend)
        matcher = GeometricSimilarityMatcher(base)
        start = time.perf_counter()
        answers = []
        for query, _ in queries:
            matches, _ = matcher.query(query, k=1)
            answers.append((matches[0].shape_id,
                            round(matches[0].distance, 9)))
        elapsed = (time.perf_counter() - start) / len(queries)
        results[backend] = {"time": elapsed, "answers": answers}
        rows.append(f"{backend:10s} {elapsed * 1e3:8.1f} ms/query")
    write_table("ablation_backend", [
        "Ablation: range-search backend (identical answers required)",
        ""] + rows)
    return results


def test_backends_same_answers(backend_ablation, benchmark):
    benchmark(lambda: None)
    answers = [backend_ablation[b]["answers"]
               for b in ("brute", "kdtree", "rangetree")]
    assert answers[0] == answers[1] == answers[2]


def test_kdtree_not_slowest(backend_ablation, benchmark):
    benchmark(lambda: None)
    times = {b: backend_ablation[b]["time"]
             for b in ("brute", "kdtree", "rangetree")}
    assert times["kdtree"] <= max(times.values())


# ----------------------------------------------------------------------
# beta / growth ablation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def beta_growth_ablation(small_workload):
    base = build_base(small_workload)
    queries = make_query_set(small_workload, 4, np.random.default_rng(9),
                             noise=0.01)
    rows = [f"{'beta':>6s} {'growth':>7s} {'iters':>6s} {'K':>8s} "
            f"{'cands':>6s} {'top1 ok':>8s}"]
    grid = {}
    for beta in (0.1, 0.25, 0.5):
        for growth in (1.3, 1.6, 2.5):
            matcher = GeometricSimilarityMatcher(base, beta=beta,
                                                 growth=growth)
            iters, processed, cands, hits = [], [], [], 0
            for query, label in queries:
                matches, stats = matcher.query(query, k=1)
                iters.append(stats.iterations)
                processed.append(stats.vertices_processed)
                cands.append(stats.candidates_evaluated)
                image = small_workload.images[matches[0].image_id]
                ids = base.shapes_of_image(matches[0].image_id)
                pos = ids.index(matches[0].shape_id)
                hits += (pos < len(image.labels) and
                         image.labels[pos] == label)
            grid[(beta, growth)] = {
                "iterations": float(np.mean(iters)),
                "processed": float(np.mean(processed)),
                "candidates": float(np.mean(cands)),
                "hits": hits,
            }
            rows.append(f"{beta:6.2f} {growth:7.2f} "
                        f"{np.mean(iters):6.1f} {np.mean(processed):8.0f} "
                        f"{np.mean(cands):6.0f} {hits:5d}/{len(queries)}")
    write_table("ablation_beta_growth", [
        "Ablation: candidate tolerance beta x envelope growth factor",
        ""] + rows)
    return grid, len(queries)


def test_correctness_across_beta_growth(beta_growth_ablation, benchmark):
    """The paper: alpha/beta choices affect speed, not correctness."""
    benchmark(lambda: None)
    grid, num_queries = beta_growth_ablation
    for stats in grid.values():
        assert stats["hits"] == num_queries


def test_faster_growth_fewer_iterations(beta_growth_ablation, benchmark):
    benchmark(lambda: None)
    grid, _ = beta_growth_ablation
    for beta in (0.1, 0.25, 0.5):
        assert grid[(beta, 2.5)]["iterations"] <= \
            grid[(beta, 1.3)]["iterations"]


# ----------------------------------------------------------------------
# alpha ablation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def alpha_ablation(small_workload):
    rng = np.random.default_rng(77)
    rows = [f"{'alpha':>6s} {'copies/shape':>13s} {'recall':>7s}"]
    results = {}
    # Heavy local distortion: enough to occasionally flip the diameter.
    queries = []
    for _ in range(6):
        prototype = small_workload.prototypes[
            int(rng.integers(len(small_workload.prototypes)))]
        queries.append((distort(prototype, 0.04, rng), prototype))
    for alpha in (0.0, 0.1, 0.25):
        base = build_base(small_workload, alpha=alpha)
        matcher = GeometricSimilarityMatcher(base)
        recall = 0
        for query, prototype in queries:
            matches, _ = matcher.query(query, k=1)
            if matches and matches[0].distance < 0.08:
                recall += 1
        copies = base.num_entries / base.num_shapes
        results[alpha] = {"copies": copies, "recall": recall}
        rows.append(f"{alpha:6.2f} {copies:13.1f} "
                    f"{recall:4d}/{len(queries)}")
    write_table("ablation_alpha", [
        "Ablation: alpha-diameter tolerance vs storage and recall",
        "(heavily distorted queries, 4% vertex noise)", ""] + rows)
    return results, len(queries)


def test_alpha_grows_storage(alpha_ablation, benchmark):
    benchmark(lambda: None)
    results, _ = alpha_ablation
    assert results[0.25]["copies"] > results[0.0]["copies"]


def test_alpha_never_hurts_recall(alpha_ablation, benchmark):
    benchmark(lambda: None)
    results, _ = alpha_ablation
    assert results[0.25]["recall"] >= results[0.0]["recall"]


# ----------------------------------------------------------------------
# measure-mode ablation
# ----------------------------------------------------------------------
def test_measure_modes_agree_on_exact_match(small_workload, benchmark):
    base = build_base(small_workload)
    shape_id = base.shape_ids()[5]
    query = base.shapes[shape_id].rotated(0.8).scaled(2.0)
    winners = {}
    for measure in ("discrete", "continuous", "symmetric"):
        matcher = GeometricSimilarityMatcher(base, measure=measure)
        matches, _ = matcher.query(query, k=1)
        winners[measure] = matches[0].shape_id
    benchmark(lambda: None)
    assert len(set(winners.values())) == 1
    assert winners["discrete"] == shape_id
