"""Figure 8: average I/O per query versus buffer size (k = 2).

The paper repeats the Figure 7 experiment at k = 2 with buffers from
1 to 100 blocks and observes that every method improves and that the
median method (iii) 'stabilizes faster'.  Regeneration logic:
:func:`repro.experiments.buffer_sweep`.
"""

import pytest

from repro.experiments import buffer_sweep
from .conftest import BENCH_IMAGES, BENCH_QUERIES, write_table

METHODS = ("mean", "lexicographic", "median")


@pytest.fixture(scope="module")
def figure8():
    result = buffer_sweep(num_images=BENCH_IMAGES,
                          num_queries=BENCH_QUERIES)
    write_table("fig08_buffer_sweep", [result.render()])
    return result


def test_fig08_io_nonincreasing_in_buffer(figure8, benchmark):
    benchmark(lambda: None)
    for _, points in figure8.series:
        values = [v for _, v in sorted(points)]
        for small, large in zip(values, values[1:]):
            assert large <= small + 1e-9


def test_fig08_median_stabilizes_competitively(figure8, benchmark):
    """Paper: method (iii) stabilizes faster.

    At 1/100 of the paper's base size the stabilization points of the
    three methods land within measurement noise of each other, so the
    reproduced claim is the weak form: method (iii) stabilizes within
    one buffer-grid step of method (ii).  (EXPERIMENTS.md records this
    as 'shape reproduced; (iii)'s edge is a tie at our scale'.)
    """
    benchmark(lambda: None)
    buffers = sorted(b for b, *_ in figure8.rows)
    lex = figure8.metrics["stabilize_lexicographic"]
    median = figure8.metrics["stabilize_median"]
    position = buffers.index(int(lex))
    allowed = buffers[min(position + 1, len(buffers) - 1)]
    assert median <= allowed


def test_fig08_small_buffer_hurts(figure8, benchmark):
    benchmark(lambda: None)
    for method in METHODS:
        assert figure8.metrics[f"io_at_1_{method}"] >= \
            figure8.metrics[f"io_at_max_{method}"]
