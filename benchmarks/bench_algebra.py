"""Planner-vs-unplanned scaling benchmark for the query algebra.

For each corpus size a base with planted selectivity skew
(:func:`repro.query.workload.algebra_base`) and a seeded mixed
composite-query workload run through the three execution modes of
:func:`repro.query.workload.compare_planner`:

* ``unplanned`` — DNF with every literal materialized in written
  order, topological operators through strategy 2;
* ``planned`` — selectivity-ordered seeds, restricted per-image
  filters, strategy selection;
* ``planned+cache`` — the planner plus the versioned subplan cache.

Result sets are asserted identical across modes inside
``compare_planner`` itself.  The run **fails** (exit 1) if at the
largest size the planner does not beat the unplanned baseline on both
``sim_checks`` (similarity checks + candidate evaluations) and wall
time — the acceptance gate the CI ``algebra-smoke`` job enforces.

Rows are appended to ``BENCH_algebra.json`` when ``--label`` is given
or ``REPRO_BENCH_LABEL`` is set (same trajectory protocol as
``BENCH_build.json`` / ``BENCH_ann.json``).

Usage::

    PYTHONPATH=src python benchmarks/bench_algebra.py --smoke
    PYTHONPATH=src python benchmarks/bench_algebra.py \
        --sizes 60,120,240 --queries 18 --label "my-change"
"""

import argparse
import os
import sys
from pathlib import Path

import numpy as np

from repro.query.workload import (algebra_base, compare_planner,
                                  composite_queries, record_trajectory)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_algebra.json"
SMOKE_SIZES = (24, 48)
SMOKE_QUERIES = 6


def run(sizes, num_queries, seed=20020604):
    """One compare_planner sweep; returns all rows (size-annotated)."""
    rows = []
    for num_images in sizes:
        rng = np.random.default_rng(seed)
        base, protos = algebra_base(num_images, rng)
        queries = composite_queries(protos, num_queries,
                                    np.random.default_rng(seed + 1))
        for row in compare_planner(base, queries):
            row["images"] = base.num_images
            row["shapes"] = base.num_shapes
            rows.append(row)
    return rows


def render(rows):
    lines = [f"{'images':>7} {'shapes':>7} {'mode':<14} {'ms/query':>9} "
             f"{'sim_checks':>11} {'thresholdq':>11} {'pairs':>7} "
             f"{'probes':>7} {'reordered':>10}"]
    for row in rows:
        lines.append(
            f"{row['images']:>7d} {row['shapes']:>7d} {row['mode']:<14} "
            f"{row['ms_per_query']:>9.2f} {row['sim_checks']:>11d} "
            f"{row['threshold_queries']:>11d} {row['pairs_checked']:>7d} "
            f"{row['filter_probes']:>7d} {row['seeds_reordered']:>10d}")
    print("\n".join(lines))


def check_planner_wins(rows):
    """The acceptance gate: planned beats unplanned at the top size."""
    largest = max(row["images"] for row in rows)
    at_top = {row["mode"]: row for row in rows
              if row["images"] == largest}
    unplanned, planned = at_top["unplanned"], at_top["planned"]
    failures = []
    if planned["sim_checks"] >= unplanned["sim_checks"]:
        failures.append(
            f"sim_checks: planned {planned['sim_checks']} >= "
            f"unplanned {unplanned['sim_checks']}")
    if planned["wall_s"] >= unplanned["wall_s"]:
        failures.append(
            f"wall: planned {planned['wall_s']:.3f}s >= "
            f"unplanned {unplanned['wall_s']:.3f}s")
    if not planned["seeds_reordered"]:
        failures.append("planner never reordered a term")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--sizes", default="60,120",
                        help="comma-separated image counts "
                             "(default 60,120)")
    parser.add_argument("--queries", type=int, default=12,
                        help="composite queries per size (default 12)")
    parser.add_argument("--seed", type=int, default=20020604)
    parser.add_argument("--smoke", action="store_true",
                        help=f"quick CI sizes {SMOKE_SIZES} with "
                             f"{SMOKE_QUERIES} queries")
    parser.add_argument("--label", default=None,
                        help="append rows to BENCH_algebra.json under "
                             "this label (default: REPRO_BENCH_LABEL)")
    args = parser.parse_args(argv)

    if args.smoke:
        sizes, num_queries = SMOKE_SIZES, SMOKE_QUERIES
    else:
        sizes = tuple(int(s) for s in args.sizes.split(","))
        num_queries = args.queries
    rows = run(sizes, num_queries, seed=args.seed)
    render(rows)

    label = args.label or os.environ.get("REPRO_BENCH_LABEL")
    if label:
        record_trajectory(rows, label, BENCH_JSON)
        print(f"\nrecorded trajectory point {label!r} -> {BENCH_JSON}")

    failures = check_planner_wins(rows)
    if failures:
        print("\nFAIL: planner does not beat the unplanned baseline "
              "at the largest size:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    largest = max(row["images"] for row in rows)
    at_top = {row["mode"]: row for row in rows if row["images"] == largest}
    ratio = (at_top["unplanned"]["sim_checks"]
             / max(1, at_top["planned"]["sim_checks"]))
    speedup = (at_top["unplanned"]["wall_s"]
               / max(1e-9, at_top["planned"]["wall_s"]))
    print(f"\nOK: at {largest} images the planner does "
          f"{ratio:.2f}x fewer sim checks, {speedup:.2f}x faster wall")
    return 0


if __name__ == "__main__":
    sys.exit(main())
