"""Figure 5: the equal-area function E(x) and its derivative.

The paper plots E(x) and dE/dx over [0, 1] to argue both are continuous
(so gradient-based root finding is safe).  We regenerate both series,
check the claimed properties numerically, and benchmark the k = 50
curve-family solve the paper's Figure 4 (right) uses.
"""

import numpy as np
import pytest

from repro.hashing.curves import (QUARTER_AREA, HashCurveFamily, curve_area,
                                  curve_area_derivative,
                                  solve_curve_parameters)
from .conftest import write_table


@pytest.fixture(scope="module")
def figure5():
    xs = np.linspace(0.0, 1.0, 51)
    e_values = np.array([curve_area(float(x)) for x in xs])
    d_values = np.array([curve_area_derivative(float(x)) for x in xs])
    lines = ["Figure 5 reproduction: E(x) and dE(x)/dx on [0, 1]",
             "", f"{'x':>6s} {'E(x)':>10s} {'dE/dx':>10s}"]
    for x, e, d in zip(xs[::5], e_values[::5], d_values[::5]):
        lines.append(f"{x:6.2f} {e:10.6f} {d:10.6f}")
    lines += ["",
              f"E(0) = {e_values[0]:.6f} (paper: 0)",
              f"E(1) = {e_values[-1]:.6f} (paper: A0/4 = {QUARTER_AREA:.6f})"]
    write_table("fig05_hashcurves", lines)
    return xs, e_values, d_values


def test_fig05_e_monotone_continuous(figure5, benchmark):
    xs, e_values, _ = figure5
    benchmark(curve_area, 0.37)
    assert e_values[0] == pytest.approx(0.0)
    assert e_values[-1] == pytest.approx(QUARTER_AREA)
    assert (np.diff(e_values) >= -1e-12).all()
    # Continuity on the interior: no jump bigger than the local slope
    # allows (the slope legitimately blows up only at x -> 1, where
    # sqrt(1 - x^2) vanishes).
    interior = e_values[xs <= 0.9]
    assert np.abs(np.diff(interior)).max() < 0.05


def test_fig05_derivative_continuous(figure5, benchmark):
    xs, _, d_values = figure5
    benchmark(curve_area_derivative, 0.37)
    assert (d_values >= -1e-9).all()
    interior = d_values[xs <= 0.9]
    assert np.abs(np.diff(interior)).max() < 0.25
    # The endpoint singularity is real: the slope keeps growing.
    assert d_values[-2] > interior[-1]


def test_fig05_solve_family_k50(benchmark):
    """Figure 4 (right): the 50 equal-area arcs."""
    xs = benchmark(solve_curve_parameters, 50)
    areas = np.array([curve_area(float(x)) for x in xs])
    expected = QUARTER_AREA * np.arange(1, 51) / 50
    assert np.allclose(areas, expected, atol=1e-9)


def test_fig05_family_build(benchmark):
    family = benchmark(HashCurveFamily, 50)
    assert family.k == 50
