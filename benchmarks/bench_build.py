"""Cold-start and bulk-ingest benchmark (the PR-5 build pipeline).

Two comparisons per base size, both ending in bit-for-bit identical
query-ready bases:

* **ingest** — a Python loop of scalar ``add_shape`` calls vs. one
  vectorized ``ShapeBase.add_shapes`` (batched alpha-diameters and
  stacked normalization transforms).
* **cold start** — the pre-PR ``load_base`` path (decode per-entry v2
  records, reconstruct each original via the inverse transform,
  re-normalize every shape with scalar adds; kept here as
  ``legacy_load`` so the baseline stays measurable after the loader
  changed) vs. a v3 array-native snapshot load (zero re-normalization,
  vertex arrays wrapped straight out of the file buffer).

Points are appended to ``BENCH_build.json`` when ``REPRO_BENCH_LABEL``
is set (the CI benchmark-smoke job does this on every run) — the same
trajectory protocol as ``BENCH_matcher.json``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.matcher import GeometricSimilarityMatcher
from repro.core.shapebase import ShapeBase
from repro.imaging.synthesis import generate_workload
from repro.storage.persist import (_HEADER_V2, _PREFIX, load_base,
                                   save_base)
from repro.storage.serialization import decode_record

from .conftest import write_table

SIZES = tuple(int(s) for s in os.environ.get(
    "REPRO_BENCH_BUILD_SIZES", "15,30,60,120").split(","))
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_build.json"


def legacy_load(path, alpha=0.1):
    """The pre-PR cold-start path, preserved as the baseline.

    Mirrors the old ``load_base``: walk the v2 records, reconstruct
    each original shape by inverting its stored transform, then
    re-run the whole normalization pipeline one scalar ``add_shape``
    at a time.
    """
    payload = Path(path).read_bytes()
    base = ShapeBase(alpha=alpha)
    offset = _PREFIX.size + _HEADER_V2.size
    seen = set()
    while offset < len(payload):
        record, offset = decode_record(payload, offset)
        if record.shape_id in seen:
            continue
        seen.add(record.shape_id)
        original = record.transform.inverse().apply_shape(record.shape)
        base.add_shape(original, image_id=record.image_id,
                       shape_id=record.shape_id)
    return base


def _collect_shapes(num_images, seed=20020604):
    workload = generate_workload(num_images, np.random.default_rng(seed),
                                 shapes_per_image=5.5, vertices_mean=20.0,
                                 noise=0.01, num_prototypes=14)
    shapes, image_ids = [], []
    for image in workload.images:
        shapes.extend(image.shapes)
        image_ids.extend([image.image_id] * len(image.shapes))
    return shapes, image_ids


def _time(fn, repeats=3):
    """Best-of-N wall time: the minimum is the least noisy estimator
    for a deterministic computation (GC pauses and allocator
    first-touch only ever add time)."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


@pytest.fixture(scope="module")
def build_sweep(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("snapshots")
    rows = []
    for num_images in SIZES:
        shapes, image_ids = _collect_shapes(num_images)

        def scalar_ingest():
            base = ShapeBase(alpha=0.1)
            for shape, image_id in zip(shapes, image_ids):
                base.add_shape(shape, image_id=image_id)
            return base

        scalar_base, scalar_s = _time(scalar_ingest)
        bulk_base, bulk_s = _time(lambda: _bulk(shapes, image_ids))

        v2 = tmp / f"{num_images}.v2.gsir"
        v3 = tmp / f"{num_images}.v3.gsb"
        save_base(bulk_base, v2, version=2)
        save_base(bulk_base, v3, version=3, hash_curves=50)
        legacy_base, legacy_s = _time(lambda: legacy_load(v2))
        v3_base, v3_s = _time(lambda: load_base(v3))

        rows.append({
            "images": num_images,
            "shapes": bulk_base.num_shapes,
            "n": bulk_base.total_vertices,
            "scalar_ingest_ms": scalar_s * 1e3,
            "bulk_ingest_ms": bulk_s * 1e3,
            "ingest_speedup": scalar_s / bulk_s,
            "legacy_load_ms": legacy_s * 1e3,
            "v3_load_ms": v3_s * 1e3,
            "load_speedup": legacy_s / v3_s,
            "_bases": (scalar_base, bulk_base, legacy_base, v3_base),
        })
    _render(rows)
    _record_trajectory(rows)
    return rows


def _bulk(shapes, image_ids):
    base = ShapeBase(alpha=0.1)
    base.add_shapes(shapes, image_ids=image_ids)
    return base


def _render(rows):
    lines = [f"{'images':>7} {'n':>8} {'scalar ms':>10} {'bulk ms':>9} "
             f"{'ingest x':>9} {'legacy ms':>10} {'v3 ms':>8} {'load x':>7}"]
    for row in rows:
        lines.append(
            f"{row['images']:>7d} {row['n']:>8d} "
            f"{row['scalar_ingest_ms']:>10.1f} {row['bulk_ingest_ms']:>9.1f} "
            f"{row['ingest_speedup']:>9.1f} {row['legacy_load_ms']:>10.1f} "
            f"{row['v3_load_ms']:>8.1f} {row['load_speedup']:>7.1f}")
    write_table("build_pipeline", lines)


def _record_trajectory(rows):
    """Append one labeled point to the build-cost trajectory.

    Gated on ``REPRO_BENCH_LABEL`` so ad-hoc local runs do not dirty
    the committed history (same protocol as BENCH_matcher.json).
    """
    label = os.environ.get("REPRO_BENCH_LABEL")
    if not label:
        return
    if BENCH_JSON.exists():
        history = json.loads(BENCH_JSON.read_text())
    else:
        history = {
            "benchmark": "build_pipeline",
            "metric": "cold_start_ms",
            "protocol": (
                "benchmarks/bench_build.py: synthetic workload "
                "(shapes_per_image=5.5, vertices_mean=20, seed 20020604); "
                "scalar add_shape loop vs ShapeBase.add_shapes, and the "
                "pre-PR load_base rebuild path (v2 records -> inverse "
                "transform -> scalar re-normalization) vs v3 array-native "
                "snapshot load.  n = total indexed vertices.  Points are "
                "appended when REPRO_BENCH_LABEL is set (the CI "
                "benchmark-smoke job does this on every run)."),
            "trajectory": [],
        }
    history["trajectory"].append({
        "label": label,
        "rows": [{key: (round(float(row[key]), 3)
                        if isinstance(row[key], float) else row[key])
                  for key in ("images", "shapes", "n", "scalar_ingest_ms",
                              "bulk_ingest_ms", "ingest_speedup",
                              "legacy_load_ms", "v3_load_ms",
                              "load_speedup")}
                 for row in rows],
    })
    BENCH_JSON.write_text(json.dumps(history, indent=2) + "\n")


def test_bulk_ingest_speedup(build_sweep, benchmark):
    benchmark(lambda: None)
    largest = build_sweep[-1]
    assert largest["ingest_speedup"] >= 2.0


def test_snapshot_load_speedup(build_sweep, benchmark):
    benchmark(lambda: None)
    largest = build_sweep[-1]
    assert largest["load_speedup"] >= 3.0


def test_all_paths_answer_identically(build_sweep, benchmark):
    """Every build path must be bit-for-bit the same base."""
    benchmark(lambda: None)
    row = build_sweep[-1]
    scalar_base, bulk_base, legacy_base, v3_base = row["_bases"]
    sketch = scalar_base.shapes[next(iter(scalar_base.shapes))]
    reference = None
    for candidate in (scalar_base, bulk_base, v3_base):
        matches, _ = GeometricSimilarityMatcher(candidate).query(sketch, k=5)
        answer = [(m.shape_id, m.distance) for m in matches]
        if reference is None:
            reference = answer
        assert answer == reference
    # The legacy path rounds through float32 records; ranking (not
    # bitwise distance) must still agree.
    matches, _ = GeometricSimilarityMatcher(legacy_base).query(sketch, k=5)
    assert [m.shape_id for m in matches] == [sid for sid, _ in reference]
