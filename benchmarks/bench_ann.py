"""Recall/latency curve of the polygon-LSH approximate tier.

For each corpus size, the exact matcher's batched top-k answers are the
ground truth (and the latency baseline); each (tables, band width)
configuration of :class:`repro.ann.AnnPrunedMatcher` is then scored on

* **recall@k** — the fraction of the exact top-k shape ids the ANN
  answer recovers, averaged over the query set;
* **ms/query** — best-of-N batched wall time, against the exact batch
  path's ms/query (their ratio is the speedup);
* **candidates** — mean exact-scored candidate-set size, the knob the
  LSH parameters actually turn.

Points are appended to ``BENCH_ann.json`` when ``REPRO_BENCH_LABEL``
is set (the CI benchmark-smoke job does this on every run) — the same
trajectory protocol as ``BENCH_build.json``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.ann import AnnConfig, AnnPrunedMatcher
from repro.core.matcher import GeometricSimilarityMatcher
from repro.core.shapebase import ShapeBase
from repro.imaging.synthesis import generate_workload, make_query_set

from .conftest import write_table

SIZES = tuple(int(s) for s in os.environ.get(
    "REPRO_BENCH_ANN_SIZES", "30,90").split(","))
QUERIES = int(os.environ.get("REPRO_BENCH_ANN_QUERIES", "6"))
K = 10
#: The (tables, band width) sweep.  More tables -> higher recall and
#: larger candidate sets; wider bands -> stricter collisions.
CONFIGS = ((4, 2), (8, 2), (16, 2), (8, 4))
#: The configuration the recall acceptance test pins down.
REFERENCE = (16, 2)
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_ann.json"


def _time(fn, repeats=2):
    """Best-of-N wall time (minimum: noise only ever adds time)."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


@pytest.fixture(scope="module")
def ann_sweep():
    rows = []
    for num_images in SIZES:
        workload = generate_workload(
            num_images, np.random.default_rng(20020604),
            shapes_per_image=5.5, vertices_mean=20.0, noise=0.01,
            num_prototypes=14)
        base = ShapeBase(alpha=0.1)
        shapes, image_ids = [], []
        for image in workload.images:
            shapes.extend(image.shapes)
            image_ids.extend([image.image_id] * len(image.shapes))
        base.add_shapes(shapes, image_ids=image_ids)
        base.index                     # build outside the timed region
        queries = [query for query, _ in
                   make_query_set(workload, QUERIES,
                                  np.random.default_rng(7), noise=0.012)]
        k = min(K, base.num_shapes)

        matcher = GeometricSimilarityMatcher(base)
        exact_results, exact_s = _time(
            lambda: matcher.query_batch(queries, k=k))
        exact_ids = [set(m.shape_id for m in matches)
                     for matches, _ in exact_results]
        exact_ms = exact_s * 1e3 / len(queries)

        for tables, band in CONFIGS:
            config = AnnConfig(tables=tables, band_width=band,
                               candidate_cap=512)
            start = time.perf_counter()
            ann = AnnPrunedMatcher(base, config)
            build_ms = (time.perf_counter() - start) * 1e3
            ann_results, ann_s = _time(
                lambda: ann.query_batch(queries, k=k))
            recalls, candidate_counts = [], []
            for truth, (matches, stats) in zip(exact_ids, ann_results):
                found = set(m.shape_id for m in matches)
                recalls.append(len(found & truth) / len(truth))
                candidate_counts.append(stats.candidates_evaluated)
            ann_ms = ann_s * 1e3 / len(queries)
            rows.append({
                "images": num_images,
                "shapes": base.num_shapes,
                "entries": base.num_entries,
                "tables": tables,
                "band": band,
                "recall": float(np.mean(recalls)),
                "candidates": float(np.mean(candidate_counts)),
                "build_ms": build_ms,
                "ann_ms": ann_ms,
                "exact_ms": exact_ms,
                "speedup": exact_ms / ann_ms if ann_ms else float("inf"),
            })
    _render(rows)
    _record_trajectory(rows)
    return rows


def _render(rows):
    lines = [f"{'images':>7} {'entries':>8} {'tables':>7} {'band':>5} "
             f"{'recall@10':>10} {'cands':>7} {'ann ms':>8} "
             f"{'exact ms':>9} {'speedup':>8}"]
    for row in rows:
        lines.append(
            f"{row['images']:>7d} {row['entries']:>8d} "
            f"{row['tables']:>7d} {row['band']:>5d} "
            f"{row['recall']:>10.3f} {row['candidates']:>7.0f} "
            f"{row['ann_ms']:>8.2f} {row['exact_ms']:>9.2f} "
            f"{row['speedup']:>8.1f}")
    write_table("ann_recall_latency", lines)


def _record_trajectory(rows):
    """Append one labeled point to the recall/latency trajectory.

    Gated on ``REPRO_BENCH_LABEL`` so ad-hoc local runs do not dirty
    the committed history (same protocol as BENCH_build.json).
    """
    label = os.environ.get("REPRO_BENCH_LABEL")
    if not label:
        return
    if BENCH_JSON.exists():
        history = json.loads(BENCH_JSON.read_text())
    else:
        history = {
            "benchmark": "ann_recall_latency",
            "metric": "recall@10 vs ms/query",
            "protocol": (
                "benchmarks/bench_ann.py: synthetic workload "
                "(shapes_per_image=5.5, vertices_mean=20, seed "
                "20020604); exact GeometricSimilarityMatcher batched "
                "top-10 as ground truth and latency baseline; "
                "AnnPrunedMatcher swept over (tables, band width) with "
                "candidate cap 512.  recall@10 averages |ann ∩ exact| "
                "/ k over the query set; ms/query is best-of-2 batched "
                "wall time.  Points are appended when "
                "REPRO_BENCH_LABEL is set (the CI benchmark-smoke job "
                "does this on every run)."),
            "trajectory": [],
        }
    history["trajectory"].append({
        "label": label,
        "rows": [{key: (round(float(row[key]), 4)
                        if isinstance(row[key], float) else row[key])
                  for key in ("images", "shapes", "entries", "tables",
                              "band", "recall", "candidates", "build_ms",
                              "ann_ms", "exact_ms", "speedup")}
                 for row in rows],
    })
    BENCH_JSON.write_text(json.dumps(history, indent=2) + "\n")


def test_reference_config_recall(ann_sweep, benchmark):
    """recall@10 >= 0.9 at the reference config, largest corpus."""
    benchmark(lambda: None)
    largest = max(row["images"] for row in ann_sweep)
    row = next(row for row in ann_sweep
               if row["images"] == largest
               and (row["tables"], row["band"]) == REFERENCE)
    assert row["recall"] >= 0.9


def test_some_config_is_fast_and_accurate(ann_sweep, benchmark):
    """A config with recall@10 >= 0.9 beats exact by >= 3x at the
    largest corpus size (the PR's acceptance bar)."""
    benchmark(lambda: None)
    largest = max(row["images"] for row in ann_sweep)
    good = [row for row in ann_sweep
            if row["images"] == largest and row["recall"] >= 0.9]
    assert good, "no configuration reached recall 0.9"
    assert max(row["speedup"] for row in good) >= 3.0


def test_pruning_actually_prunes(ann_sweep, benchmark):
    """Candidate sets stay well under the corpus size — the tier is a
    pruner, not an exact scan in disguise."""
    benchmark(lambda: None)
    for row in ann_sweep:
        assert row["candidates"] <= row["entries"]
    largest = max(row["images"] for row in ann_sweep)
    row = next(row for row in ann_sweep
               if row["images"] == largest
               and (row["tables"], row["band"]) == REFERENCE)
    assert row["candidates"] < row["entries"] * 0.7
